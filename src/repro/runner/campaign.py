"""Durable campaign store: SQLite (WAL) with campaigns / cells / attempts.

The JSONL :class:`~repro.runner.store.ResultStore` keeps a sweep's results
alive across restarts, but only as a flat cache — nothing records *how*
each cell got its result, and nothing survives being queried across runs.
This module promotes that cache into a proper store:

* ``campaigns`` — one row per named campaign (grid), with JSON metadata;
* ``cells`` — one row per unique run spec in a campaign: canonical spec
  JSON, lifecycle status (``pending → running → ok | failed``), attempt
  count, and the full final record once one exists;
* ``attempts`` — one row per execution attempt, successful or not: the
  attempt-status taxonomy from :mod:`repro.runner.dispatch` (``ok`` /
  ``failed`` / ``lost`` / ``timeout`` / ``error``), the error text, wall
  time and worker pid.  Crash forensics are a ``SELECT``, not a log dig.

The database is opened in WAL mode, so a concurrently-running
``repro-worksite campaign show`` (or the chaos tests' poll loop) reads a
consistent snapshot while the sweep writes.  Timestamps are wall-clock
and live outside every ``result`` payload — the determinism contract
("``result`` is a pure function of the spec") is untouched, which is what
makes the kill-and-resume acceptance test's byte-identical comparison
meaningful.

:meth:`CampaignStore.import_jsonl` is the one-way migration path from the
legacy JSONL stores; :meth:`CampaignStore.bind` returns the per-campaign
adapter the sweep engine drives through the same duck-typed protocol as
:class:`~repro.runner.store.ResultStore` (``completed_keys`` / ``append``
/ ``mark_running`` / ``record_attempt``).
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import closing
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.runner.spec import RunSpec

#: campaign database layout version (stored in ``PRAGMA user_version``)
CAMPAIGN_SCHEMA = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id         INTEGER PRIMARY KEY,
    name       TEXT NOT NULL UNIQUE,
    created_s  REAL NOT NULL,
    meta       TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS cells (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    key         TEXT NOT NULL,
    ord         INTEGER NOT NULL,
    spec        TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending',
    attempts    INTEGER NOT NULL DEFAULT 0,
    record      TEXT,
    PRIMARY KEY (campaign_id, key)
);
CREATE TABLE IF NOT EXISTS attempts (
    id          INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    key         TEXT NOT NULL,
    attempt     INTEGER NOT NULL,
    status      TEXT NOT NULL,
    error       TEXT,
    wall_s      REAL,
    pid         INTEGER,
    recorded_s  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_attempts_cell
    ON attempts (campaign_id, key, attempt);
"""


class CampaignStore:
    """SQLite-backed store for durable, resumable sweep campaigns."""

    def __init__(self, path: os.PathLike, *,
                 clock: Optional[callable] = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock if clock is not None else time.time
        with closing(self._connect()) as conn, conn:
            conn.executescript(_SCHEMA)
            conn.execute(f"PRAGMA user_version = {CAMPAIGN_SCHEMA}")

    def _connect(self) -> sqlite3.Connection:
        # one short-lived connection per operation: nothing to invalidate
        # across the pool workers' forks, and WAL readers never block us
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA foreign_keys=ON")
        return conn

    # -- campaigns ----------------------------------------------------------

    def campaign_id(self, name: str) -> Optional[int]:
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT id FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
        return None if row is None else int(row["id"])

    def ensure_campaign(
        self,
        name: str,
        specs: Sequence[RunSpec] = (),
        meta: Optional[dict] = None,
    ) -> int:
        """Create ``name`` if needed and make sure every spec has a cell.

        Idempotent: re-ensuring an existing campaign only adds the cells
        it is missing (a grown grid extends the campaign in place).
        """
        with closing(self._connect()) as conn, conn:
            row = conn.execute(
                "SELECT id FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
            if row is None:
                cursor = conn.execute(
                    "INSERT INTO campaigns (name, created_s, meta) "
                    "VALUES (?, ?, ?)",
                    (name, self._clock(),
                     json.dumps(meta or {}, sort_keys=True)),
                )
                campaign = int(cursor.lastrowid)
            else:
                campaign = int(row["id"])
            self._add_cells(conn, campaign, specs)
        return campaign

    def _add_cells(self, conn, campaign: int,
                   specs: Sequence[RunSpec]) -> None:
        row = conn.execute(
            "SELECT COALESCE(MAX(ord) + 1, 0) AS nxt FROM cells "
            "WHERE campaign_id = ?", (campaign,)
        ).fetchone()
        nxt = int(row["nxt"])
        for spec in specs:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO cells "
                "(campaign_id, key, ord, spec) VALUES (?, ?, ?, ?)",
                (campaign, spec.key, nxt,
                 json.dumps(spec.to_dict(), sort_keys=True)),
            )
            if cursor.rowcount:
                nxt += 1

    def list_campaigns(self) -> List[dict]:
        """Per-campaign summary rows: cell status counts, total attempts."""
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT c.id, c.name, c.created_s, c.meta,"
                " COUNT(l.key) AS cells,"
                " SUM(l.status = 'ok') AS ok,"
                " SUM(l.status = 'failed') AS failed,"
                " SUM(l.status IN ('pending', 'running')) AS pending,"
                " COALESCE(SUM(l.attempts), 0) AS attempts"
                " FROM campaigns c LEFT JOIN cells l"
                " ON l.campaign_id = c.id"
                " GROUP BY c.id ORDER BY c.id",
            ).fetchall()
        return [
            {
                "name": row["name"],
                "created_s": row["created_s"],
                "meta": json.loads(row["meta"]),
                "cells": int(row["cells"] or 0),
                "ok": int(row["ok"] or 0),
                "failed": int(row["failed"] or 0),
                "pending": int(row["pending"] or 0),
                "attempts": int(row["attempts"] or 0),
            }
            for row in rows
        ]

    def show(self, name: str) -> dict:
        """One campaign's full picture: summary plus per-cell lifecycle."""
        campaign = self._require(name)
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT key, ord, spec, status, attempts, record FROM cells"
                " WHERE campaign_id = ? ORDER BY ord", (campaign,)
            ).fetchall()
            errors = {
                row["key"]: row["error"]
                for row in conn.execute(
                    "SELECT key, error FROM attempts"
                    " WHERE campaign_id = ? AND error IS NOT NULL"
                    " ORDER BY id", (campaign,)
                )
            }
        cells = []
        for row in rows:
            spec = json.loads(row["spec"])
            cells.append({
                "key": row["key"],
                "label": RunSpec.from_dict(spec).label,
                "spec": spec,
                "status": row["status"],
                "attempts": int(row["attempts"]),
                "last_error": errors.get(row["key"]),
            })
        summary = next(
            (c for c in self.list_campaigns() if c["name"] == name), {}
        )
        summary["cells_detail"] = cells
        return summary

    def specs(self, name: str) -> List[RunSpec]:
        """The campaign's grid, in original declaration order."""
        campaign = self._require(name)
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT spec FROM cells WHERE campaign_id = ?"
                " ORDER BY ord", (campaign,)
            ).fetchall()
        return [RunSpec.from_dict(json.loads(row["spec"])) for row in rows]

    def attempts(self, name: str, key: Optional[str] = None) -> List[dict]:
        """Every recorded execution attempt, oldest first."""
        campaign = self._require(name)
        query = ("SELECT key, attempt, status, error, wall_s, pid,"
                 " recorded_s FROM attempts WHERE campaign_id = ?")
        params: tuple = (campaign,)
        if key is not None:
            query += " AND key = ?"
            params += (key,)
        with closing(self._connect()) as conn:
            rows = conn.execute(query + " ORDER BY id", params).fetchall()
        return [dict(row) for row in rows]

    def _require(self, name: str) -> int:
        campaign = self.campaign_id(name)
        if campaign is None:
            raise ValueError(f"no campaign named {name!r} in {self.path}")
        return campaign

    # -- migration ----------------------------------------------------------

    def import_jsonl(self, jsonl_path: os.PathLike, name: str) -> dict:
        """One-way promotion of a legacy JSONL result store into a campaign.

        Every record becomes a cell carrying its final record verbatim,
        plus one synthetic attempt row reconstructed from the record's
        status / error / wall time / pid.  Torn tail lines are tolerated
        exactly as :meth:`ResultStore.load` tolerates them.
        """
        from repro.runner.store import ResultStore

        records = ResultStore(jsonl_path).load()
        specs = [RunSpec.from_dict(r["spec"]) for r in records.values()]
        campaign = self.ensure_campaign(
            name, specs, meta={"imported_from": str(jsonl_path)},
        )
        binding = CampaignBinding(self, campaign)
        imported = {"ok": 0, "failed": 0}
        for record in records.values():
            status = "ok" if record.get("status") == "ok" else "failed"
            imported[status] += 1
            binding.record_attempt(
                record["key"], int(record.get("attempt", 1)),
                status=status, error=record.get("error"),
                wall_s=record.get("wall_s"), pid=record.get("pid"),
            )
            binding.append(record)
        return {"campaign": name, "cells": len(records), **imported}

    # -- engine adapter -----------------------------------------------------

    def bind(self, name: str) -> "CampaignBinding":
        """The per-campaign store adapter the sweep engine writes through."""
        return CampaignBinding(self, self._require(name))


class CampaignBinding:
    """One campaign's view of the store, speaking the engine's store
    protocol (drop-in for :class:`~repro.runner.store.ResultStore`)."""

    def __init__(self, store: CampaignStore, campaign_id: int) -> None:
        self.store = store
        self.campaign_id = campaign_id

    def completed_keys(self) -> Dict[str, dict]:
        """Successfully completed records by key (what ``resume`` skips)."""
        with closing(self.store._connect()) as conn:
            rows = conn.execute(
                "SELECT key, record FROM cells"
                " WHERE campaign_id = ? AND status = 'ok'"
                " AND record IS NOT NULL",
                (self.campaign_id,),
            ).fetchall()
        return {row["key"]: json.loads(row["record"]) for row in rows}

    def load(self) -> Dict[str, dict]:
        """All final records by key (parity with ``ResultStore.load``)."""
        with closing(self.store._connect()) as conn:
            rows = conn.execute(
                "SELECT key, record FROM cells"
                " WHERE campaign_id = ? AND record IS NOT NULL",
                (self.campaign_id,),
            ).fetchall()
        return {row["key"]: json.loads(row["record"]) for row in rows}

    def append(self, record: dict) -> None:
        """Finalise a cell with its record (last write wins, as in JSONL)."""
        status = "ok" if record.get("status") == "ok" else "failed"
        payload = json.dumps(record, sort_keys=True)
        attempts = int(record.get("attempts", 1))
        with closing(self.store._connect()) as conn, conn:
            cursor = conn.execute(
                "UPDATE cells SET status = ?, record = ?,"
                " attempts = MAX(attempts, ?)"
                " WHERE campaign_id = ? AND key = ?",
                (status, payload, attempts, self.campaign_id, record["key"]),
            )
            if cursor.rowcount == 0:
                # a record for a cell the grid never declared (e.g. JSONL
                # import of an ad-hoc run): adopt it at the end of the order
                row = conn.execute(
                    "SELECT COALESCE(MAX(ord) + 1, 0) AS nxt FROM cells"
                    " WHERE campaign_id = ?", (self.campaign_id,)
                ).fetchone()
                conn.execute(
                    "INSERT INTO cells (campaign_id, key, ord, spec,"
                    " status, attempts, record) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (self.campaign_id, record["key"], int(row["nxt"]),
                     json.dumps(record.get("spec", {}), sort_keys=True),
                     status, attempts, payload),
                )

    def append_many(self, records: Iterable[dict]) -> None:
        for record in records:
            self.append(record)

    def mark_running(self, key: str, attempt: int) -> None:
        with closing(self.store._connect()) as conn, conn:
            conn.execute(
                "UPDATE cells SET status = 'running'"
                " WHERE campaign_id = ? AND key = ? AND status != 'ok'",
                (self.campaign_id, key),
            )

    def record_attempt(
        self,
        key: str,
        attempt: int,
        *,
        status: str,
        error: Optional[str] = None,
        wall_s: Optional[float] = None,
        pid: Optional[int] = None,
    ) -> None:
        """Record one finished execution attempt (any outcome kind)."""
        with closing(self.store._connect()) as conn, conn:
            conn.execute(
                "INSERT INTO attempts (campaign_id, key, attempt, status,"
                " error, wall_s, pid, recorded_s)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (self.campaign_id, key, int(attempt), status, error,
                 wall_s, pid, self.store._clock()),
            )
            conn.execute(
                "UPDATE cells SET attempts = MAX(attempts, ?)"
                " WHERE campaign_id = ? AND key = ?",
                (int(attempt), self.campaign_id, key),
            )


def open_campaign_store(path: Optional[os.PathLike]) -> Optional[CampaignStore]:
    """A campaign store for ``path``, or ``None`` when not requested."""
    return None if path is None else CampaignStore(path)
