"""Aggregate sweep records into paper-style tables.

Runs are grouped by ``(campaign, profile, ids_family)`` — the experiment
cell — and the per-seed results inside each cell are reduced to means, so
the table a 12 × 3 grid prints has 12 rows no matter how many seeds backed
each row.  Failed runs are counted per cell but excluded from the means.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import Table

GroupKey = Tuple[str, str, Optional[str]]


def group_records(records: Sequence[dict]) -> "OrderedDict[GroupKey, List[dict]]":
    """Group records by experiment cell, preserving first-seen order."""
    groups: "OrderedDict[GroupKey, List[dict]]" = OrderedDict()
    for record in records:
        spec = record.get("spec", {})
        key: GroupKey = (
            str(spec.get("campaign", "?")),
            str(spec.get("profile", "?")),
            spec.get("ids_family"),
        )
        groups.setdefault(key, []).append(record)
    return groups


def _mean(values: List[float]) -> Optional[float]:
    values = [v for v in values if v is not None]
    if not values:
        return None
    return sum(values) / len(values)


def summarize_group(records: Sequence[dict]) -> dict:
    """Mean headline numbers over the successful runs of one cell."""
    ok = [r["result"] for r in records if r.get("status") == "ok"]
    summaries = [r["summary"] for r in ok]
    detections = [r["detection"] for r in ok if r.get("detection")]
    channels = [r["channel"] for r in ok]
    summary = {
        "runs": len(records),
        "failed": sum(1 for r in records if r.get("status") != "ok"),
        "delivered_m3": _mean([s["delivered_m3"] for s in summaries]),
        "delivery_ratio": _mean([s["delivery_ratio"] for s in summaries]),
        "safe_stops": _mean([float(s["safe_stops"]) for s in summaries]),
        "violations": _mean(
            [float(s["safety"]["violations"]) for s in summaries]
        ),
        "alerts": _mean([float(s["alerts"]) for s in summaries]),
        "coverage": _mean([d["coverage"] for d in detections]),
        "mean_latency_s": _mean(
            [d["mean_latency_s"] for d in detections]
        ),
        "false_alarms": _mean(
            [float(d["false_alarms"]) for d in detections]
        ),
        "forged_executed": _mean(
            [float(c["forged_executed"]) for c in channels]
        ),
        "deauths_accepted": _mean(
            [float(c["deauths_accepted"]) for c in channels]
        ),
    }
    telemetry = [r["telemetry"] for r in ok if r.get("telemetry")]
    if telemetry:
        summary["telemetry"] = {
            "trace_records": _mean(
                [float(t["records"]) for t in telemetry]
            ),
            "frames_dropped": _mean(
                [float(t["frames"]["dropped"]) for t in telemetry]
            ),
            "detection_latency_p95_s": _mean(
                [t["detection"]["latency_p95_s"] for t in telemetry]
            ),
            "safety_interventions": _mean(
                [float(t["safety"]["interventions"]) for t in telemetry]
            ),
        }
    resilience = [r["resilience"] for r in ok if r.get("resilience")]
    if resilience:
        services = sorted(
            {name for res in resilience for name in res["availability"]}
        )
        summary["resilience"] = {
            "faults_injected": _mean(
                [float(res["faults"]["injected"]) for res in resilience]
            ),
            "availability": {
                name: _mean([
                    res["availability"].get(name) for res in resilience
                ])
                for name in services
            },
            "mttr_s": _mean([res["mttr_s"] for res in resilience]),
            "safe_stop_p95_s": _mean(
                [res["safe_stop_latency"]["p95_s"] for res in resilience]
            ),
            "retry_exhausted": _mean([
                float(res["delivery"]["retry_exhausted"]) for res in resilience
            ]),
            "rejoins": _mean(
                [float(res["delivery"]["rejoins"]) for res in resilience]
            ),
        }
    invariants = [r["invariants"] for r in ok if r.get("invariants")]
    if invariants:
        flagged = [inv for inv in invariants if inv["violations"]]
        kinds = sorted(
            {name for inv in flagged for name in inv["by_invariant"]}
        )
        summary["invariants"] = {
            "checked_runs": len(invariants),
            "violations": sum(inv["violations"] for inv in invariants),
            "runs_with_violations": len(flagged),
            "by_invariant": {
                name: sum(
                    inv["by_invariant"].get(name, 0) for inv in flagged
                )
                for name in kinds
            },
        }
    perf_snaps = [
        r["perf"] for r in records
        if r.get("status") == "ok" and r.get("perf")
    ]
    if perf_snaps:
        counter_names = sorted(
            {name for snap in perf_snaps for name in snap.get("counters", {})}
        )
        summary["perf"] = {
            "counters": {
                name: _mean(
                    [float(s.get("counters", {}).get(name, 0.0))
                     for s in perf_snaps]
                )
                for name in counter_names
            },
        }
    return summary


def aggregate_rows(records: Sequence[dict]) -> List[dict]:
    """One summarised row dict per experiment cell."""
    rows = []
    for (campaign, profile, ids_family), group in group_records(records).items():
        row = {"campaign": campaign, "profile": profile,
               "ids_family": ids_family}
        row.update(summarize_group(group))
        rows.append(row)
    return rows


def aggregate_table(records: Sequence[dict], *, title: str = "sweep results") -> Table:
    """Render the grouped means as a fixed-width table."""
    rows = aggregate_rows(records)
    with_ids = any(row["ids_family"] for row in rows)
    columns = ["campaign", "profile"]
    if with_ids:
        columns.append("IDS")
    columns += [
        "runs", "failed", "delivered m3", "delivery", "safe stops",
        "violations", "alerts", "coverage", "latency s", "FA",
    ]
    table = Table(columns, title=title)
    for row in rows:
        cells = [row["campaign"], row["profile"]]
        if with_ids:
            cells.append(row["ids_family"] or "-")
        cells += [
            row["runs"], row["failed"], row["delivered_m3"],
            row["delivery_ratio"], row["safe_stops"], row["violations"],
            row["alerts"], row["coverage"], row["mean_latency_s"],
            row["false_alarms"],
        ]
        table.add_row(*cells)
    return table
