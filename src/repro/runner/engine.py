"""The sweep engine: fan a grid of run specs across an execution backend.

:class:`SweepRunner` takes the expanded spec list, consults the result
store for already-completed runs (``resume=True``), and executes only the
delta — inline for ``jobs=1`` (no pool overhead, same code path as the
workers) or through a pluggable :class:`~repro.runner.dispatch.Dispatcher`
(the local process pool by default) otherwise.  Each completed record is
appended to the store as it arrives, so progress survives interruption.
Failures are data, not exceptions: a worker that raises produces a
``status: "failed"`` record and the sweep keeps going.

The execution layer is self-healing.  Infrastructure losses — a worker
SIGKILLed mid-cell (``BrokenProcessPool``), a cell that exceeds its
wall-clock budget — do not fail the cell, let alone the sweep: the
dispatcher resurrects its pool and the engine requeues the cell under a
deterministic :class:`~repro.runner.dispatch.CellRetryPolicy` (bounded
attempts, exponential backoff, seed-derived jitter).  Every attempt is
reported to the store (the SQLite campaign store records them all) and to
the monitor, and only a cell that exhausts its attempt budget becomes a
``failed`` record.

Because every run is a pure function of its spec (see
:mod:`repro.runner.worker`), the report's records are returned in spec
order regardless of completion order — ``--jobs 1`` and ``--jobs 8``
produce identical result sets, and so do an uninterrupted campaign and
one resumed after a crash.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner.dispatch import (
    CellRetryPolicy,
    Dispatcher,
    LocalPoolDispatcher,
    Outcome,
)
from repro.runner.monitor import SweepMonitor
from repro.runner.spec import RunSpec
from repro.runner.store import ResultStore
from repro.runner.worker import execute_run

ProgressFn = Callable[[str], None]

#: minimum seconds between status.json rewrites (and the dispatcher poll
#: timeout that drives heartbeats while no cell completes)
STATUS_INTERVAL_S = 2.0


class UncheckedResultWarning(UserWarning):
    """A resumed cache hit carries no ``result.invariants`` block.

    Raised (as a warning) when ``REPRO_CHECK=1`` asks for invariant-checked
    results but a spec-hash cache hit predates online checking — e.g. a
    store written before checking existed, or without ``REPRO_CHECK``.
    The cached record is still used; the warning keeps the mix visible so
    checked corpora (sweep stores feeding fuzz seeds, CI baselines) are
    never silently diluted with unchecked results.
    """


@dataclass
class SweepReport:
    """Outcome of one sweep invocation."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    #: attempts that were requeued (lost workers, timeouts) rather than
    #: finalised — self-healing activity, not additional cells
    retries: int = 0
    #: stall-detector firings observed by the monitor during the sweep
    stalls: int = 0
    wall_s: float = 0.0
    records: List[dict] = field(default_factory=list)
    #: finished attempt count per cell key (cached hits report 0 new
    #: attempts; the campaign store keeps their history)
    attempts: Dict[str, int] = field(default_factory=dict)

    @property
    def succeeded(self) -> int:
        return self.total - self.failed

    @property
    def total_attempts(self) -> int:
        return sum(self.attempts.values())

    def failures(self) -> List[dict]:
        return [r for r in self.records if r.get("status") != "ok"]

    def results(self) -> List[dict]:
        """The ``result`` payloads of successful runs, in spec order."""
        return [r["result"] for r in self.records if r.get("status") == "ok"]


class SweepRunner:
    """Execute a list of run specs, caching by spec hash.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` runs inline in this process.
    store:
        Optional :class:`ResultStore` or campaign-store binding (see
        :meth:`repro.runner.campaign.CampaignStore.bind`); completed
        records are appended as they arrive, attempts are reported through
        ``record_attempt``, and ``completed_keys`` backs cache hits when
        ``resume`` is set.
    retry_policy:
        The per-cell retry schedule; defaults to
        :class:`~repro.runner.dispatch.CellRetryPolicy` (3 attempts,
        exponential backoff with seed-derived jitter).  Only
        infrastructure losses retry by default — a sim-level failure is a
        pure function of the spec and stays final.
    cell_timeout_s:
        Per-cell wall-clock budget for pool execution; an overdue cell is
        killed and requeued as a retryable ``timeout`` attempt.  ``None``
        disables timeouts.
    dispatcher:
        Optional pre-built execution backend; by default a
        :class:`~repro.runner.dispatch.LocalPoolDispatcher` is created
        per ``run`` with ``min(jobs, len(pending))`` workers.
    task:
        Picklable ``(spec_dict, attempt) -> record`` callable; defaults to
        :func:`repro.runner.worker.execute_run`.  Injectable so the chaos
        tests can wrap the worker in crash/hang behaviour.
    progress:
        Optional callable receiving one formatted line per completed run.
    monitor:
        Optional :class:`~repro.runner.monitor.SweepMonitor` receiving
        ``sweep_started`` / ``cell_started`` / ``cell_finished`` /
        ``cell_retry`` / ``workers_degraded`` / ``heartbeat`` events as
        the sweep advances.
    status_path:
        Where to (atomically) write the monitor snapshot as
        ``status.json``; requires ``monitor``.  Writes are throttled to
        ``status_interval_s`` with a forced final write.
    clock:
        Timestamp source for monitor events and retry eligibility
        (injectable for tests).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        retry_policy: Optional[CellRetryPolicy] = None,
        cell_timeout_s: Optional[float] = None,
        dispatcher: Optional[Dispatcher] = None,
        task: Optional[Callable] = None,
        progress: Optional[ProgressFn] = None,
        monitor: Optional[SweepMonitor] = None,
        status_path=None,
        status_interval_s: float = STATUS_INTERVAL_S,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.store = store
        self.retry_policy = (
            retry_policy if retry_policy is not None else CellRetryPolicy()
        )
        self.cell_timeout_s = cell_timeout_s
        self.dispatcher = dispatcher
        self.task = task if task is not None else execute_run
        self.progress = progress
        self.monitor = monitor
        self.status_path = status_path
        self.status_interval_s = status_interval_s
        self.clock = clock
        self.sleep = sleep
        self._last_status_write: Optional[float] = None
        self._retries = 0

    def run(self, specs: Sequence[RunSpec], *, resume: bool = False) -> SweepReport:
        started = time.perf_counter()
        self._retries = 0
        ordered: List[RunSpec] = []
        seen = set()
        for spec in specs:
            if spec.key not in seen:  # identical cells collapse to one run
                seen.add(spec.key)
                ordered.append(spec)

        cached: Dict[str, dict] = {}
        if resume and self.store is not None:
            completed = self.store.completed_keys()
            cached = {
                spec.key: completed[spec.key]
                for spec in ordered if spec.key in completed
            }
        pending = [spec for spec in ordered if spec.key not in cached]
        if cached:
            self._warn_unchecked(cached)

        self._event("sweep_started", total=len(ordered), jobs=self.jobs)
        report = SweepReport(total=len(ordered), cached=len(cached))
        by_key: Dict[str, dict] = dict(cached)
        done = 0
        for record in cached.values():
            done += 1
            report.attempts[record["key"]] = 0
            # monitor first, so a progress callback reading the monitor's
            # snapshot sees the cell it is reporting on
            self._event("cell_finished", key=record["key"],
                        status=record.get("status"), cached=True)
            self._emit(done=done, total=len(ordered),
                       record=record, from_cache=True)

        for record in self._execute(pending):
            by_key[record["key"]] = record
            report.executed += 1
            report.attempts[record["key"]] = record.get("attempts", 1)
            done += 1
            if self.store is not None:
                self.store.append(record)
            self._event("cell_finished", key=record["key"],
                        status=record.get("status"), cached=False,
                        wall_s=record.get("wall_s"),
                        pid=record.get("pid"),
                        attempts=record.get("attempts"))
            self._emit(done=done, total=len(ordered),
                       record=record, from_cache=False)

        report.records = [by_key[spec.key] for spec in ordered]
        report.failed = sum(
            1 for r in report.records if r.get("status") != "ok"
        )
        report.retries = self._retries
        if self.monitor is not None:
            report.stalls = self.monitor.stall_events
        report.wall_s = round(time.perf_counter() - started, 3)
        self._write_status(force=True)
        return report

    def _warn_unchecked(self, cached: Dict[str, dict]) -> None:
        """Flag resumed cache hits that predate online invariant checking."""
        from repro.invariants import engine as checks

        if not checks.env_enabled():
            return
        stale = sorted(
            key for key, record in cached.items()
            if record.get("status") == "ok"
            and "invariants" not in (record.get("result") or {})
        )
        if not stale:
            return
        shown = ", ".join(stale[:5]) + (" ..." if len(stale) > 5 else "")
        warnings.warn(
            f"{len(stale)} resumed cache hit(s) carry no invariants block "
            f"(store written without REPRO_CHECK?): {shown}; re-run without "
            f"--resume to refresh them",
            UncheckedResultWarning,
            stacklevel=3,
        )

    # -- progress plane ----------------------------------------------------

    def _event(self, name: str, **fields) -> None:
        """Forward one progress event to the monitor (if any) and let it
        refresh ``status.json`` on the throttled cadence."""
        if self.monitor is None:
            return
        fields["event"] = name
        fields.setdefault("t", self.clock())
        self.monitor.on_event(fields)
        self._write_status()

    def _write_status(self, force: bool = False) -> None:
        if self.monitor is None or self.status_path is None:
            return
        now = self.clock()
        if (not force and self._last_status_write is not None
                and now - self._last_status_write < self.status_interval_s):
            return
        self._last_status_write = now
        self.monitor.write_status(self.status_path, now=now)

    # -- store protocol (both ResultStore and CampaignBinding) -------------

    def _mark_running(self, spec: RunSpec, attempt: int) -> None:
        if self.store is not None:
            self.store.mark_running(spec.key, attempt)

    def _record_attempt(self, outcome: Outcome) -> None:
        if self.store is None:
            return
        record = outcome.record or {}
        self.store.record_attempt(
            outcome.spec.key, outcome.attempt,
            status=outcome.kind,
            error=record.get("error") if outcome.record else outcome.error,
            wall_s=record.get("wall_s"),
            pid=record.get("pid"),
        )

    # -- execution backends ------------------------------------------------

    def _execute(self, pending: Sequence[RunSpec]):
        if not pending:
            return
        if self.jobs == 1 and self.dispatcher is None:
            yield from self._execute_inline(pending)
            return
        yield from self._execute_dispatched(pending)

    def _execute_inline(self, pending: Sequence[RunSpec]):
        """The no-pool path: same retry semantics, same record shape.

        Infrastructure losses cannot happen inline (the worker is this
        process), so only ``retry_failed_results`` policies ever loop.
        """
        policy = self.retry_policy
        for spec in pending:
            attempt = 0
            while True:
                attempt += 1
                self._mark_running(spec, attempt)
                self._event("cell_started", key=spec.key, label=spec.label,
                            attempt=attempt)
                record = self.task(spec.to_dict(), attempt)
                kind = "ok" if record.get("status") == "ok" else "failed"
                self._record_attempt(
                    Outcome(spec, attempt, kind, record=record)
                )
                if kind == "ok" or not policy.should_retry(kind, attempt):
                    record["attempts"] = attempt
                    yield record
                    break
                self._retries += 1
                self._event("cell_retry", key=spec.key, attempt=attempt,
                            kind=kind, error=record.get("error"))
                self.sleep(policy.delay_s(spec, attempt))

    def _execute_dispatched(self, pending: Sequence[RunSpec]):
        """The self-healing dispatcher loop: lazy submission (one in-flight
        cell per worker), retry with deterministic backoff, heartbeats."""
        policy = self.retry_policy
        dispatcher = self.dispatcher
        if dispatcher is None:
            dispatcher = LocalPoolDispatcher(
                min(self.jobs, len(pending)),
                task=self.task,
                cell_timeout_s=self.cell_timeout_s,
            )
        dispatcher.on_degrade = self._on_degrade
        ready = deque(pending)
        delayed: List[tuple] = []  # (eligible_t, spec) backoff parking lot
        attempts: Dict[str, int] = {}
        dispatcher.start()
        try:
            while ready or delayed or dispatcher.in_flight:
                now = self.clock()
                if delayed:
                    due = [item for item in delayed if item[0] <= now]
                    if due:
                        delayed = [i for i in delayed if i[0] > now]
                        ready.extend(spec for _, spec in due)
                # lazy submission — one in-flight future per worker — keeps
                # "started" synonymous with "executing", so cell ages (and
                # the stall detector reading them) measure work, not queue
                # time
                while ready and dispatcher.capacity > 0:
                    spec = ready.popleft()
                    attempt = attempts.get(spec.key, 0) + 1
                    attempts[spec.key] = attempt
                    dispatcher.submit(spec, attempt)
                    self._mark_running(spec, attempt)
                    self._event("cell_started", key=spec.key,
                                label=spec.label, attempt=attempt)
                if not dispatcher.in_flight and not ready and delayed:
                    # nothing to poll: park until the earliest backoff
                    # deadline instead of spinning
                    wake = min(t for t, _ in delayed) - self.clock()
                    if wake > 0:
                        self.sleep(min(wake, self.status_interval_s))
                    continue
                timeout = (
                    self.status_interval_s if self.monitor is not None
                    else None
                )
                if delayed:
                    wake = max(0.0, min(t for t, _ in delayed) - now)
                    timeout = wake if timeout is None else min(timeout, wake)
                outcomes = dispatcher.poll(timeout)
                if not outcomes:
                    # nothing completed within the interval: refresh
                    # liveness so a wedged worker surfaces as a stall
                    self._event("heartbeat")
                    continue
                for outcome in outcomes:
                    self._record_attempt(outcome)
                    if policy.should_retry(outcome.kind, outcome.attempt):
                        self._retries += 1
                        delay = policy.delay_s(outcome.spec, outcome.attempt)
                        self._event("cell_retry", key=outcome.spec.key,
                                    attempt=outcome.attempt,
                                    kind=outcome.kind, delay_s=delay,
                                    error=outcome.error)
                        delayed.append((self.clock() + delay, outcome.spec))
                        continue
                    yield self._finalise(outcome)
        finally:
            dispatcher.stop()

    def _finalise(self, outcome: Outcome) -> dict:
        """The final record for a cell that will not be retried."""
        record = outcome.record
        if record is None:
            # the cell never produced a record (lost / timeout / pool
            # error after the attempt budget): report it, keep sweeping
            record = {
                "key": outcome.spec.key,
                "spec": outcome.spec.to_dict(),
                "status": "failed",
                "error": outcome.error,
                "result": None,
                "wall_s": None,
            }
        record["attempts"] = outcome.attempt
        return record

    def _on_degrade(self, old_workers: int, new_workers: int) -> None:
        """Dispatcher shrank its worker budget: surface, don't fail."""
        self._event("workers_degraded", old=old_workers, new=new_workers)
        if self.progress is not None:
            self.progress(
                f"[degraded] worker budget {old_workers} -> {new_workers} "
                "after repeated pool breakage"
            )

    def _emit(self, *, done: int, total: int, record: dict,
              from_cache: bool) -> None:
        if self.progress is None:
            return
        spec = RunSpec.from_dict(record["spec"])
        status = record.get("status", "?")
        if from_cache:
            tag = "cached"
        elif status == "ok":
            tag = f"ok {record.get('wall_s', '?')}s"
            if record.get("attempts", 1) > 1:
                tag += f" ({record['attempts']} attempts)"
        else:
            tag = f"FAILED ({record.get('error', 'unknown error')})"
        self.progress(f"[{done}/{total}] {spec.label}: {tag}")


def run_sweep(
    specs: Sequence[RunSpec],
    *,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    retry_policy: Optional[CellRetryPolicy] = None,
    cell_timeout_s: Optional[float] = None,
    progress: Optional[ProgressFn] = None,
    monitor: Optional[SweepMonitor] = None,
    status_path=None,
) -> SweepReport:
    """Convenience wrapper: one call from specs to report."""
    runner = SweepRunner(
        jobs=jobs, store=store, retry_policy=retry_policy,
        cell_timeout_s=cell_timeout_s, progress=progress,
        monitor=monitor, status_path=status_path,
    )
    return runner.run(specs, resume=resume)
