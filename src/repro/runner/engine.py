"""The sweep engine: fan a grid of run specs across a process pool.

:class:`SweepRunner` takes the expanded spec list, consults the result
store for already-completed runs (``resume=True``), and executes only the
delta — inline for ``jobs=1`` (no pool overhead, same code path as the
workers) or via :class:`concurrent.futures.ProcessPoolExecutor` otherwise.
Each completed record is appended to the store as it arrives, so progress
survives interruption.  Failures are data, not exceptions: a worker that
raises produces a ``status: "failed"`` record and the sweep keeps going.

Because every run is a pure function of its spec (see
:mod:`repro.runner.worker`), the report's records are returned in spec
order regardless of completion order — ``--jobs 1`` and ``--jobs 8``
produce identical result sets.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner.monitor import SweepMonitor
from repro.runner.spec import RunSpec
from repro.runner.store import ResultStore
from repro.runner.worker import execute_run

ProgressFn = Callable[[str], None]

#: minimum seconds between status.json rewrites (and the pool wait
#: timeout that drives heartbeats while no cell completes)
STATUS_INTERVAL_S = 2.0


class UncheckedResultWarning(UserWarning):
    """A resumed cache hit carries no ``result.invariants`` block.

    Raised (as a warning) when ``REPRO_CHECK=1`` asks for invariant-checked
    results but a spec-hash cache hit predates online checking — e.g. a
    store written before checking existed, or without ``REPRO_CHECK``.
    The cached record is still used; the warning keeps the mix visible so
    checked corpora (sweep stores feeding fuzz seeds, CI baselines) are
    never silently diluted with unchecked results.
    """


@dataclass
class SweepReport:
    """Outcome of one sweep invocation."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    wall_s: float = 0.0
    records: List[dict] = field(default_factory=list)

    @property
    def succeeded(self) -> int:
        return self.total - self.failed

    def failures(self) -> List[dict]:
        return [r for r in self.records if r.get("status") != "ok"]

    def results(self) -> List[dict]:
        """The ``result`` payloads of successful runs, in spec order."""
        return [r["result"] for r in self.records if r.get("status") == "ok"]


class SweepRunner:
    """Execute a list of run specs, caching by spec hash.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` runs inline in this process.
    store:
        Optional :class:`ResultStore`; completed records are appended as
        they arrive and consulted for cache hits when ``resume`` is set.
    progress:
        Optional callable receiving one formatted line per completed run.
    monitor:
        Optional :class:`~repro.runner.monitor.SweepMonitor` receiving
        ``sweep_started`` / ``cell_started`` / ``cell_finished`` /
        ``heartbeat`` events as the sweep advances.
    status_path:
        Where to (atomically) write the monitor snapshot as
        ``status.json``; requires ``monitor``.  Writes are throttled to
        ``status_interval_s`` with a forced final write.
    clock:
        Timestamp source for monitor events (injectable for tests).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        progress: Optional[ProgressFn] = None,
        monitor: Optional[SweepMonitor] = None,
        status_path=None,
        status_interval_s: float = STATUS_INTERVAL_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.store = store
        self.progress = progress
        self.monitor = monitor
        self.status_path = status_path
        self.status_interval_s = status_interval_s
        self.clock = clock
        self._last_status_write: Optional[float] = None

    def run(self, specs: Sequence[RunSpec], *, resume: bool = False) -> SweepReport:
        started = time.perf_counter()
        ordered: List[RunSpec] = []
        seen = set()
        for spec in specs:
            if spec.key not in seen:  # identical cells collapse to one run
                seen.add(spec.key)
                ordered.append(spec)

        cached: Dict[str, dict] = {}
        if resume and self.store is not None:
            completed = self.store.completed_keys()
            cached = {
                spec.key: completed[spec.key]
                for spec in ordered if spec.key in completed
            }
        pending = [spec for spec in ordered if spec.key not in cached]
        if cached:
            self._warn_unchecked(cached)

        self._event("sweep_started", total=len(ordered), jobs=self.jobs)
        report = SweepReport(total=len(ordered), cached=len(cached))
        by_key: Dict[str, dict] = dict(cached)
        done = 0
        for record in cached.values():
            done += 1
            # monitor first, so a progress callback reading the monitor's
            # snapshot sees the cell it is reporting on
            self._event("cell_finished", key=record["key"],
                        status=record.get("status"), cached=True)
            self._emit(done=done, total=len(ordered),
                       record=record, from_cache=True)

        for record in self._execute(pending):
            by_key[record["key"]] = record
            report.executed += 1
            done += 1
            if self.store is not None:
                self.store.append(record)
            self._event("cell_finished", key=record["key"],
                        status=record.get("status"), cached=False,
                        wall_s=record.get("wall_s"),
                        pid=record.get("pid"))
            self._emit(done=done, total=len(ordered),
                       record=record, from_cache=False)

        report.records = [by_key[spec.key] for spec in ordered]
        report.failed = sum(
            1 for r in report.records if r.get("status") != "ok"
        )
        report.wall_s = round(time.perf_counter() - started, 3)
        self._write_status(force=True)
        return report

    def _warn_unchecked(self, cached: Dict[str, dict]) -> None:
        """Flag resumed cache hits that predate online invariant checking."""
        from repro.invariants import engine as checks

        if not checks.env_enabled():
            return
        stale = sorted(
            key for key, record in cached.items()
            if record.get("status") == "ok"
            and "invariants" not in (record.get("result") or {})
        )
        if not stale:
            return
        shown = ", ".join(stale[:5]) + (" ..." if len(stale) > 5 else "")
        warnings.warn(
            f"{len(stale)} resumed cache hit(s) carry no invariants block "
            f"(store written without REPRO_CHECK?): {shown}; re-run without "
            f"--resume to refresh them",
            UncheckedResultWarning,
            stacklevel=3,
        )

    # -- progress plane ----------------------------------------------------

    def _event(self, name: str, **fields) -> None:
        """Forward one progress event to the monitor (if any) and let it
        refresh ``status.json`` on the throttled cadence."""
        if self.monitor is None:
            return
        fields["event"] = name
        fields.setdefault("t", self.clock())
        self.monitor.on_event(fields)
        self._write_status()

    def _write_status(self, force: bool = False) -> None:
        if self.monitor is None or self.status_path is None:
            return
        now = self.clock()
        if (not force and self._last_status_write is not None
                and now - self._last_status_write < self.status_interval_s):
            return
        self._last_status_write = now
        self.monitor.write_status(self.status_path, now=now)

    # -- execution backends ------------------------------------------------

    def _execute(self, pending: Sequence[RunSpec]):
        if not pending:
            return
        if self.jobs == 1:
            for spec in pending:
                self._event("cell_started", key=spec.key, label=spec.label)
                yield execute_run(spec)
            return
        yield from self._execute_pool(pending)

    def _execute_pool(self, pending: Sequence[RunSpec]):
        workers = min(self.jobs, len(pending))
        queue = list(pending)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: Dict = {}

            def submit_next() -> None:
                spec = queue.pop(0)
                futures[pool.submit(execute_run, spec.to_dict())] = spec
                self._event("cell_started", key=spec.key, label=spec.label)

            # lazy submission — one in-flight future per worker — keeps
            # "started" synonymous with "executing", so cell ages (and the
            # stall detector reading them) measure work, not queue time
            for _ in range(min(workers, len(queue))):
                submit_next()
            while futures:
                timeout = (
                    self.status_interval_s if self.monitor is not None
                    else None
                )
                finished, _ = wait(
                    set(futures), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not finished:
                    # nothing completed within the interval: refresh
                    # liveness so a wedged worker surfaces as a stall
                    self._event("heartbeat")
                    continue
                for future in finished:
                    spec = futures.pop(future)
                    error = future.exception()
                    if error is None:
                        yield future.result()
                    else:
                        # pool-level breakage (lost worker, unpicklable
                        # payload): report the cell, keep sweeping
                        yield {
                            "key": spec.key,
                            "spec": spec.to_dict(),
                            "status": "failed",
                            "error": f"{type(error).__name__}: {error}",
                            "result": None,
                            "wall_s": None,
                        }
                    if queue:
                        submit_next()

    def _emit(self, *, done: int, total: int, record: dict,
              from_cache: bool) -> None:
        if self.progress is None:
            return
        spec = RunSpec.from_dict(record["spec"])
        status = record.get("status", "?")
        if from_cache:
            tag = "cached"
        elif status == "ok":
            tag = f"ok {record.get('wall_s', '?')}s"
        else:
            tag = f"FAILED ({record.get('error', 'unknown error')})"
        self.progress(f"[{done}/{total}] {spec.label}: {tag}")


def run_sweep(
    specs: Sequence[RunSpec],
    *,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    monitor: Optional[SweepMonitor] = None,
    status_path=None,
) -> SweepReport:
    """Convenience wrapper: one call from specs to report."""
    runner = SweepRunner(
        jobs=jobs, store=store, progress=progress,
        monitor=monitor, status_path=status_path,
    )
    return runner.run(specs, resume=resume)
