"""The process-pool worker: one :class:`RunSpec` in, one result record out.

``execute_run`` is the module-level entry point submitted to
``ProcessPoolExecutor`` — it must stay importable as
``repro.runner.worker.execute_run`` and take/return only picklable,
JSON-serialisable values.  Everything a run can report — summary, IDS
score, channel-level counters — is folded into one flat record dict; a
worker that raises is converted into a ``status: "failed"`` record instead
of propagating, so one broken cell never kills the sweep.

The record's ``result`` sub-dict is a pure function of the spec (the
determinism contract the cache relies on); wall-clock timing lives outside
it under ``wall_s``, and so does the optional ``perf`` counter snapshot
(its ``timings`` carry wall-clock seconds).  The deterministic telemetry
summary recorded under ``REPRO_TRACE=1`` *is* spec-pure, so it rides inside
``result`` as ``result["telemetry"]``; likewise the invariant report
recorded under ``REPRO_CHECK=1`` rides as ``result["invariants"]``.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Mapping, Optional, Union

from repro.perf import counters as perf
from repro.runner.spec import RunSpec


def execute_run(spec: Union[RunSpec, Mapping], attempt: int = 1) -> dict:
    """Execute one run; never raises (failures become failed records).

    ``attempt`` is the execution attempt number under the engine's retry
    policy (1 for first tries); it is stamped into the record so the
    campaign store can attribute the result to the right attempt row.
    """
    if not isinstance(spec, RunSpec):
        spec = RunSpec.from_dict(spec)
    if perf.enabled():
        perf.reset()
    started = time.perf_counter()
    try:
        result = _simulate(spec)
        status, error = "ok", None
    except Exception as exc:  # noqa: BLE001 - the record carries the details
        result, status = None, "failed"
        error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    record = {
        "key": spec.key,
        "spec": spec.to_dict(),
        "status": status,
        "error": error,
        "result": result,
        "wall_s": round(time.perf_counter() - started, 3),
        # which pool worker ran the cell — feeds per-worker liveness in
        # the sweep monitor; wall-clock-adjacent, so outside ``result``
        "pid": os.getpid(),
        # which retry attempt produced this record (1 = first try)
        "attempt": int(attempt),
    }
    if perf.enabled():
        record["perf"] = perf.snapshot()
    return record


def _simulate(spec: RunSpec) -> dict:
    # imported here so pool workers pay the import cost once per process,
    # not once per module import on the coordinator
    from repro.invariants import engine as checks
    from repro.scenarios.factory import compose_run
    from repro.telemetry import tracer as trace

    prepared = compose_run(
        seed=spec.seed,
        horizon_s=spec.horizon_s,
        profile=spec.profile,
        plan=spec.plan,
        ids_family=spec.ids_family,
        overrides=dict(spec.overrides),
        faults=spec.faults,
    )
    scenario = prepared.scenario
    tracing = trace.env_enabled()
    checker = checks.InvariantEngine() if checks.env_enabled() else None
    if checker is not None:
        # armed before the tracer emits anything: the online engine must
        # observe the header (and the run span it opens) or the span
        # discipline invariant would see an amputated stream
        checks.install(checker)
    tracer = None
    if tracing or checker is not None:
        # the invariant engine rides on the record stream, so REPRO_CHECK
        # alone still installs a (writer-less, record-less) tracer
        spans = tracing and trace.env_spans_enabled()
        tracer = trace.Tracer(scenario.sim, spans=spans)
        if spans:
            # the span emitter needs a header to open the run span; only
            # emitted under REPRO_SPANS so default summaries are unchanged
            tracer.meta(
                seed=spec.seed, profile=spec.profile, plan=spec.plan,
                horizon_s=spec.horizon_s,
            )
        trace.install(tracer)
    try:
        scenario.run(spec.horizon_s)
        if scenario.groundstation is not None:
            # close the audit chain inside the traced window so the close
            # entry is part of the record stream (and of any audit file)
            scenario.groundstation.finalize()
    finally:
        if tracer is not None:
            # ends any spans still open at the horizon (no-op without
            # spans: there is no writer to flush in a pool worker)
            tracer.close()
            trace.uninstall()
        if checker is not None:
            checks.uninstall()

    detection: Optional[dict] = None
    manager = prepared.score_manager()
    if manager is not None:
        score = manager.score(prepared.windows, horizon_s=spec.horizon_s)
        detection = {
            "attacks_total": score.attacks_total,
            "attacks_detected": score.attacks_detected,
            "coverage": round(score.coverage, 4),
            "mean_latency_s": (
                None if score.mean_latency_s is None
                else round(score.mean_latency_s, 3)
            ),
            "false_alarms": score.false_alarms,
            "false_alarm_rate_per_h": round(score.false_alarm_rate_per_h, 3),
            "alerts": len(manager.alerts),
        }
    forwarder_node = scenario.network.nodes["forwarder"]
    result = {
        "summary": scenario.summary(),
        "detection": detection,
        "channel": {
            "frames_lost": scenario.medium.frames_lost,
            "records_rejected": forwarder_node.records_rejected,
            "deauths_accepted": scenario.log.count("deauthenticated"),
            "forged_executed": scenario.command_channel.executed,
        },
    }
    if prepared.fault_injector is not None:
        result["resilience"] = prepared.fault_injector.resilience_summary(
            spec.horizon_s
        )
    if tracing and tracer is not None:
        result["telemetry"] = tracer.summary()
    if checker is not None:
        checker.finish()
        result["invariants"] = checker.summary()
    return result
