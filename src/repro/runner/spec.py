"""Declarative run and sweep specifications.

A :class:`RunSpec` describes exactly one worksite run — campaign timeline,
seed, horizon, defence profile, scenario overrides — using only primitive
values, so it pickles across process boundaries and serialises to JSON
byte-identically on every platform.  Its :attr:`RunSpec.key` is a SHA-256
hash of that canonical JSON; the result store caches completed runs under
this key, which is what makes ``--resume`` and delta execution sound: two
specs collide exactly when they describe the same simulation.

A :class:`SweepSpec` is the declarative grid — campaigns × seeds ×
profiles × scenario variants × horizon — that :meth:`SweepSpec.expand`
turns into the concrete list of run specs.  Grids can come from CLI flags
or from a TOML/JSON spec file (:func:`load_sweep_spec`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.rng import derive_seed

#: sentinel campaign name for the benign no-attack baseline
BASELINE = "baseline"

PlanStep = Tuple[str, float, Optional[float]]


def _freeze_plan(plan: Sequence[Sequence]) -> Tuple[PlanStep, ...]:
    steps: List[PlanStep] = []
    for step in plan:
        name, start, duration = step
        steps.append((
            str(name), float(start),
            None if duration is None else float(duration),
        ))
    return tuple(steps)


def _freeze_overrides(overrides: Optional[Mapping]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted((str(k), v) for k, v in dict(overrides or {}).items()))


def _freeze_faults(faults: Sequence) -> Tuple[tuple, ...]:
    """Freeze ``FaultSpec.to_primitives`` items (lists after a JSON round
    trip) back into hashable nested tuples."""
    frozen = []
    for item in faults or ():
        kind, target, start, duration, params = item
        frozen.append((
            str(kind), str(target), float(start),
            None if duration is None else float(duration),
            tuple((str(k), v) for k, v in params),
        ))
    return tuple(frozen)


@dataclass(frozen=True)
class RunSpec:
    """One fully determined worksite run, in primitives only.

    ``campaign`` names the run for grouping and display; the executable
    attack timeline is ``plan``.  Use :meth:`single` to build the common
    one-campaign case, where the plan is derived from the name.
    """

    campaign: str = BASELINE
    seed: int = 42
    horizon_s: float = 900.0
    profile: str = "defended"
    plan: Tuple[PlanStep, ...] = ()
    ids_family: Optional[str] = None
    overrides: Tuple[Tuple[str, object], ...] = ()
    #: fault timeline as FaultSpec.to_primitives() tuples (empty = no faults)
    faults: Tuple[tuple, ...] = ()

    @classmethod
    def single(
        cls,
        campaign: str,
        *,
        seed: int,
        horizon_s: float,
        profile: str = "defended",
        start: float = 600.0,
        duration: Optional[float] = None,
        ids_family: Optional[str] = None,
        overrides: Optional[Mapping[str, object]] = None,
        faults: Sequence = (),
    ) -> "RunSpec":
        """A run with one campaign (or the baseline when ``campaign`` is
        :data:`BASELINE` / empty)."""
        plan: Tuple[PlanStep, ...] = ()
        if campaign and campaign != BASELINE:
            plan = ((campaign, float(start),
                     None if duration is None else float(duration)),)
        return cls(
            campaign=campaign or BASELINE,
            seed=int(seed),
            horizon_s=float(horizon_s),
            profile=profile,
            plan=plan,
            ids_family=ids_family,
            overrides=_freeze_overrides(overrides),
            faults=_freeze_faults(faults),
        )

    @property
    def key(self) -> str:
        """Stable content hash of the spec (cache / store key)."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:16]

    @property
    def label(self) -> str:
        """Human-readable one-liner for progress output."""
        parts = [self.campaign, f"seed={self.seed}", self.profile]
        if self.ids_family:
            parts.append(f"ids={self.ids_family}")
        if self.overrides:
            parts.append("+" + ",".join(k for k, _ in self.overrides))
        if self.faults:
            parts.append(f"faults={len(self.faults)}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "profile": self.profile,
            "plan": [list(step) for step in self.plan],
            "ids_family": self.ids_family,
            "overrides": {k: v for k, v in self.overrides},
            "faults": [
                [kind, target, start, duration, [list(p) for p in params]]
                for kind, target, start, duration, params in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        return cls(
            campaign=str(data.get("campaign", BASELINE)),
            seed=int(data.get("seed", 42)),
            horizon_s=float(data.get("horizon_s", 900.0)),
            profile=str(data.get("profile", "defended")),
            plan=_freeze_plan(data.get("plan", ())),
            ids_family=data.get("ids_family"),
            overrides=_freeze_overrides(data.get("overrides")),
            faults=_freeze_faults(data.get("faults", ())),
        )


def derive_sweep_seeds(base_seed: int, n_seeds: int) -> List[int]:
    """Deterministic per-run seeds from one base seed.

    Uses the same SHA-256 derivation as the simulation's own
    :class:`~repro.sim.rng.RngStreams`, so the mapping is stable across
    Python versions and platforms; seeds are folded to 31 bits to stay
    friendly to every consumer.
    """
    return [
        derive_seed(base_seed, f"sweep-run:{i}") % (2 ** 31)
        for i in range(int(n_seeds))
    ]


@dataclass
class SweepSpec:
    """A declarative grid of runs: campaigns × seeds × profiles × variants.

    ``variants`` are named ScenarioConfig override sets, e.g.
    ``{"no_drone": {"drone_enabled": False}}``; the empty-name default
    variant (no overrides) is used when none are given.
    """

    campaigns: List[str] = field(default_factory=lambda: [BASELINE])
    seeds: List[int] = field(default_factory=list)
    base_seed: int = 42
    n_seeds: int = 1
    horizon_s: float = 900.0
    profiles: List[str] = field(default_factory=lambda: ["defended"])
    attack_start: float = 600.0
    attack_duration: Optional[float] = None
    variants: Dict[str, Dict[str, object]] = field(default_factory=dict)
    ids_families: List[Optional[str]] = field(default_factory=lambda: [None])
    #: named fault campaign applied to every run (None = fault-free sweep)
    fault_campaign: Optional[str] = None
    fault_start: float = 20.0
    fault_duration: float = 30.0

    def resolved_seeds(self) -> List[int]:
        if self.seeds:
            return [int(s) for s in self.seeds]
        return derive_sweep_seeds(self.base_seed, self.n_seeds)

    def resolved_faults(self) -> Tuple[tuple, ...]:
        """The fault timeline primitives every expanded run carries."""
        if not self.fault_campaign:
            return ()
        from repro.faults.campaigns import build_fault_campaign

        schedule = build_fault_campaign(
            self.fault_campaign,
            start=self.fault_start, duration=self.fault_duration,
        )
        return tuple(fault.to_primitives() for fault in schedule.faults)

    def expand(self) -> List[RunSpec]:
        """The concrete run list, in a stable deterministic order."""
        variants = self.variants or {"": {}}
        faults = self.resolved_faults()
        specs: List[RunSpec] = []
        for campaign in self.campaigns:
            for profile in self.profiles:
                for variant_name, overrides in variants.items():
                    for ids_family in self.ids_families:
                        for seed in self.resolved_seeds():
                            spec = RunSpec.single(
                                campaign,
                                seed=seed,
                                horizon_s=self.horizon_s,
                                profile=profile,
                                start=self.attack_start,
                                duration=self.attack_duration,
                                ids_family=ids_family,
                                overrides=overrides,
                                faults=faults,
                            )
                            if variant_name:
                                spec = replace(
                                    spec,
                                    campaign=f"{campaign}/{variant_name}",
                                )
                            specs.append(spec)
        return specs


def load_sweep_spec(path: str) -> SweepSpec:
    """Load a sweep grid from a TOML or JSON spec file.

    Recognised top-level keys mirror :class:`SweepSpec` fields, with
    ``horizon_minutes`` accepted as a convenience alias for ``horizon_s``.
    Variants are given as a table/object of named override sets::

        campaigns = ["rf_jamming", "gnss_spoofing"]
        base_seed = 42
        n_seeds = 3
        horizon_minutes = 20
        profiles = ["defended", "undefended"]

        [variants.no_drone]
        drone_enabled = false
    """
    raw = Path(path).read_bytes()
    if path.endswith(".json"):
        data = json.loads(raw.decode("utf-8"))
    else:
        import tomllib

        data = tomllib.loads(raw.decode("utf-8"))
    return sweep_spec_from_mapping(data)


def sweep_spec_from_mapping(data: Mapping) -> SweepSpec:
    """Build a :class:`SweepSpec` from a parsed spec-file mapping."""
    known = {
        "campaigns", "seeds", "base_seed", "n_seeds", "horizon_s",
        "horizon_minutes", "profiles", "attack_start", "attack_duration",
        "variants", "ids_families", "fault_campaign", "fault_start",
        "fault_duration",
    }
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown sweep spec keys {unknown}; known: {sorted(known)}"
        )
    spec = SweepSpec()
    if "campaigns" in data:
        spec.campaigns = [str(c) for c in data["campaigns"]]
    if "seeds" in data:
        spec.seeds = [int(s) for s in data["seeds"]]
    if "base_seed" in data:
        spec.base_seed = int(data["base_seed"])
    if "n_seeds" in data:
        spec.n_seeds = int(data["n_seeds"])
    if "horizon_minutes" in data:
        spec.horizon_s = float(data["horizon_minutes"]) * 60.0
    if "horizon_s" in data:
        spec.horizon_s = float(data["horizon_s"])
    if "profiles" in data:
        spec.profiles = [str(p) for p in data["profiles"]]
    if "attack_start" in data:
        spec.attack_start = float(data["attack_start"])
    if "attack_duration" in data:
        value = data["attack_duration"]
        spec.attack_duration = None if value is None else float(value)
    if "variants" in data:
        spec.variants = {
            str(name): dict(overrides)
            for name, overrides in dict(data["variants"]).items()
        }
    if "ids_families" in data:
        spec.ids_families = [
            None if f in (None, "", "none") else str(f)
            for f in data["ids_families"]
        ]
    if "fault_campaign" in data:
        value = data["fault_campaign"]
        spec.fault_campaign = (
            None if value in (None, "", "none") else str(value)
        )
    if "fault_start" in data:
        spec.fault_start = float(data["fault_start"])
    if "fault_duration" in data:
        spec.fault_duration = float(data["fault_duration"])
    return spec
