"""Pluggable execution backends for the sweep engine, plus retry policy.

The engine used to own a ``ProcessPoolExecutor`` directly, which meant one
SIGKILLed worker broke the pool and the next ``submit`` crashed the whole
sweep.  This module splits "how cells execute" out of "which cells to
execute" behind a small :class:`Dispatcher` interface (the provider-class
pattern: backends register in :data:`DISPATCHERS` by name, multi-host
dispatch is a new class, not an engine rewrite).

:class:`LocalPoolDispatcher` is the first backend and hardens the process
pool three ways:

* **pool resurrection** — a ``BrokenProcessPool`` (worker SIGKILLed, OOM
  kill, interpreter abort) no longer propagates: the in-flight cells come
  back as retryable ``lost`` outcomes and a fresh pool is spawned for the
  next submit;
* **per-cell wall-clock timeouts** — a wedged cell is killed (the pool's
  worker processes are terminated) and reported as a retryable ``timeout``
  outcome instead of stalling the sweep forever;
* **graceful degradation** — repeated consecutive pool breakage halves the
  worker budget (never below ``min_workers``) instead of failing the
  campaign, surfacing the reduction through ``on_degrade`` (the engine
  forwards it to the :class:`~repro.runner.monitor.SweepMonitor`).

Whether a ``lost``/``timeout`` cell is *re-run* is the engine's decision,
driven by :class:`CellRetryPolicy` — deterministic bounded attempts with
exponential backoff and seed-derived jitter, mirroring the shape of the
link-layer :class:`~repro.comms.link.RetryPolicy`.  Simulation-level
failures (a run that raises inside the sim) are a pure function of the
spec, so they are final by default: retrying them would burn attempts on
a deterministic outcome.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.runner.spec import RunSpec
from repro.runner.worker import execute_run
from repro.sim.rng import derive_seed

#: outcome kinds that are infrastructure losses (the cell never produced a
#: record) and therefore worth retrying under the default policy
RETRYABLE_KINDS = ("lost", "timeout")


@dataclass(frozen=True)
class CellRetryPolicy:
    """Deterministic per-cell retry schedule: bounded attempts, exponential
    backoff, seed-derived jitter.

    The jitter is a pure function of ``(spec.seed, spec.key, attempt)`` via
    the same SHA-256 derivation the simulation RNG uses, so two runs of the
    same campaign produce identical retry timelines — no module-level
    ``random`` anywhere near the scheduler.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    backoff_factor: float = 2.0
    max_delay_s: float = 2.0
    jitter_s: float = 0.01
    #: also retry cells whose *simulation* failed (off by default: a run is
    #: a pure function of its spec, so a sim-level failure is deterministic)
    retry_failed_results: bool = False

    def should_retry(self, kind: str, attempt: int) -> bool:
        """Whether an attempt that ended as ``kind`` deserves another try.

        ``lost`` and ``timeout`` are infrastructure losses — retryable.
        ``failed`` (the sim raised) and ``error`` (unpicklable payload and
        friends) are deterministic — final unless opted in.
        """
        if attempt >= self.max_attempts:
            return False
        if kind in RETRYABLE_KINDS:
            return True
        return kind == "failed" and self.retry_failed_results

    def delay_s(self, spec: RunSpec, attempt: int) -> float:
        """Backoff before re-submitting ``spec`` after attempt ``attempt``."""
        delay = min(
            self.base_delay_s * self.backoff_factor ** max(0, attempt - 1),
            self.max_delay_s,
        )
        if self.jitter_s > 0.0:
            frac = derive_seed(
                spec.seed, f"cell-retry:{spec.key}:{attempt}"
            ) % 1_000_000 / 1_000_000.0
            delay += frac * self.jitter_s
        return round(delay, 6)


@dataclass
class Outcome:
    """One finished (or lost) execution attempt, as the dispatcher saw it.

    ``kind`` is the attempt-status taxonomy the retry policy and the
    campaign store's ``attempts`` table share:

    * ``ok`` — the worker returned a successful record;
    * ``failed`` — the worker returned a record whose *simulation* failed
      (deterministic: the record carries the traceback);
    * ``lost`` — the worker died (or the pool broke) before returning;
    * ``timeout`` — the cell exceeded the wall-clock budget and its worker
      was killed;
    * ``error`` — the future raised something that is not pool breakage
      (e.g. an unpicklable result).
    """

    spec: RunSpec
    attempt: int
    kind: str
    record: Optional[dict] = None
    error: Optional[str] = None


class Dispatcher:
    """Execution backend interface: submit cells, poll outcomes.

    The engine drives any backend with the same four-step loop::

        dispatcher.start()
        while work:
            while ready and dispatcher.capacity:
                dispatcher.submit(spec, attempt)
            for outcome in dispatcher.poll(timeout):
                ...  # retry or finalise
        dispatcher.stop()

    Implementations must never raise out of ``submit``/``poll`` for
    worker-side failures — bad news travels as :class:`Outcome` values —
    and must never silently drop a submitted spec.
    """

    #: registry name (the ``providerclass`` analogue)
    name = "abstract"

    def start(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    @property
    def capacity(self) -> int:
        """Free execution slots right now."""
        raise NotImplementedError

    @property
    def in_flight(self) -> int:
        """Cells currently submitted and not yet reported."""
        raise NotImplementedError

    def submit(self, spec: RunSpec, attempt: int = 1) -> None:
        raise NotImplementedError

    def poll(self, timeout_s: Optional[float] = None) -> List[Outcome]:
        raise NotImplementedError


class LocalPoolDispatcher(Dispatcher):
    """Self-healing ``ProcessPoolExecutor`` backend.

    Parameters
    ----------
    workers:
        Initial worker budget; may shrink under repeated pool breakage.
    task:
        Module-level picklable callable ``(spec_dict, attempt) -> record``;
        defaults to :func:`repro.runner.worker.execute_run`.
    cell_timeout_s:
        Per-cell wall-clock budget.  ``None`` (the default) disables
        timeouts.  Because a running future cannot be cancelled, enforcing
        a timeout kills the pool's workers; collateral in-flight cells come
        back as retryable ``lost`` outcomes.
    degrade_after:
        Consecutive organic pool breakages before the worker budget is
        halved (deliberate timeout kills do not count).
    min_workers:
        Floor for degradation; the dispatcher never shrinks below this.
    on_degrade:
        Optional callback ``(old_workers, new_workers)`` fired when the
        budget shrinks.
    clock:
        Monotonic timestamp source (injectable for tests).
    """

    name = "local"

    def __init__(
        self,
        workers: int,
        *,
        task: Optional[Callable] = None,
        cell_timeout_s: Optional[float] = None,
        degrade_after: int = 3,
        min_workers: int = 1,
        on_degrade: Optional[Callable[[int, int], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cell_timeout_s = cell_timeout_s
        self.degrade_after = degrade_after
        self.min_workers = max(1, min_workers)
        self.on_degrade = on_degrade
        self._task = task if task is not None else execute_run
        self._clock = clock
        self._pool: Optional[ProcessPoolExecutor] = None
        #: future -> (spec, attempt, started_t)
        self._futures: Dict = {}
        #: outcomes produced outside poll (submit-time pool resets)
        self._pending: List[Outcome] = []
        self._breakage_streak = 0
        self.breakages = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self._ensure_pool()

    def stop(self) -> None:
        if self._pool is None:
            return
        if self._futures:
            # abandoning in-flight work (engine shutdown mid-campaign):
            # kill rather than wait, a wedged worker must not block exit
            self._terminate_workers()
            self._pool.shutdown(wait=False, cancel_futures=True)
        else:
            self._pool.shutdown(wait=True)
        self._pool = None
        self._futures.clear()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _terminate_workers(self) -> None:
        processes = getattr(self._pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError):  # already gone / closed
                pass

    # -- accounting ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        return max(0, self.workers - len(self._futures))

    @property
    def in_flight(self) -> int:
        return len(self._futures)

    # -- submit / poll ------------------------------------------------------

    def submit(self, spec: RunSpec, attempt: int = 1) -> None:
        """Submit one cell; never raises for pool breakage and never loses
        the spec (a broken pool is reset and the submit retried on the
        fresh one)."""
        for _ in range(2):
            pool = self._ensure_pool()
            try:
                future = pool.submit(self._task, spec.to_dict(), attempt)
            except BrokenProcessPool as exc:
                # the previous batch broke the pool after our last poll:
                # surface its in-flight cells as lost, spawn a new pool
                self._pending.extend(self._reset_pool(
                    f"{type(exc).__name__} on submit", organic=True
                ))
                continue
            self._futures[future] = (spec, attempt, self._clock())
            return
        raise RuntimeError(
            "process pool broke twice during a single submit"
        )  # pragma: no cover - a fresh pool accepts submissions

    def poll(self, timeout_s: Optional[float] = None) -> List[Outcome]:
        """Outcomes that finished (or were lost) since the last poll,
        blocking up to ``timeout_s`` for the first one."""
        outcomes = list(self._pending)
        self._pending.clear()
        if not self._futures:
            return outcomes
        timeout = 0.0 if outcomes else timeout_s
        if self.cell_timeout_s is not None:
            deadline = min(
                started + self.cell_timeout_s
                for _, _, started in self._futures.values()
            )
            budget = max(0.0, deadline - self._clock())
            timeout = budget if timeout is None else min(timeout, budget)
        finished, _ = futures_wait(
            set(self._futures), timeout=timeout,
            return_when=FIRST_COMPLETED,
        )
        broke = False
        for future in finished:
            spec, attempt, _started = self._futures.pop(future)
            error = future.exception()
            if error is None:
                record = future.result()
                kind = "ok" if record.get("status") == "ok" else "failed"
                self._breakage_streak = 0
                outcomes.append(Outcome(
                    spec, attempt, kind,
                    record=record, error=record.get("error"),
                ))
            elif isinstance(error, BrokenProcessPool):
                broke = True
                outcomes.append(Outcome(
                    spec, attempt, "lost",
                    error=f"{type(error).__name__}: worker lost mid-cell",
                ))
            else:
                outcomes.append(Outcome(
                    spec, attempt, "error",
                    error=f"{type(error).__name__}: {error}",
                ))
        if broke:
            # every other in-flight future is doomed too: drain them now
            # and replace the pool before the next submit
            outcomes.extend(self._reset_pool("BrokenProcessPool", organic=True))
        outcomes.extend(self._expire_overdue())
        return outcomes

    # -- self-healing -------------------------------------------------------

    def _expire_overdue(self) -> List[Outcome]:
        """Kill and report cells that exceeded the wall-clock budget."""
        if self.cell_timeout_s is None or not self._futures:
            return []
        now = self._clock()
        overdue = [
            future for future, (_, _, started) in self._futures.items()
            if now - started >= self.cell_timeout_s
        ]
        if not overdue:
            return []
        outcomes = []
        for future in overdue:
            spec, attempt, _started = self._futures.pop(future)
            outcomes.append(Outcome(
                spec, attempt, "timeout",
                error=(f"cell exceeded the {self.cell_timeout_s}s "
                       "wall-clock budget; worker killed"),
            ))
        # a running future cannot be cancelled: the only way to reclaim the
        # worker is to kill the pool; innocent in-flight cells requeue as
        # lost (deliberate kill — not held against the degradation streak)
        outcomes.extend(self._reset_pool("cell timeout", organic=False))
        return outcomes

    def _reset_pool(self, reason: str, *, organic: bool) -> List[Outcome]:
        """Tear the pool down, drain in-flight cells as ``lost`` outcomes,
        and leave the dispatcher ready to spawn a fresh pool."""
        outcomes = [
            Outcome(spec, attempt, "lost",
                    error=f"in-flight when the pool was reset ({reason})")
            for _, (spec, attempt, _started) in list(self._futures.items())
        ]
        if self._pool is not None:
            self._terminate_workers()
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None
        self._futures.clear()
        if organic:
            self.breakages += 1
            self._breakage_streak += 1
            self._maybe_degrade()
        return outcomes

    def _maybe_degrade(self) -> None:
        if (self._breakage_streak < self.degrade_after
                or self.workers <= self.min_workers):
            return
        old = self.workers
        self.workers = max(self.min_workers, self.workers // 2)
        self._breakage_streak = 0
        if self.on_degrade is not None:
            self.on_degrade(old, self.workers)


#: provider-class registry: dispatcher name -> class.  Multi-host backends
#: (SSH fan-out, container fleets) plug in here without touching the engine.
DISPATCHERS = {
    LocalPoolDispatcher.name: LocalPoolDispatcher,
}


def make_dispatcher(name: str, workers: int, **kwargs) -> Dispatcher:
    """Instantiate a registered dispatcher by name."""
    try:
        cls = DISPATCHERS[name]
    except KeyError:
        raise ValueError(
            f"unknown dispatcher {name!r}; "
            f"available: {', '.join(sorted(DISPATCHERS))}"
        ) from None
    return cls(workers, **kwargs)
