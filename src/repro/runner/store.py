"""Append-only JSONL result store keyed by run-spec hash.

One line per completed run record (see :mod:`repro.runner.worker`).  The
store is the sweep's cache: on ``--resume`` the engine loads it, keeps
every ``status: "ok"`` record whose key matches a requested spec, and only
executes the delta.  Appends are flushed line-by-line, so a sweep killed
mid-flight loses at most the in-progress runs; a torn final line from such
a crash is tolerated (and overwritten by the re-run) rather than fatal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Optional


class ResultStore:
    """A JSONL file of run records with key-based lookup."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)

    def load(self) -> Dict[str, dict]:
        """All records keyed by spec hash; the last record for a key wins."""
        records: Dict[str, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a killed sweep
                key = record.get("key")
                if key:
                    records[key] = record
        return records

    def completed_keys(self) -> Dict[str, dict]:
        """Only the successfully completed records (resume skips these)."""
        return {
            key: record for key, record in self.load().items()
            if record.get("status") == "ok"
        }

    def append(self, record: dict) -> None:
        """Append one record and flush it to disk."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def append_many(self, records: Iterable[dict]) -> None:
        for record in records:
            self.append(record)


def open_store(path: Optional[os.PathLike]) -> Optional[ResultStore]:
    """A store for ``path``, or ``None`` when no persistence is wanted."""
    return None if path is None else ResultStore(path)
