"""Append-only JSONL result store keyed by run-spec hash.

One line per completed run record (see :mod:`repro.runner.worker`).  The
store is the sweep's cache: on ``--resume`` the engine loads it, keeps
every ``status: "ok"`` record whose key matches a requested spec, and only
executes the delta.  Appends are flushed line-by-line, so a sweep killed
mid-flight loses at most the in-progress runs; a torn final line from such
a crash is tolerated (and overwritten by the re-run) rather than fatal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Optional


class ResultStore:
    """A JSONL file of run records with key-based lookup."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)

    def load(self) -> Dict[str, dict]:
        """All records keyed by spec hash; the last record for a key wins."""
        records: Dict[str, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a killed sweep
                key = record.get("key")
                if key:
                    records[key] = record
        return records

    def completed_keys(self) -> Dict[str, dict]:
        """Only the successfully completed records (resume skips these)."""
        return {
            key: record for key, record in self.load().items()
            if record.get("status") == "ok"
        }

    def append(self, record: dict) -> None:
        """Append one record and flush it to disk."""
        self.append_many([record])

    def append_many(self, records: Iterable[dict]) -> None:
        """Append a batch of records with one write and one fsync.

        Serialising the whole batch before opening the file keeps the
        append all-or-nothing at the Python level; a crash mid-batch can
        still tear the final line at the OS level, which ``load`` already
        tolerates.
        """
        lines = [json.dumps(r, sort_keys=True) + "\n" for r in records]
        if not lines:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write("".join(lines))
            fh.flush()
            os.fsync(fh.fileno())

    # -- engine store protocol (attempt-level detail) -----------------------
    # The JSONL store keeps final records only; the SQLite campaign store
    # (repro.runner.campaign) implements these for real.

    def mark_running(self, key: str, attempt: int) -> None:
        """No-op: the JSONL cache has no cell lifecycle."""

    def record_attempt(self, key: str, attempt: int, *, status: str,
                       error=None, wall_s=None, pid=None) -> None:
        """No-op: the JSONL cache keeps no per-attempt history."""


def open_store(path: Optional[os.PathLike]) -> Optional[ResultStore]:
    """A store for ``path``, or ``None`` when no persistence is wanted."""
    return None if path is None else ResultStore(path)
