"""Parallel experiment sweep runner.

The certification argument of the paper leans on *simulation at scale*:
many scenarios, seeds and attack variations feeding the assurance case.
This package is the machinery for that — a declarative grid of worksite
runs fanned across a process pool, with content-hash caching so repeated
sweeps only execute the delta:

* :mod:`repro.runner.spec` — :class:`RunSpec` / :class:`SweepSpec`
  (grid declaration, stable hashing, TOML/JSON spec files);
* :mod:`repro.runner.worker` — the picklable per-run entry point;
* :mod:`repro.runner.store` — the append-only JSONL result store;
* :mod:`repro.runner.campaign` — the durable SQLite (WAL) campaign
  store: ``campaigns`` / ``cells`` / ``attempts`` tables, queryable
  across runs, with a one-way JSONL import path;
* :mod:`repro.runner.dispatch` — pluggable execution backends
  (:class:`LocalPoolDispatcher` today) plus the deterministic
  :class:`CellRetryPolicy`;
* :mod:`repro.runner.engine` — :class:`SweepRunner` (dispatcher fan-out,
  resume, failure isolation, self-healing retry/timeout/backoff);
* :mod:`repro.runner.monitor` — :class:`SweepMonitor` (live progress
  fold, ``status.json``, stall detection for ``repro-worksite status``);
* :mod:`repro.runner.aggregate` — grouped means → paper-style tables.

Typical use::

    from repro.runner import RunSpec, SweepSpec, run_sweep

    grid = SweepSpec(campaigns=["rf_jamming", "gnss_spoofing"],
                     seeds=[1, 2, 3], horizon_s=1200.0)
    report = run_sweep(grid.expand(), jobs=4)
    for result in report.results():
        ...
"""

from repro.runner.aggregate import aggregate_rows, aggregate_table, group_records
from repro.runner.campaign import (
    CampaignBinding,
    CampaignStore,
    open_campaign_store,
)
from repro.runner.dispatch import (
    DISPATCHERS,
    CellRetryPolicy,
    Dispatcher,
    LocalPoolDispatcher,
    make_dispatcher,
)
from repro.runner.engine import (
    SweepReport,
    SweepRunner,
    UncheckedResultWarning,
    run_sweep,
)
from repro.runner.monitor import (
    SweepMonitor,
    progress_line,
    read_status,
    render_status,
)
from repro.runner.spec import (
    BASELINE,
    RunSpec,
    SweepSpec,
    derive_sweep_seeds,
    load_sweep_spec,
    sweep_spec_from_mapping,
)
from repro.runner.store import ResultStore, open_store
from repro.runner.worker import execute_run

__all__ = [
    "BASELINE",
    "CampaignBinding",
    "CampaignStore",
    "CellRetryPolicy",
    "DISPATCHERS",
    "Dispatcher",
    "LocalPoolDispatcher",
    "RunSpec",
    "SweepSpec",
    "SweepReport",
    "SweepRunner",
    "SweepMonitor",
    "UncheckedResultWarning",
    "ResultStore",
    "aggregate_rows",
    "aggregate_table",
    "group_records",
    "derive_sweep_seeds",
    "execute_run",
    "load_sweep_spec",
    "make_dispatcher",
    "open_campaign_store",
    "open_store",
    "progress_line",
    "read_status",
    "render_status",
    "run_sweep",
    "sweep_spec_from_mapping",
]
