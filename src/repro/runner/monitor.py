"""Live campaign progress: the sweep/fuzz monitor and ``status.json``.

:class:`SweepMonitor` is the write side of the progress plane.  The sweep
engine (and, opted in, the fuzz session) feeds it plain event dicts —
``sweep_started`` / ``cell_started`` / ``cell_finished`` / ``cell_retry``
/ ``workers_degraded`` / ``heartbeat`` — each stamped with a
caller-supplied wall-clock time.  The monitor is a
**pure fold** over that event sequence: feed the same events and ask for
a snapshot at the same ``now`` and you get the same dict, which is what
makes ``status.json`` reproducible and testable without real sleeps.

The read side is :func:`read_status` plus :func:`render_status`, backing
the ``repro-worksite status <dir>`` subcommand: done/running/pending
counts, throughput, an ETA extrapolated from completed-cell durations,
per-worker liveness, per-cell attempt numbers, retry totals, worker-budget
degradation, and stall warnings for cells whose age exceeds a rolling
p95-based threshold (each firing is also counted in ``stall_events``, so
a finished campaign still shows whether its cells ever wedged).

``status.json`` is written atomically (temp file + ``os.replace``) so a
concurrently-running ``status`` command never reads a torn file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.sim.metrics import percentile

#: status.json layout version (2: retries / stall_events / degraded_from
#: / per-cell attempt numbers)
STATUS_SCHEMA = 2

#: a running cell is stalled when its age exceeds this multiple of the
#: p95 completed-cell duration ...
STALL_FACTOR = 3.0

#: ... but never before this many cells have completed (the p95 of one
#: or two samples is noise) ...
MIN_COMPLETED_FOR_STALL = 3

#: ... and never below this absolute floor, so short sweeps don't flag
#: every cell during warm-up
STALL_FLOOR_S = 30.0


class SweepMonitor:
    """Fold progress events into a live campaign snapshot.

    All timestamps are caller-supplied floats from one monotonic clock;
    the monitor never reads a clock itself, so a recorded event sequence
    replays to an identical snapshot (asserted by the monitor tests).
    """

    def __init__(self) -> None:
        self.kind = "sweep"
        self.total = 0
        self.jobs = 1
        self.started_t: Optional[float] = None
        self.last_t: Optional[float] = None
        self.done = 0
        self.failed = 0
        self.cached = 0
        self.retries = 0
        self.stall_events = 0
        self.degraded_from: Optional[int] = None
        self._running: Dict[str, dict] = {}
        self._durations: List[float] = []
        self._workers: Dict[int, float] = {}

    # -- event intake -------------------------------------------------------
    def on_event(self, event: dict) -> None:
        """Fold one progress event; unknown event names are ignored."""
        name = event.get("event")
        t = event.get("t")
        if isinstance(t, (int, float)):
            if self.started_t is None:
                self.started_t = float(t)
            self.last_t = float(t)
        pid = event.get("pid")
        if isinstance(pid, int) and isinstance(t, (int, float)):
            self._workers[pid] = float(t)

        if name == "sweep_started":
            self.kind = event.get("kind", "sweep")
            self.total = int(event.get("total", 0))
            self.jobs = int(event.get("jobs", 1))
        elif name == "cell_started":
            self._running[event["key"]] = {
                "key": event["key"],
                "label": event.get("label", event["key"]),
                "t": float(t) if isinstance(t, (int, float)) else 0.0,
                "pid": pid,
                "attempt": int(event.get("attempt", 1)),
            }
        elif name == "cell_finished":
            self._running.pop(event.get("key"), None)
            self.done += 1
            if event.get("cached"):
                self.cached += 1
            elif event.get("status") != "ok":
                self.failed += 1
            wall_s = event.get("wall_s")
            # cached cells finish in microseconds; folding them into the
            # duration stats would drag the stall threshold to zero
            if isinstance(wall_s, (int, float)) and not event.get("cached"):
                self._durations.append(float(wall_s))
        elif name == "cell_retry":
            # the attempt ended (lost worker / timeout) and the cell went
            # back to the queue: it is no longer running
            self._running.pop(event.get("key"), None)
            self.retries += 1
        elif name == "workers_degraded":
            if self.degraded_from is None:
                self.degraded_from = int(event.get("old", self.jobs))
            self.jobs = int(event.get("new", self.jobs))
        # "heartbeat" only refreshes last_t / worker liveness, done above

        # stall accounting: flag each running cell the first time its age
        # crosses the threshold, so a finished campaign still reports how
        # often the detector fired (snapshot() recomputes liveness per
        # call; this counter is the durable trace of it)
        if isinstance(t, (int, float)):
            threshold = self.stall_threshold_s()
            if threshold is not None:
                for cell in self._running.values():
                    if (not cell.get("stall_flagged")
                            and float(t) - cell["t"] > threshold):
                        cell["stall_flagged"] = True
                        self.stall_events += 1

    # -- snapshot -----------------------------------------------------------
    def stall_threshold_s(self) -> Optional[float]:
        """Age beyond which a running cell counts as stalled, or None
        while too few cells have completed to estimate one."""
        if len(self._durations) < MIN_COMPLETED_FOR_STALL:
            return None
        p95 = percentile(sorted(self._durations), 0.95)
        return round(max(STALL_FLOOR_S, STALL_FACTOR * p95), 3)

    def snapshot(self, now: Optional[float] = None) -> dict:
        """The full progress picture at ``now`` (default: last event)."""
        if now is None:
            now = self.last_t if self.last_t is not None else 0.0
        elapsed = (
            round(now - self.started_t, 3)
            if self.started_t is not None else 0.0
        )
        pending = max(0, self.total - self.done - len(self._running))
        threshold = self.stall_threshold_s()
        running = []
        for cell in sorted(self._running.values(), key=lambda c: c["t"]):
            age = round(now - cell["t"], 3)
            running.append({
                "key": cell["key"],
                "label": cell["label"],
                "age_s": age,
                "pid": cell["pid"],
                "attempt": cell.get("attempt", 1),
                "stalled": threshold is not None and age > threshold,
            })
        executed = self.done - self.cached
        mean_dur = (
            sum(self._durations) / len(self._durations)
            if self._durations else None
        )
        remaining = self.total - self.done
        eta_s = (
            round(remaining * mean_dur / max(1, self.jobs), 3)
            if mean_dur is not None and remaining > 0 else None
        )
        throughput = (
            round(executed / elapsed * 60.0, 3) if elapsed > 0 else None
        )
        return {
            "schema": STATUS_SCHEMA,
            "kind": self.kind,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "cached": self.cached,
            "retries": self.retries,
            "stall_events": self.stall_events,
            "degraded_from": self.degraded_from,
            "jobs": self.jobs,
            "pending": pending,
            "elapsed_s": elapsed,
            "throughput_per_min": throughput,
            "eta_s": eta_s,
            "stall_threshold_s": threshold,
            "running": running,
            "workers": {
                str(pid): {"idle_s": round(now - seen, 3)}
                for pid, seen in sorted(self._workers.items())
            },
            "durations": {
                "count": len(self._durations),
                "p50_s": round(
                    percentile(sorted(self._durations), 0.50), 3
                ) if self._durations else None,
                "p95_s": round(
                    percentile(sorted(self._durations), 0.95), 3
                ) if self._durations else None,
            },
        }

    # -- status.json --------------------------------------------------------
    def write_status(
        self, path: os.PathLike, now: Optional[float] = None
    ) -> Path:
        """Atomically write the snapshot; returns the written path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            self.snapshot(now), indent=2, sort_keys=True
        ) + "\n"
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, target)
        return target


def read_status(path: os.PathLike) -> dict:
    """Load a ``status.json`` written by :meth:`SweepMonitor.write_status`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def progress_line(status: dict) -> str:
    """One-line progress summary (what ``sweep --progress`` prints)."""
    parts = [
        f"[{status.get('kind', 'sweep')}]",
        f"{status.get('done', 0)}/{status.get('total', 0)} done",
        f"{len(status.get('running') or [])} running",
        f"{status.get('pending', 0)} pending",
    ]
    if status.get("failed"):
        parts.append(f"{status['failed']} failed")
    if status.get("retries"):
        parts.append(f"{status['retries']} retries")
    if status.get("degraded_from") is not None:
        parts.append(
            f"DEGRADED {status['degraded_from']}->{status.get('jobs', '?')}"
        )
    if status.get("throughput_per_min") is not None:
        parts.append(f"{status['throughput_per_min']:.1f}/min")
    if status.get("eta_s") is not None:
        parts.append(f"eta {status['eta_s']:.0f}s")
    stalled = sum(
        1 for cell in status.get("running") or [] if cell.get("stalled")
    )
    if stalled:
        parts.append(f"{stalled} STALLED")
    return " ".join(parts)


def render_status(status: dict) -> str:
    """Multi-line human rendering (what ``repro-worksite status`` prints)."""
    lines = [
        f"campaign: {status.get('kind', 'sweep')}",
        f"progress: {status.get('done', 0)}/{status.get('total', 0)} done, "
        f"{len(status.get('running') or [])} running, "
        f"{status.get('pending', 0)} pending, "
        f"{status.get('failed', 0)} failed, "
        f"{status.get('cached', 0)} cached",
        f"elapsed:  {status.get('elapsed_s', 0.0)}s",
    ]
    if status.get("retries") or status.get("stall_events"):
        lines.append(
            f"healing:  {status.get('retries', 0)} retried attempt(s), "
            f"{status.get('stall_events', 0)} stall warning(s)"
        )
    if status.get("degraded_from") is not None:
        lines.append(
            f"workers:  DEGRADED {status['degraded_from']} -> "
            f"{status.get('jobs', '?')} after repeated pool breakage"
        )
    if status.get("throughput_per_min") is not None:
        lines.append(
            f"rate:     {status['throughput_per_min']:.2f} cells/min"
        )
    if status.get("eta_s") is not None:
        lines.append(f"eta:      {status['eta_s']:.0f}s")
    durations = status.get("durations") or {}
    if durations.get("count"):
        lines.append(
            f"cell wall: p50 {durations.get('p50_s')}s, "
            f"p95 {durations.get('p95_s')}s "
            f"(n={durations.get('count')})"
        )
    workers = status.get("workers") or {}
    if workers:
        seen = ", ".join(
            f"pid {pid} (idle {info.get('idle_s', '?')}s)"
            for pid, info in sorted(workers.items())
        )
        lines.append(f"workers:  {seen}")
    running = status.get("running") or []
    if running:
        lines.append("running cells:")
        for cell in running:
            flag = "  ** STALLED **" if cell.get("stalled") else ""
            attempt = cell.get("attempt", 1)
            retry = f", attempt {attempt}" if attempt and attempt > 1 else ""
            lines.append(
                f"  {cell.get('label', cell.get('key'))} "
                f"(age {cell.get('age_s')}s, pid {cell.get('pid')}"
                f"{retry}){flag}"
            )
    threshold = status.get("stall_threshold_s")
    if threshold is not None:
        lines.append(f"stall threshold: {threshold}s")
    return "\n".join(lines)
