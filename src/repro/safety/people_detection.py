"""The collaborative people-detection safety function (Figure 2).

Composes the whole stack: the forwarder's own cameras/LiDAR/ultrasonic, the
drone's camera (detections relayed over the network), track fusion, and the
protective stop + speed limiter.  This is the safety function whose
performance the E-F2 experiment measures with and without the drone, and
whose degradation under attack the E-S4B interplay experiment measures.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.comms.messages import Message
from repro.sensors.detection import Detection, PeopleDetector
from repro.sensors.fusion import TrackFusion
from repro.sensors.ultrasonic import UltrasonicArray
from repro.safety.functions import ProtectiveStop, SpeedLimiter
from repro.sim.engine import Simulator
from repro.sim.entities import Entity
from repro.sim.events import EventCategory, EventLog
from repro.sim.forwarder import Forwarder
from repro.sim.geometry import Vec2


class CollaborativePeopleDetection:
    """The fused people-detection safety function on the forwarder.

    Parameters
    ----------
    forwarder:
        The protected machine.
    own_detectors:
        People detectors on the forwarder's cameras.
    ultrasonic:
        Optional short-range backup array.
    people_fn:
        Callable returning the current list of people (ground truth input to
        the sensor models; the function itself only sees detections).
    remote_detections_fn:
        Callable draining detections relayed from the drone since the last
        frame (empty when the drone path is down).
    frame_interval_s:
        Sensor frame rate.
    """

    def __init__(
        self,
        forwarder: Forwarder,
        sim: Simulator,
        log: EventLog,
        own_detectors: List[PeopleDetector],
        people_fn: Callable[[], List[Entity]],
        *,
        ultrasonic: Optional[UltrasonicArray] = None,
        remote_detections_fn: Optional[Callable[[], List[Detection]]] = None,
        frame_interval_s: float = 0.5,
        stop_distance_m: float = 10.0,
    ) -> None:
        self.forwarder = forwarder
        self.sim = sim
        self.log = log
        self.own_detectors = list(own_detectors)
        self.ultrasonic = ultrasonic
        self.people_fn = people_fn
        self.remote_detections_fn = remote_detections_fn
        self.fusion = TrackFusion()
        self.protective_stop = ProtectiveStop(
            forwarder, sim, log, stop_distance_m=stop_distance_m
        )
        self.speed_limiter = SpeedLimiter(forwarder, sim, log)
        self.frames_processed = 0
        self.first_confirm_times: dict = {}
        sim.every(frame_interval_s, self._frame)

    # -- per-frame pipeline ---------------------------------------------------
    def _frame(self) -> None:
        now = self.sim.now
        people = [p for p in self.people_fn() if p.alive]
        detections: List[Detection] = []
        for detector in self.own_detectors:
            detections.extend(detector.process_frame(now, people))
        if self.ultrasonic is not None:
            for obs in self.ultrasonic.observe(now, people):
                if obs.detected:
                    detections.append(
                        Detection(
                            time=now,
                            sensor=self.ultrasonic.name,
                            target=obs.target,
                            confidence=min(0.9, obs.confidence + 0.3),
                            estimated_position=self._target_position(obs.target, people),
                        )
                    )
        if self.remote_detections_fn is not None:
            detections.extend(self.remote_detections_fn())

        self.fusion.update(now, detections)
        confirmed = self.fusion.confirmed_tracks()
        for track in confirmed:
            if track.target is not None and track.target not in self.first_confirm_times:
                self.first_confirm_times[track.target] = now
                self.log.emit(
                    now, EventCategory.DETECTION, "person_confirmed",
                    self.forwarder.name, target=track.target,
                    sources=list(track.sources),
                )
        nearest = self._nearest_confirmed_distance(confirmed)
        self.protective_stop.evaluate(nearest)
        self.frames_processed += 1

    def _nearest_confirmed_distance(self, confirmed) -> Optional[float]:
        if not confirmed:
            return None
        me = self.forwarder.position
        return min(t.position.distance_to(me) for t in confirmed)

    @staticmethod
    def _target_position(target_name: str, people: List[Entity]) -> Vec2:
        for person in people:
            if person.name == target_name:
                return person.position
        return Vec2(0.0, 0.0)

    # -- remote feed helper -----------------------------------------------------
    @staticmethod
    def detections_from_report(message: Message) -> List[Detection]:
        """Rebuild Detection objects from a relayed detection report."""
        rebuilt = []
        for entry in message.payload.get("detections", []):
            rebuilt.append(
                Detection(
                    time=float(entry.get("time", message.timestamp)),
                    sensor=str(entry.get("sensor", message.sender)),
                    target=entry.get("target"),
                    confidence=float(entry.get("confidence", 0.5)),
                    estimated_position=Vec2(
                        float(entry.get("x", 0.0)), float(entry.get("y", 0.0))
                    ),
                )
            )
        return rebuilt

    @staticmethod
    def report_from_detections(detections: List[Detection]) -> List[dict]:
        """Serialise detections for a network report."""
        return [
            {
                "time": d.time,
                "sensor": d.sensor,
                "target": d.target,
                "confidence": round(d.confidence, 3),
                "x": round(d.estimated_position.x, 2),
                "y": round(d.estimated_position.y, 2),
            }
            for d in detections
        ]
