"""ISO 13849-1 Performance Level calculus.

Implements the simplified quantification of ISO 13849-1 clause 4.5: from the
designated architecture **Category** (B, 1–4), the **MTTFd** band of each
channel (low / medium / high), the average **diagnostic coverage** band
(none / low / medium / high) and adequate **CCF** measures, the achieved
**Performance Level** (a–e) follows Table 7 of the standard.

Also provides the PL⇄PFHd band mapping (Table 3) and the comparison against
a required PLr, used by the combined methodology to decide whether the
people-detection safety function satisfies the hazard's requirement — with
and without the drone channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class Category(enum.Enum):
    """Designated architecture categories of ISO 13849-1."""

    B = "B"
    CAT1 = "1"
    CAT2 = "2"
    CAT3 = "3"
    CAT4 = "4"


class MttfdBand(enum.Enum):
    """Mean time to dangerous failure bands (years)."""

    LOW = "low"        # 3 <= MTTFd < 10
    MEDIUM = "medium"  # 10 <= MTTFd < 30
    HIGH = "high"      # 30 <= MTTFd <= 100


class DiagnosticCoverage(enum.Enum):
    """Average diagnostic coverage bands."""

    NONE = "none"      # DC < 60 %
    LOW = "low"        # 60 % <= DC < 90 %
    MEDIUM = "medium"  # 90 % <= DC < 99 %
    HIGH = "high"      # DC >= 99 %


class PerformanceLevel(enum.Enum):
    """Performance levels, ordered a (lowest) to e (highest)."""

    A = "a"
    B = "b"
    C = "c"
    D = "d"
    E = "e"

    @property
    def rank(self) -> int:
        return "abcde".index(self.value)

    def satisfies(self, required: "PerformanceLevel") -> bool:
        return self.rank >= required.rank

    @staticmethod
    def from_letter(letter: str) -> "PerformanceLevel":
        return PerformanceLevel(letter.lower())


#: PL -> probability of dangerous failure per hour band (Table 3)
PFHD_BANDS: Dict[PerformanceLevel, Tuple[float, float]] = {
    PerformanceLevel.A: (1e-5, 1e-4),
    PerformanceLevel.B: (3e-6, 1e-5),
    PerformanceLevel.C: (1e-6, 3e-6),
    PerformanceLevel.D: (1e-7, 1e-6),
    PerformanceLevel.E: (1e-8, 1e-7),
}


def mttfd_band(mttfd_years: float) -> MttfdBand:
    """Classify an MTTFd value (years) into its band.

    Raises
    ------
    ValueError
        Below 3 years (not usable) or above 100 (capped by the standard for
        single channels; pass 100 to mean the cap).
    """
    if mttfd_years < 3.0:
        raise ValueError(f"MTTFd {mttfd_years} y is below the usable minimum (3 y)")
    if mttfd_years < 10.0:
        return MttfdBand.LOW
    if mttfd_years < 30.0:
        return MttfdBand.MEDIUM
    if mttfd_years <= 100.0:
        return MttfdBand.HIGH
    raise ValueError(f"MTTFd {mttfd_years} y exceeds the 100 y cap for evaluation")


def dc_band(dc_fraction: float) -> DiagnosticCoverage:
    """Classify a diagnostic coverage fraction into its band."""
    if not 0.0 <= dc_fraction <= 1.0:
        raise ValueError("DC must be a fraction in [0, 1]")
    if dc_fraction < 0.60:
        return DiagnosticCoverage.NONE
    if dc_fraction < 0.90:
        return DiagnosticCoverage.LOW
    if dc_fraction < 0.99:
        return DiagnosticCoverage.MEDIUM
    return DiagnosticCoverage.HIGH


# Table 7 of ISO 13849-1: (category, DCavg, MTTFd band) -> PL.  ``None``
# marks combinations the standard does not permit.
_TABLE7: Dict[Tuple[Category, DiagnosticCoverage, MttfdBand], Optional[PerformanceLevel]] = {
    (Category.B, DiagnosticCoverage.NONE, MttfdBand.LOW): PerformanceLevel.A,
    (Category.B, DiagnosticCoverage.NONE, MttfdBand.MEDIUM): PerformanceLevel.B,
    (Category.B, DiagnosticCoverage.NONE, MttfdBand.HIGH): PerformanceLevel.B,
    (Category.CAT1, DiagnosticCoverage.NONE, MttfdBand.LOW): None,
    (Category.CAT1, DiagnosticCoverage.NONE, MttfdBand.MEDIUM): None,
    (Category.CAT1, DiagnosticCoverage.NONE, MttfdBand.HIGH): PerformanceLevel.C,
    (Category.CAT2, DiagnosticCoverage.LOW, MttfdBand.LOW): PerformanceLevel.A,
    (Category.CAT2, DiagnosticCoverage.LOW, MttfdBand.MEDIUM): PerformanceLevel.B,
    (Category.CAT2, DiagnosticCoverage.LOW, MttfdBand.HIGH): PerformanceLevel.C,
    (Category.CAT2, DiagnosticCoverage.MEDIUM, MttfdBand.LOW): PerformanceLevel.B,
    (Category.CAT2, DiagnosticCoverage.MEDIUM, MttfdBand.MEDIUM): PerformanceLevel.C,
    (Category.CAT2, DiagnosticCoverage.MEDIUM, MttfdBand.HIGH): PerformanceLevel.D,
    (Category.CAT3, DiagnosticCoverage.LOW, MttfdBand.LOW): PerformanceLevel.B,
    (Category.CAT3, DiagnosticCoverage.LOW, MttfdBand.MEDIUM): PerformanceLevel.C,
    (Category.CAT3, DiagnosticCoverage.LOW, MttfdBand.HIGH): PerformanceLevel.D,
    (Category.CAT3, DiagnosticCoverage.MEDIUM, MttfdBand.LOW): PerformanceLevel.C,
    (Category.CAT3, DiagnosticCoverage.MEDIUM, MttfdBand.MEDIUM): PerformanceLevel.D,
    (Category.CAT3, DiagnosticCoverage.MEDIUM, MttfdBand.HIGH): PerformanceLevel.D,
    (Category.CAT4, DiagnosticCoverage.HIGH, MttfdBand.HIGH): PerformanceLevel.E,
}


@dataclass(frozen=True)
class SafetyFunctionDesign:
    """The design parameters of one safety function channel structure.

    Attributes
    ----------
    name:
        Safety function name.
    category:
        Designated architecture.
    mttfd_years:
        MTTFd of each channel (the standard's symmetrised value).
    dc_fraction:
        Average diagnostic coverage.
    ccf_adequate:
        Whether the ≥65-point CCF score of Annex F is met (required for
        categories 2–4).
    """

    name: str
    category: Category
    mttfd_years: float
    dc_fraction: float
    ccf_adequate: bool = True


class PlEvaluationError(ValueError):
    """The design parameters form no permitted ISO 13849-1 combination."""


def achieved_pl(design: SafetyFunctionDesign) -> PerformanceLevel:
    """Evaluate the achieved Performance Level of a design.

    Raises
    ------
    PlEvaluationError
        For combinations outside Table 7 (e.g. category 3 without diagnostic
        coverage, category 4 without high DC, missing CCF measures).
    """
    band = mttfd_band(design.mttfd_years)
    dc = dc_band(design.dc_fraction)
    if design.category in (Category.CAT2, Category.CAT3, Category.CAT4):
        if not design.ccf_adequate:
            raise PlEvaluationError(
                f"{design.name}: category {design.category.value} requires adequate CCF measures"
            )
        if design.category is not Category.CAT4 and dc is DiagnosticCoverage.NONE:
            raise PlEvaluationError(
                f"{design.name}: category {design.category.value} requires DC >= low"
            )
    if design.category is Category.CAT4 and dc is not DiagnosticCoverage.HIGH:
        raise PlEvaluationError(f"{design.name}: category 4 requires DC high")
    # Category 2/3 with DC high evaluates as DC medium per the table's scope.
    lookup_dc = dc
    if design.category in (Category.CAT2, Category.CAT3) and dc is DiagnosticCoverage.HIGH:
        lookup_dc = DiagnosticCoverage.MEDIUM
    key = (design.category, lookup_dc, band)
    result = _TABLE7.get(key)
    if result is None:
        raise PlEvaluationError(
            f"{design.name}: no permitted PL for category={design.category.value}, "
            f"DC={dc.value}, MTTFd={band.value}"
        )
    return result


def pfhd_midpoint(pl: PerformanceLevel) -> float:
    """Geometric midpoint of the PL's PFHd band (for risk arithmetic)."""
    lo, hi = PFHD_BANDS[pl]
    return (lo * hi) ** 0.5
