"""ISO 12100 hazard identification and ISO 13849-1 risk graph.

The risk graph of ISO 13849-1 Annex A maps three parameters to the required
Performance Level (PLr):

* S — severity of injury (S1 slight, S2 serious/death);
* F — frequency/duration of exposure (F1 seldom, F2 frequent);
* P — possibility of avoidance (P1 possible, P2 scarcely possible).

The worksite hazard catalog instantiates the machine-related hazards of the
paper's use case; the combined methodology re-estimates these hazards under
cybersecurity compromise (a successful attack can raise F or P).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence


class Severity(enum.IntEnum):
    """S parameter."""

    S1 = 1  # slight, normally reversible injury
    S2 = 2  # serious, normally irreversible injury or death


class Exposure(enum.IntEnum):
    """F parameter."""

    F1 = 1  # seldom to less often / short exposure
    F2 = 2  # frequent to continuous / long exposure


class Avoidance(enum.IntEnum):
    """P parameter."""

    P1 = 1  # possible under specific conditions
    P2 = 2  # scarcely possible


@dataclass(frozen=True)
class RiskGraphResult:
    """Outcome of the risk graph: the required Performance Level."""

    severity: Severity
    exposure: Exposure
    avoidance: Avoidance
    plr: str


_RISK_GRAPH: Dict[tuple, str] = {
    (Severity.S1, Exposure.F1, Avoidance.P1): "a",
    (Severity.S1, Exposure.F1, Avoidance.P2): "b",
    (Severity.S1, Exposure.F2, Avoidance.P1): "b",
    (Severity.S1, Exposure.F2, Avoidance.P2): "c",
    (Severity.S2, Exposure.F1, Avoidance.P1): "c",
    (Severity.S2, Exposure.F1, Avoidance.P2): "d",
    (Severity.S2, Exposure.F2, Avoidance.P1): "d",
    (Severity.S2, Exposure.F2, Avoidance.P2): "e",
}


def risk_graph(severity: Severity, exposure: Exposure, avoidance: Avoidance) -> RiskGraphResult:
    """Apply the ISO 13849-1 risk graph."""
    plr = _RISK_GRAPH[(severity, exposure, avoidance)]
    return RiskGraphResult(severity=severity, exposure=exposure, avoidance=avoidance, plr=plr)


@dataclass(frozen=True)
class Hazard:
    """An identified hazard per ISO 12100.

    Attributes
    ----------
    hazard_id:
        Catalog identifier.
    description:
        The hazardous situation.
    machine:
        The machine involved.
    severity / exposure / avoidance:
        Risk-graph parameters in the *uncompromised* system.
    safety_function:
        Name of the mitigating safety function, if any.
    cyber_coupled:
        True when a cybersecurity compromise can worsen the hazard
        parameters (the interplay flag consumed by ``repro.core.interplay``).
    """

    hazard_id: str
    description: str
    machine: str
    severity: Severity
    exposure: Exposure
    avoidance: Avoidance
    safety_function: Optional[str] = None
    cyber_coupled: bool = False

    def required_pl(self) -> str:
        return risk_graph(self.severity, self.exposure, self.avoidance).plr

    def degraded(
        self,
        *,
        exposure: Optional[Exposure] = None,
        avoidance: Optional[Avoidance] = None,
    ) -> "Hazard":
        """The hazard re-estimated under compromise (raised F and/or P)."""
        return replace(
            self,
            exposure=exposure if exposure is not None else self.exposure,
            avoidance=avoidance if avoidance is not None else self.avoidance,
        )


def worksite_hazards() -> List[Hazard]:
    """The hazard catalog of the Figure 1 worksite."""
    return [
        Hazard(
            "HZ-01", "Forwarder strikes a person on the extraction route",
            "forwarder", Severity.S2, Exposure.F1, Avoidance.P1,
            safety_function="people_detection_stop", cyber_coupled=True,
        ),
        Hazard(
            "HZ-02", "Forwarder strikes a person occluded by terrain/stand",
            "forwarder", Severity.S2, Exposure.F1, Avoidance.P2,
            safety_function="people_detection_stop", cyber_coupled=True,
        ),
        Hazard(
            "HZ-03", "Forwarder departs the planned route into the harvest area",
            "forwarder", Severity.S2, Exposure.F1, Avoidance.P1,
            safety_function="geofence", cyber_coupled=True,
        ),
        Hazard(
            "HZ-04", "Unexpected forwarder restart during manual intervention",
            "forwarder", Severity.S2, Exposure.F1, Avoidance.P2,
            safety_function="protective_stop", cyber_coupled=True,
        ),
        Hazard(
            "HZ-05", "Drone falls onto a person (battery/impact)",
            "drone", Severity.S1, Exposure.F1, Avoidance.P1,
            safety_function=None, cyber_coupled=True,
        ),
        Hazard(
            "HZ-06", "Harvester boom strikes a person during felling",
            "harvester", Severity.S2, Exposure.F2, Avoidance.P1,
            safety_function=None, cyber_coupled=False,
        ),
        Hazard(
            "HZ-07", "Log load shifts/falls during transport",
            "forwarder", Severity.S2, Exposure.F1, Avoidance.P1,
            safety_function="speed_limiter", cyber_coupled=False,
        ),
        Hazard(
            "HZ-08", "Forwarder rollover on steep terrain",
            "forwarder", Severity.S2, Exposure.F1, Avoidance.P1,
            safety_function="speed_limiter", cyber_coupled=True,
        ),
    ]


class HazardCatalog:
    """Query interface over a hazard list."""

    def __init__(self, hazards: Optional[Sequence[Hazard]] = None) -> None:
        self.hazards = list(worksite_hazards() if hazards is None else hazards)
        self._by_id = {h.hazard_id: h for h in self.hazards}
        if len(self._by_id) != len(self.hazards):
            raise ValueError("duplicate hazard ids")

    def __len__(self) -> int:
        return len(self.hazards)

    def get(self, hazard_id: str) -> Hazard:
        return self._by_id[hazard_id]

    def cyber_coupled(self) -> List[Hazard]:
        return [h for h in self.hazards if h.cyber_coupled]

    def for_machine(self, machine: str) -> List[Hazard]:
        return [h for h in self.hazards if h.machine == machine]

    def required_levels(self) -> Dict[str, str]:
        return {h.hazard_id: h.required_pl() for h in self.hazards}
