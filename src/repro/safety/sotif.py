"""ISO 21448 SOTIF: triggering conditions and scenario-area accounting.

SOTIF partitions the scenario space into four areas:

* Area 1 — known safe;
* Area 2 — known unsafe (triggering conditions identified, to be mitigated);
* Area 3 — unknown unsafe (the residual-risk driver, to be minimised);
* Area 4 — unknown safe.

The analysis here tracks a catalog of *triggering conditions* (functional
insufficiencies of the people-detection function under specific conditions —
occlusion, heavy rain, low light, ...), the evaluation evidence collected
per condition from simulation runs, and the resulting movement of scenarios
from "unknown" to "known" and from "unsafe" to "mitigated".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class ScenarioArea(enum.Enum):
    """SOTIF scenario areas."""

    KNOWN_SAFE = "area1_known_safe"
    KNOWN_UNSAFE = "area2_known_unsafe"
    UNKNOWN_UNSAFE = "area3_unknown_unsafe"
    UNKNOWN_SAFE = "area4_unknown_safe"


@dataclass
class TriggeringCondition:
    """A condition under which the intended functionality is insufficient.

    Attributes
    ----------
    condition_id:
        Catalog identifier.
    description:
        The condition (e.g. "person approach fully occluded by ridge").
    scenario_class:
        Grouping key (weather / occlusion / kinematics / sensor).
    exposures:
        Number of simulated exposures to the condition.
    failures:
        Exposures in which the function failed (missed/late detection).
    mitigation:
        The measure addressing the condition, once decided.
    """

    condition_id: str
    description: str
    scenario_class: str
    exposures: int = 0
    failures: int = 0
    mitigation: Optional[str] = None

    @property
    def failure_rate(self) -> Optional[float]:
        if self.exposures == 0:
            return None
        return self.failures / self.exposures

    def record(self, failed: bool) -> None:
        self.exposures += 1
        if failed:
            self.failures += 1


def default_triggering_conditions() -> List[TriggeringCondition]:
    """The worksite people-detection triggering-condition catalog."""
    return [
        TriggeringCondition("TC-01", "Person approach occluded by terrain ridge", "occlusion"),
        TriggeringCondition("TC-02", "Person approach through dense stand (canopy)", "occlusion"),
        TriggeringCondition("TC-03", "Detection in heavy rain", "weather"),
        TriggeringCondition("TC-04", "Detection in fog", "weather"),
        TriggeringCondition("TC-05", "Detection at low ambient light", "weather"),
        TriggeringCondition("TC-06", "Fast approach from behind the machine", "kinematics"),
        TriggeringCondition("TC-07", "Drone unavailable (charging/grounded)", "sensor"),
        TriggeringCondition("TC-08", "Person partially visible at max range", "sensor"),
    ]


class SotifAnalysis:
    """Scenario-area accounting over a triggering-condition catalog.

    Parameters
    ----------
    conditions:
        The catalog (defaults to the worksite catalog).
    acceptance_rate:
        Failure rate at or below which an evaluated condition counts as
        *acceptably mitigated* (validation target of clause 9).
    min_exposures:
        Exposures required before a condition's evidence is trusted.
    """

    def __init__(
        self,
        conditions: Optional[Sequence[TriggeringCondition]] = None,
        *,
        acceptance_rate: float = 0.05,
        min_exposures: int = 20,
    ) -> None:
        self.conditions = list(
            default_triggering_conditions() if conditions is None else conditions
        )
        self._by_id = {c.condition_id: c for c in self.conditions}
        self.acceptance_rate = acceptance_rate
        self.min_exposures = min_exposures
        #: estimated share of scenario space not covered by the catalog
        self.unknown_share_estimate = 0.25

    def get(self, condition_id: str) -> TriggeringCondition:
        return self._by_id[condition_id]

    def record_exposure(self, condition_id: str, failed: bool) -> None:
        """Record one simulated exposure outcome."""
        self._by_id[condition_id].record(failed)

    def area_of(self, condition: TriggeringCondition) -> ScenarioArea:
        """Classify one condition's current scenario area."""
        if condition.exposures < self.min_exposures:
            return ScenarioArea.UNKNOWN_UNSAFE
        rate = condition.failure_rate or 0.0
        if rate <= self.acceptance_rate:
            return ScenarioArea.KNOWN_SAFE
        return ScenarioArea.KNOWN_UNSAFE

    def area_counts(self) -> Dict[ScenarioArea, int]:
        counts = {area: 0 for area in ScenarioArea}
        for condition in self.conditions:
            counts[self.area_of(condition)] += 1
        return counts

    def residual_risk_indicator(self) -> float:
        """A [0, 1] indicator combining known-unsafe mass and unknown share.

        Not a probability — a monotone indicator for comparing designs
        (e.g. with vs without the collaborative drone), as clause 7's
        quantitative targets require a full exposure model the paper itself
        notes does not exist for forestry.
        """
        evaluated = [c for c in self.conditions if c.exposures >= self.min_exposures]
        if evaluated:
            unsafe_mass = sum(
                (c.failure_rate or 0.0) for c in evaluated
            ) / len(evaluated)
        else:
            unsafe_mass = 1.0
        coverage = len(evaluated) / max(len(self.conditions), 1)
        return min(1.0, unsafe_mass * coverage + (1.0 - coverage) + self.unknown_share_estimate * 0.2)

    def improvement_over(self, baseline: "SotifAnalysis") -> float:
        """Relative residual-risk reduction vs a baseline analysis."""
        base = baseline.residual_risk_indicator()
        if base == 0.0:
            return 0.0
        return (base - self.residual_risk_indicator()) / base
