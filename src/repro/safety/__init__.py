"""Safety substrate: executable encodings of the machinery-safety standards.

* :mod:`repro.safety.hazards` — ISO 12100 hazard identification and risk
  estimation (severity / exposure / avoidance ⇒ required PLr);
* :mod:`repro.safety.iso13849` — ISO 13849-1 Performance Level calculus
  (category, MTTFd, DCavg, CCF ⇒ achieved PL);
* :mod:`repro.safety.sotif` — ISO 21448 triggering conditions and the
  known/unknown × safe/unsafe scenario-area accounting;
* :mod:`repro.safety.functions` — runtime safety functions (protective
  stop, geofence, speed limitation) with demand/response bookkeeping;
* :mod:`repro.safety.people_detection` — the collaborative drone+forwarder
  people-detection safety function of Figure 2;
* :mod:`repro.safety.monitor` — the runtime safety monitor scoring a run
  (violations, near misses, minimum separation).
"""

from repro.safety.hazards import Hazard, HazardCatalog, RiskGraphResult, risk_graph
from repro.safety.iso13849 import (
    Category,
    DiagnosticCoverage,
    PerformanceLevel,
    SafetyFunctionDesign,
    achieved_pl,
)
from repro.safety.sotif import (
    ScenarioArea,
    SotifAnalysis,
    TriggeringCondition,
)
from repro.safety.functions import ProtectiveStop, Geofence, SpeedLimiter
from repro.safety.people_detection import CollaborativePeopleDetection
from repro.safety.monitor import SafetyMonitor

__all__ = [
    "Hazard",
    "HazardCatalog",
    "RiskGraphResult",
    "risk_graph",
    "Category",
    "DiagnosticCoverage",
    "PerformanceLevel",
    "SafetyFunctionDesign",
    "achieved_pl",
    "ScenarioArea",
    "SotifAnalysis",
    "TriggeringCondition",
    "ProtectiveStop",
    "Geofence",
    "SpeedLimiter",
    "CollaborativePeopleDetection",
    "SafetyMonitor",
]
