"""Runtime safety monitor: scores a run's safety outcome.

Ground-truth evaluation of what actually happened, independent of what the
machines believed: minimum separation between any moving machine and any
person, violation episodes (machine moving while a person is inside the
protection distance), near misses, and time-to-detect statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.entities import Entity
from repro.sim.events import EventCategory, EventLog
from repro.telemetry import tracer as trace


@dataclass
class ViolationEpisode:
    """One interval where a moving machine was too close to a person."""

    machine: str
    person: str
    started_at: float
    min_separation_m: float
    machine_speed_m_s: float
    ended_at: Optional[float] = None


class SafetyMonitor:
    """Ground-truth proximity monitor.

    Parameters
    ----------
    machines:
        Machines whose motion is hazardous.
    people:
        Protected humans.
    violation_distance_m:
        Separation below which a *moving* machine constitutes a violation.
    near_miss_distance_m:
        Separation counted as a near miss (machine moving, person within
        this range but outside the violation range).
    """

    def __init__(
        self,
        machines: List[Entity],
        people: List[Entity],
        sim: Simulator,
        log: EventLog,
        *,
        violation_distance_m: float = 5.0,
        near_miss_distance_m: float = 10.0,
        interval_s: float = 0.5,
    ) -> None:
        self.machines = list(machines)
        self.people = list(people)
        self.sim = sim
        self.log = log
        self.violation_distance_m = violation_distance_m
        self.near_miss_distance_m = near_miss_distance_m
        self.min_separation_m = float("inf")
        self.violations: List[ViolationEpisode] = []
        self.near_misses = 0
        self._active: Dict[tuple, ViolationEpisode] = {}
        self._in_near_zone: Dict[tuple, bool] = {}
        self.samples = 0
        sim.every(interval_s, self._sample)

    def _sample(self) -> None:
        self.samples += 1
        for machine in self.machines:
            if not machine.alive:
                continue
            moving = machine.state.speed > 0.05
            for person in self.people:
                if not person.alive:
                    continue
                separation = machine.distance_to(person)
                if separation < self.min_separation_m:
                    self.min_separation_m = separation
                key = (machine.name, person.name)
                if moving and separation <= self.violation_distance_m:
                    episode = self._active.get(key)
                    if episode is None:
                        episode = ViolationEpisode(
                            machine=machine.name,
                            person=person.name,
                            started_at=self.sim.now,
                            min_separation_m=separation,
                            machine_speed_m_s=machine.state.speed,
                        )
                        self._active[key] = episode
                        self.violations.append(episode)
                        self.log.emit(
                            self.sim.now, EventCategory.SAFETY, "safety_violation",
                            machine.name, person=person.name,
                            separation_m=round(separation, 2),
                            speed=round(machine.state.speed, 2),
                        )
                        if trace.ACTIVE:
                            trace.TRACER.safety_violation(
                                machine.name, person.name, separation
                            )
                    else:
                        episode.min_separation_m = min(episode.min_separation_m, separation)
                else:
                    episode = self._active.pop(key, None)
                    if episode is not None:
                        episode.ended_at = self.sim.now
                # near-miss accounting with edge detection
                in_near = (
                    moving
                    and self.violation_distance_m < separation <= self.near_miss_distance_m
                )
                was_near = self._in_near_zone.get(key, False)
                if in_near and not was_near:
                    self.near_misses += 1
                    self.log.emit(
                        self.sim.now, EventCategory.SAFETY, "near_miss",
                        machine.name, person=person.name,
                        separation_m=round(separation, 2),
                    )
                    if trace.ACTIVE:
                        trace.TRACER.safety_near_miss(
                            machine.name, person.name, separation
                        )
                self._in_near_zone[key] = in_near

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def violation_seconds(self) -> float:
        """Total time spent in violation episodes."""
        total = 0.0
        for episode in self.violations:
            end = episode.ended_at if episode.ended_at is not None else self.sim.now
            total += end - episode.started_at
        return total

    def summary(self) -> dict:
        return {
            "violations": self.violation_count,
            "violation_seconds": round(self.violation_seconds(), 1),
            "near_misses": self.near_misses,
            "min_separation_m": (
                round(self.min_separation_m, 2)
                if self.min_separation_m != float("inf") else None
            ),
        }
