"""Runtime safety functions: protective stop, geofence, speed limiter.

Each function follows the same demand/response pattern: a monitored
condition creates a *demand*; the function commands the machine into its
safe state and records response latency.  Demand and failure counts feed the
diagnostic-coverage estimates of the ISO 13849 evaluation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.engine import Simulator
from repro.sim.events import EventCategory, EventLog
from repro.sim.forwarder import Forwarder
from repro.sim.geometry import Vec2
from repro.sim.world import Zone


class ProtectiveStop:
    """Protective stop on confirmed person proximity.

    Parameters
    ----------
    forwarder:
        The machine under control.
    stop_distance_m:
        Separation at/below which a confirmed person track demands a stop.
    clear_distance_m:
        Separation above which the stop clears (hysteresis).
    """

    REASON = "protective_stop"

    def __init__(
        self,
        forwarder: Forwarder,
        sim: Simulator,
        log: EventLog,
        *,
        stop_distance_m: float = 10.0,
        clear_distance_m: float = 15.0,
    ) -> None:
        self.forwarder = forwarder
        self.sim = sim
        self.log = log
        self.stop_distance_m = stop_distance_m
        self.clear_distance_m = clear_distance_m
        self.engaged = False
        self.demands = 0
        self.response_latencies: List[float] = []
        self._demand_time: Optional[float] = None

    def evaluate(self, nearest_confirmed_m: Optional[float]) -> None:
        """Evaluate against the nearest confirmed person track distance."""
        if nearest_confirmed_m is not None and nearest_confirmed_m <= self.stop_distance_m:
            if not self.engaged:
                self.engaged = True
                self.demands += 1
                self._demand_time = self.sim.now
                self.forwarder.safe_stop(self.REASON)
                self.response_latencies.append(0.0)  # stop command is immediate
        elif self.engaged and (
            nearest_confirmed_m is None or nearest_confirmed_m >= self.clear_distance_m
        ):
            self.engaged = False
            self.forwarder.clear_safe_stop(self.REASON)


class Geofence:
    """Keeps the machine inside its permitted operational zones.

    A machine position outside every permitted zone demands a safe stop —
    also the backstop against GNSS spoofing walking the machine off-route
    (with spoofing, the *believed* position stays in-zone while the true one
    leaves; the geofence evaluated on believed position therefore misses it,
    which is exactly the interplay the combined assessment must catch).
    """

    REASON = "geofence"

    def __init__(
        self,
        forwarder: Forwarder,
        zones: List[Zone],
        sim: Simulator,
        log: EventLog,
        *,
        margin_m: float = 5.0,
    ) -> None:
        if not zones:
            raise ValueError("geofence needs at least one permitted zone")
        self.forwarder = forwarder
        self.zones = list(zones)
        self.sim = sim
        self.log = log
        self.margin_m = margin_m
        self.engaged = False
        self.breaches = 0

    def _inside(self, p: Vec2) -> bool:
        expanded = Vec2(self.margin_m, self.margin_m)
        for zone in self.zones:
            if (
                zone.min_corner.x - self.margin_m <= p.x <= zone.max_corner.x + self.margin_m
                and zone.min_corner.y - self.margin_m <= p.y <= zone.max_corner.y + self.margin_m
            ):
                return True
        return False

    def evaluate(self, believed_position: Optional[Vec2] = None) -> None:
        """Check the believed (or true) position against the permitted zones."""
        position = believed_position if believed_position is not None else self.forwarder.position
        if not self._inside(position):
            if not self.engaged:
                self.engaged = True
                self.breaches += 1
                self.forwarder.safe_stop(self.REASON)
                self.log.emit(
                    self.sim.now, EventCategory.SAFETY, "geofence_breach",
                    self.forwarder.name,
                    x=round(position.x, 1), y=round(position.y, 1),
                )
        elif self.engaged:
            self.engaged = False
            self.forwarder.clear_safe_stop(self.REASON)


class SpeedLimiter:
    """Context-dependent speed limitation (degraded-mode operation).

    Confidence in the people-detection function (drone available, sensors
    healthy) selects the allowed speed tier.  This is the paper's
    fail-operational alternative to stopping outright when assurance drops.
    """

    def __init__(
        self,
        forwarder: Forwarder,
        sim: Simulator,
        log: EventLog,
        *,
        full_speed: float = 3.0,
        degraded_speed: float = 1.0,
        crawl_speed: float = 0.4,
    ) -> None:
        self.forwarder = forwarder
        self.sim = sim
        self.log = log
        self.full_speed = full_speed
        self.degraded_speed = degraded_speed
        self.crawl_speed = crawl_speed
        self.tier = "full"
        self.transitions = 0

    def set_assurance(self, level: str) -> None:
        """Set the current assurance level: 'full', 'degraded' or 'minimal'."""
        mapping = {
            "full": ("full", None),
            "degraded": ("degraded", self.degraded_speed),
            "minimal": ("minimal", self.crawl_speed),
        }
        if level not in mapping:
            raise ValueError(f"unknown assurance level {level!r}")
        tier, limit = mapping[level]
        if tier == self.tier:
            return
        self.tier = tier
        self.transitions += 1
        self.forwarder.set_speed_limit(limit)
