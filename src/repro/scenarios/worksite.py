"""The Figure 1 worksite, fully composed and runnable.

``build_worksite(config)`` assembles the whole stack — world, weather,
machines, humans, radio network with secure channels, sensors and the
collaborative safety function, IDS suite, safety monitor — into a
:class:`WorksiteScenario` whose ``run(duration)`` advances the simulation
and whose fields expose every subsystem to experiments.

``worksite_item_model()`` is the matching ISO/SAE 21434 item definition used
by the risk assessments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.comms.crypto.numbers import DhGroup, TEST_GROUP
from repro.comms.crypto.secure_channel import SecurityProfile
from repro.comms.medium import WirelessMedium
from repro.comms.network import Network
from repro.comms.protocols import (
    CommandChannel,
    DetectionRelay,
    HeartbeatMonitor,
    TelemetryPublisher,
)
from repro.defense.access_control import AccessControlPolicy
from repro.defense.camera_defense import AntiHackingDetector
from repro.defense.gnss_monitor import GnssPlausibilityMonitor
from repro.defense.ids.anomaly import AnomalyIds
from repro.defense.ids.manager import IdsManager
from repro.defense.ids.signature import SignatureIds
from repro.defense.ids.spec import ProtocolSpec, SpecificationIds
from repro.risk.impact import SfopImpact
from repro.risk.model import Asset, CybersecurityProperty, DamageScenario, ItemModel
from repro.risk.stride import enumerate_threats
from repro.safety.monitor import SafetyMonitor
from repro.safety.people_detection import CollaborativePeopleDetection
from repro.sensors.camera import Camera
from repro.sensors.degradation import DegradationModel
from repro.sensors.detection import Detection, PeopleDetector
from repro.sensors.gnss import GnssReceiver
from repro.sensors.occlusion import OcclusionModel
from repro.sensors.ultrasonic import UltrasonicArray
from repro.sim.drone import Drone
from repro.sim.engine import Simulator
from repro.sim.events import EventCategory, EventLog
from repro.sim.forwarder import Forwarder
from repro.sim.geometry import Vec2
from repro.sim.harvester import Harvester
from repro.sim.human import Human
from repro.sim.metrics import MetricsCollector
from repro.sim.missions import LogPile, MissionPlan
from repro.sim.rng import RngStreams
from repro.sim.weather import Weather, WeatherState
from repro.sim.world import World, Zone, generate_forest


@dataclass
class ScenarioConfig:
    """Knobs of the worksite scenario.

    The defaults give the paper's nominal set-up: AEAD-protected links,
    drone collaboration on, full defence suite, clear weather.
    """

    seed: int = 42
    width: float = 300.0
    height: float = 300.0
    tree_density: float = 0.02
    n_ridges: int = 5
    ridge_height: float = 7.0
    profile: SecurityProfile = SecurityProfile.AEAD
    protected_management: bool = True
    drone_enabled: bool = True
    defenses_enabled: bool = True
    access_control_enabled: bool = True
    n_workers: int = 3
    worker_approach_rate_per_h: float = 2.0
    weather_initial: WeatherState = WeatherState.CLEAR
    weather_frozen: bool = False
    pile_volume_m3: float = 120.0
    #: arm the signed ground-station command/alert plane (off by default:
    #: a disabled run stays byte-identical to the golden traces)
    groundstation_enabled: bool = False
    #: "+"-separated groundstation attack kinds to arm (requires the plane);
    #: see :data:`repro.attacks.groundstation.GS_ATTACK_KINDS`
    gs_attacks: str = ""
    #: stream the audit chain to this JSONL path (None keeps it in memory)
    gs_audit_path: Optional[str] = None
    group: DhGroup = TEST_GROUP  # small group keeps scenario start-up fast
    #: sample delivery ratio / speed / separation into ``metrics`` every this
    #: many seconds; None (the default) schedules no sampler at all
    metrics_interval_s: Optional[float] = None


@dataclass
class WorksiteScenario:
    """All handles of a composed worksite run."""

    config: ScenarioConfig
    sim: Simulator
    log: EventLog
    streams: RngStreams
    world: World
    weather: Weather
    forwarder: Forwarder
    drone: Optional[Drone]
    harvester: Harvester
    workers: List[Human]
    mission: MissionPlan
    medium: WirelessMedium
    network: Network
    safety_function: CollaborativePeopleDetection
    safety_monitor: SafetyMonitor
    gnss: GnssReceiver
    cameras: Dict[str, Camera]
    detectors: Dict[str, PeopleDetector]
    ids_manager: Optional[IdsManager]
    gnss_monitor: Optional[GnssPlausibilityMonitor]
    anti_hacking: Optional[AntiHackingDetector]
    access_policy: Optional[AccessControlPolicy]
    command_channel: CommandChannel
    heartbeat: HeartbeatMonitor
    relay: Optional[DetectionRelay]
    metrics: MetricsCollector
    #: the signed command/alert plane, present only when enabled
    groundstation: Optional[object] = None

    def run(self, duration_s: float) -> None:
        """Advance the simulation by ``duration_s``."""
        self.sim.run_until(self.sim.now + duration_s)

    def people(self) -> List[Human]:
        return [w for w in self.workers if w.alive]

    def summary(self) -> dict:
        """End-of-run headline numbers."""
        summary = {
            "time_s": self.sim.now,
            "delivered_m3": self.mission.delivered_m3,
            "cycles": self.mission.cycles_completed,
            "safe_stops": self.forwarder.safe_stops,
            "delivery_ratio": round(self.medium.delivery_ratio, 3),
            "safety": self.safety_monitor.summary(),
            "alerts": len(self.ids_manager.alerts) if self.ids_manager else 0,
        }
        # present only when the plane is armed: plane-off summaries keep
        # their exact pre-existing shape (same discipline as the tracer)
        if self.groundstation is not None:
            summary["groundstation"] = self.groundstation.summary()
        return summary

    def collect_metrics(self) -> MetricsCollector:
        """Fold every subsystem's counters into :attr:`metrics`.

        Idempotent: counters are synchronised to the live subsystem values,
        so calling this again mid-run or at the end never double-counts.
        Series samples accumulate separately via ``metrics_interval_s``.
        """
        metrics = self.metrics

        def sync(name: str, value: float) -> None:
            metrics.increment(name, value - metrics.counter(name))

        sync("comms.frames_sent", self.medium.frames_sent)
        sync("comms.frames_delivered", self.medium.frames_delivered)
        sync("comms.frames_lost", self.medium.frames_lost)
        for node in self.network.nodes.values():
            prefix = f"comms.{node.name}"
            sync(f"{prefix}.messages_sent", node.messages_sent)
            sync(f"{prefix}.messages_received", node.messages_received)
            sync(f"{prefix}.records_rejected", node.records_rejected)
            sync(f"{prefix}.deauths_received", node.endpoint.deauths_received)
            sync(f"{prefix}.deauths_rejected", node.endpoint.deauths_rejected)
            for peer, stats in node.channel_stats().items():
                for kind, count in stats.items():
                    sync(f"{prefix}.channel.{peer}.{kind}", count)
        sync("mission.delivered_m3", self.mission.delivered_m3)
        sync("mission.cycles", self.mission.cycles_completed)
        sync("safety.safe_stops", self.forwarder.safe_stops)
        sync("safety.violations", self.safety_monitor.violation_count)
        sync("safety.near_misses", self.safety_monitor.near_misses)
        if self.ids_manager is not None:
            ids = self.ids_manager.summary()
            sync("ids.alerts", ids["alerts"])
            sync("ids.suppressed", ids["suppressed"])
        metrics.set_gauge("comms.delivery_ratio", self.medium.delivery_ratio)
        metrics.set_gauge("sim.time_s", self.sim.now)
        if self.safety_monitor.min_separation_m != float("inf"):
            metrics.set_gauge(
                "safety.min_separation_m", self.safety_monitor.min_separation_m
            )
        return metrics


def build_worksite(config: Optional[ScenarioConfig] = None) -> WorksiteScenario:
    """Compose the Figure 1 worksite."""
    config = config or ScenarioConfig()
    streams = RngStreams(config.seed)
    sim = Simulator()
    log = EventLog()
    metrics = MetricsCollector()

    # -- world -----------------------------------------------------------------
    harvest = Zone("harvest", Vec2(15.0, 15.0), Vec2(85.0, 85.0))
    landing = Zone(
        "landing",
        Vec2(config.width - 80.0, config.height - 80.0),
        Vec2(config.width - 20.0, config.height - 20.0),
    )
    route = Zone("route", Vec2(60.0, 60.0), Vec2(config.width - 60.0, config.height - 60.0))
    world = generate_forest(
        streams,
        width=config.width,
        height=config.height,
        tree_density=config.tree_density,
        clearings=[harvest, landing, route],
        n_ridges=config.n_ridges,
        ridge_height=config.ridge_height,
    )
    weather = Weather(
        sim, streams, initial=config.weather_initial, frozen=config.weather_frozen
    )
    degradation = DegradationModel(weather)
    occlusion = OcclusionModel(world)

    # -- machines and people ---------------------------------------------------
    pile_positions = [Vec2(30.0, 30.0), Vec2(55.0, 40.0), Vec2(40.0, 65.0)]
    per_pile = config.pile_volume_m3 / len(pile_positions)
    mission = MissionPlan(
        piles=[LogPile(p, per_pile) for p in pile_positions],
        landing_point=landing.center(),
    )
    forwarder = Forwarder(
        "forwarder", sim, log, Vec2(70.0, 70.0), world, mission
    )
    drone: Optional[Drone] = None
    if config.drone_enabled:
        drone = Drone(
            "drone", sim, log, harvest.center(), target=forwarder, altitude=40.0
        )
        # battery draw rises with wind (Section III-D environmental factors)
        drone.wind_draw_factor = (
            lambda: 1.0 + 0.05 * weather.conditions().wind_speed
        )
    harvester = Harvester(
        "harvester", sim, log, streams, Vec2(25.0, 70.0),
        cutting_positions=[Vec2(30.0, 75.0), Vec2(45.0, 78.0), Vec2(60.0, 72.0)],
    )

    # the partially-autonomous chain: piles the manual harvester produces
    # join the autonomous forwarder's transport inventory
    def _collect_new_piles(event) -> None:
        if event.kind == "pile_produced" and event.source == harvester.name:
            mission.piles.append(harvester.piles_produced[-1])
            if forwarder.phase.value == "idle" and not forwarder.safe_stopped:
                forwarder._begin_cycle()

    log.subscribe(_collect_new_piles, EventCategory.MISSION)
    workers: List[Human] = []
    anchors = [Vec2(80.0, 30.0), Vec2(20.0, 45.0), Vec2(70.0, 85.0),
               Vec2(50.0, 20.0), Vec2(35.0, 55.0)]
    for i in range(config.n_workers):
        workers.append(
            Human(
                f"worker-{i + 1}", sim, log, streams, anchors[i % len(anchors)],
                approach_target=forwarder,
                approach_rate_per_h=config.worker_approach_rate_per_h,
            )
        )

    # -- network -----------------------------------------------------------------
    medium = WirelessMedium(
        sim, log, streams, canopy_fn=world.canopy_blockage
    )
    mgmt_key = b"worksite-management-key-0001" if config.protected_management else b""
    network = Network(sim, log, medium, group=config.group, profile=config.profile)
    # the control van parks mid-route so both the harvest site and the
    # landing stay within reliable radio range
    control_pos = Vec2(config.width / 2.0, config.height / 2.0)
    node_control = network.add_node(
        "control", lambda: control_pos, roles=("operator",),
        protected_management=config.protected_management, management_key=mgmt_key,
    )
    node_fwd = network.add_node(
        "forwarder", lambda: forwarder.position,
        protected_management=config.protected_management, management_key=mgmt_key,
    )
    node_drone = None
    if drone is not None:
        drone_ref = drone
        node_drone = network.add_node(
            "drone", lambda: drone_ref.position,
            protected_management=config.protected_management, management_key=mgmt_key,
        )
    network.establish_all()

    # -- sensors and the collaborative safety function ----------------------------
    cameras: Dict[str, Camera] = {}
    detectors: Dict[str, PeopleDetector] = {}
    cameras["forwarder"] = Camera(
        "cam-forwarder", forwarder, occlusion, degradation, nominal_range=35.0
    )
    detectors["forwarder"] = PeopleDetector(cameras["forwarder"], streams)
    ultrasonic = UltrasonicArray("us-forwarder", forwarder, streams, degradation)
    gnss = GnssReceiver("gnss-forwarder", forwarder, streams)

    remote_buffer: List[Detection] = []
    relay: Optional[DetectionRelay] = None
    if drone is not None and node_drone is not None:
        cameras["drone"] = Camera(
            "cam-drone", drone, occlusion, degradation, nominal_range=80.0
        )
        detectors["drone"] = PeopleDetector(cameras["drone"], streams)

        def _on_report(message) -> None:
            remote_buffer.extend(
                CollaborativePeopleDetection.detections_from_report(message)
            )

        relay = DetectionRelay(node_drone, node_fwd, sim, on_report=_on_report)

        def _drone_frame() -> None:
            if drone_ref.mode.value in ("charging", "grounded"):
                return
            detections = detectors["drone"].process_frame(
                sim.now, [w for w in workers if w.alive]
            )
            if detections:
                relay.publish(
                    CollaborativePeopleDetection.report_from_detections(detections)
                )

        from repro.comms.protocols import phase_offset

        sim.every(0.5, _drone_frame, start_at=sim.now + phase_offset("drone-frame", 0.5))

    def _drain_remote() -> List[Detection]:
        drained = list(remote_buffer)
        remote_buffer.clear()
        return drained

    safety_function = CollaborativePeopleDetection(
        forwarder, sim, log, [detectors["forwarder"]],
        people_fn=lambda: [w for w in workers if w.alive],
        ultrasonic=ultrasonic,
        remote_detections_fn=_drain_remote if drone is not None else None,
    )

    # -- protocols -----------------------------------------------------------------
    TelemetryPublisher(node_fwd, forwarder, "control", sim)
    # supervision loss drops the forwarder into degraded-speed autonomy
    # (the recovery plan's fallback) rather than a hard stop — remote sites
    # cannot afford to halt on every connectivity dip (Table I)
    heartbeat = HeartbeatMonitor(
        node_fwd, "control", sim, log,
        on_loss=lambda: forwarder.set_speed_limit(1.0),
        on_recovery=lambda: forwarder.set_speed_limit(None),
    )
    HeartbeatMonitor(node_control, "forwarder", sim, log)

    access_policy: Optional[AccessControlPolicy] = None
    authorize = None
    if config.access_control_enabled:
        access_policy = AccessControlPolicy()
        access_policy.assign("control", "operator")
        access_policy.authenticate("control", credential_valid=True, now=sim.now)
        authorize = lambda message: access_policy.authorize_command(message, sim.now)
    command_channel = CommandChannel(
        node_fwd, forwarder.handle_command, log, sim, authorize=authorize
    )

    # -- defences -----------------------------------------------------------------
    ids_manager: Optional[IdsManager] = None
    gnss_monitor: Optional[GnssPlausibilityMonitor] = None
    anti_hacking: Optional[AntiHackingDetector] = None
    if config.defenses_enabled:
        ids_manager = IdsManager()
        ids_manager.attach(SignatureIds("sig-ids", sim, log))

        def _rate(getter):
            last = {"value": getter()}

            def sample() -> float:
                current = getter()
                delta = current - last["value"]
                last["value"] = current
                return delta

            return sample

        ids_manager.attach(
            AnomalyIds(
                "anom-ids", sim, log,
                features={
                    "frame_loss_rate": _rate(lambda: float(medium.frames_lost)),
                    "record_reject_rate": _rate(
                        lambda: float(node_fwd.records_rejected)
                    ),
                    "deauth_rate": _rate(
                        lambda: float(node_fwd.endpoint.deauths_received)
                    ),
                },
            )
        )
        spec = ProtocolSpec(command_senders={"control"})
        ids_manager.attach(
            SpecificationIds("spec-ids", sim, log, node_fwd, spec)
        )
        gnss_monitor = GnssPlausibilityMonitor("gnss-mon", sim, log, gnss)
        ids_manager.attach(gnss_monitor)
        def _camera_expected(camera) -> bool:
            # the camera should be seeing something when a confirmed fused
            # track sits well inside its nominal range
            for track in safety_function.fusion.confirmed_tracks():
                if track.position.distance_to(camera.position) < 0.6 * camera.nominal_range:
                    return True
            return False

        anti_hacking = AntiHackingDetector(
            "anti-hack", sim, log, list(detectors.values()),
            expectation_fn=_camera_expected,
        )
        ids_manager.attach(anti_hacking)
        if drone is not None:
            from repro.defense.cross_validation import (
                CollaborativePositionCheck,
                drone_observer,
            )

            ids_manager.attach(CollaborativePositionCheck(
                "drone-crossval", sim, log, gnss,
                drone_observer(drone, forwarder, streams),
            ))

    safety_monitor = SafetyMonitor(
        [forwarder, harvester], workers, sim, log
    )

    # -- ground-station plane (strictly opt-in) -----------------------------------
    groundstation = None
    if config.groundstation_enabled:
        # imported lazily so plane-off runs never even load the subsystem
        from repro.attacks.groundstation import build_gs_attacks
        from repro.groundstation import GroundStation

        groundstation = GroundStation(
            sim, log, config.seed, forwarder=forwarder, drone=drone,
            audit_path=config.gs_audit_path,
        )
        if config.gs_attacks:
            build_gs_attacks(config.gs_attacks, groundstation, sim, log)
    elif config.gs_attacks:
        raise ValueError(
            "gs_attacks requires groundstation_enabled=True"
        )

    if config.metrics_interval_s is not None:

        def _sample_metrics() -> None:
            now = sim.now
            metrics.sample("comms.delivery_ratio", now, medium.delivery_ratio)
            metrics.sample("forwarder.speed", now, forwarder.state.speed)
            metrics.sample("mission.delivered_m3", now, mission.delivered_m3)
            if safety_monitor.min_separation_m != float("inf"):
                metrics.sample(
                    "safety.min_separation_m", now,
                    safety_monitor.min_separation_m,
                )

        sim.every(config.metrics_interval_s, _sample_metrics)

    return WorksiteScenario(
        config=config,
        sim=sim,
        log=log,
        streams=streams,
        world=world,
        weather=weather,
        forwarder=forwarder,
        drone=drone,
        harvester=harvester,
        workers=workers,
        mission=mission,
        medium=medium,
        network=network,
        safety_function=safety_function,
        safety_monitor=safety_monitor,
        gnss=gnss,
        cameras=cameras,
        detectors=detectors,
        ids_manager=ids_manager,
        gnss_monitor=gnss_monitor,
        anti_hacking=anti_hacking,
        access_policy=access_policy,
        command_channel=command_channel,
        heartbeat=heartbeat,
        relay=relay,
        metrics=metrics,
        groundstation=groundstation,
    )


def worksite_item_model() -> ItemModel:
    """The ISO/SAE 21434 item definition of the worksite."""
    item = ItemModel(
        name="agrarsense-worksite",
        systems=["forwarder", "drone", "harvester", "control_station", "fleet_cloud"],
        channels=[
            ("fwd-command", "control_station", "forwarder"),
            ("fwd-telemetry", "forwarder", "control_station"),
            ("drone-detections", "drone", "forwarder"),
            ("drone-telemetry", "drone", "control_station"),
            ("cloud-sync", "control_station", "fleet_cloud"),
        ],
    )
    C, I, A = (
        CybersecurityProperty.CONFIDENTIALITY,
        CybersecurityProperty.INTEGRITY,
        CybersecurityProperty.AVAILABILITY,
    )
    item.assets = [
        Asset("ch-command", "Forwarder command channel", "forwarder", (I, A),
              safety_related=True),
        Asset("ch-detection", "Drone detection relay", "drone", (I, A),
              safety_related=True),
        Asset("ch-telemetry", "Telemetry uplink", "forwarder", (C, A)),
        Asset("gnss-fwd", "Forwarder GNSS positioning", "forwarder", (I, A),
              safety_related=True),
        Asset("cam-fwd", "Forwarder perception cameras", "forwarder", (I, A),
              safety_related=True),
        Asset("cam-drone", "Drone observation camera", "drone", (C, I, A),
              safety_related=True),
        Asset("fw-fwd", "Forwarder control firmware", "forwarder", (I,),
              safety_related=True),
        Asset("data-ops", "Operations data (land, environmental)", "control_station",
              (C,)),
    ]
    item.damage_scenarios = [
        DamageScenario(
            "DS-01", "ch-command", I,
            "Unauthorised command moves the forwarder near people",
            SfopImpact.of(safety=3, operational=2), linked_hazard="HZ-04",
        ),
        DamageScenario(
            "DS-02", "ch-command", A,
            "Command channel lost; no e-stop path from control",
            SfopImpact.of(safety=2, operational=2), linked_hazard="HZ-04",
        ),
        DamageScenario(
            "DS-03", "ch-detection", A,
            "Drone detections lost; occluded approaches unseen",
            SfopImpact.of(safety=2, operational=1), linked_hazard="HZ-02",
        ),
        DamageScenario(
            "DS-04", "ch-detection", I,
            "Forged detections cause spurious stops (availability of work)",
            SfopImpact.of(safety=1, operational=2, financial=1),
        ),
        DamageScenario(
            "DS-05", "gnss-fwd", I,
            "Spoofed position walks forwarder off the cleared route",
            SfopImpact.of(safety=3, operational=2, financial=1),
            linked_hazard="HZ-03",
        ),
        DamageScenario(
            "DS-06", "gnss-fwd", A,
            "GNSS denied; navigation degraded to crawl",
            SfopImpact.of(operational=2, financial=1),
        ),
        DamageScenario(
            "DS-07", "cam-fwd", A,
            "Forwarder cameras blinded; people detection degraded",
            SfopImpact.of(safety=2, operational=1), linked_hazard="HZ-01",
        ),
        DamageScenario(
            "DS-08", "cam-drone", I,
            "Drone feed hijacked; silent loss of the collaborative view",
            SfopImpact.of(safety=2, privacy=1), linked_hazard="HZ-02",
        ),
        DamageScenario(
            "DS-09", "fw-fwd", I,
            "Tampered firmware disables protective stop",
            SfopImpact.of(safety=3, financial=2), linked_hazard="HZ-04",
        ),
        DamageScenario(
            "DS-10", "data-ops", C,
            "Land-ownership and operations data disclosed",
            SfopImpact.of(privacy=2, financial=1),
        ),
        DamageScenario(
            "DS-11", "ch-telemetry", C,
            "Operations telemetry disclosed (confidential sites)",
            SfopImpact.of(privacy=1),
        ),
    ]
    item.threat_scenarios = enumerate_threats(item)
    return item


def worksite_attack_graph():
    """The worksite's attack graph (ISO 21434 attack-path work product).

    Entry points are the perimeter radio adversary and physical access to a
    parked machine; goals are the safety-related assets.  The graph backs
    the feasibility analysis with explicit multi-step paths and lets the
    treatment step check which deployed measures sever all paths
    (:meth:`repro.risk.attack_graphs.AttackGraph.severed_by`).
    """
    from repro.risk.attack_graphs import AttackGraph

    graph = AttackGraph()
    radio = graph.add_entry("perimeter-radio")
    physical = graph.add_entry("physical-access")

    on_network = graph.add_state("attacker-on-network")
    assoc_broken = graph.add_state("victim-disassociated")
    feed_access = graph.add_state("camera-feed-access")
    fw_control = graph.add_state("firmware-control")

    goal_command = graph.add_goal("ch-command")
    goal_detection = graph.add_goal("ch-detection")
    goal_gnss = graph.add_goal("gnss-fwd")
    goal_ops = graph.add_goal("data-ops")

    graph.add_action(radio, on_network, "eavesdropping",
                     "learn addresses and protocol from captured traffic")
    graph.add_action(radio, assoc_broken, "wifi_deauth",
                     "force the forwarder off the network")
    graph.add_action(on_network, goal_command, "message_injection",
                     "forge operator commands")
    graph.add_action(on_network, goal_command, "message_replay",
                     "replay captured command records")
    graph.add_action(assoc_broken, goal_detection, "rf_jamming",
                     "keep the detection relay down")
    graph.add_action(radio, goal_detection, "rf_jamming",
                     "jam the drone-forwarder link directly")
    graph.add_action(radio, goal_gnss, "gnss_spoofing",
                     "walk the believed position off the route")
    graph.add_action(radio, goal_gnss, "gnss_jamming", "deny positioning")
    graph.add_action(on_network, feed_access, "camera_hijack",
                     "take over the drone video stream")
    graph.add_action(feed_access, goal_detection, "camera_hijack",
                     "silently consume the collaborative view")
    graph.add_action(feed_access, goal_ops, "eavesdropping",
                     "exfiltrate site footage")
    graph.add_action(on_network, goal_ops, "eavesdropping",
                     "collect telemetry track of operations")
    graph.add_action(physical, fw_control, "firmware_tampering",
                     "reflash a parked machine overnight")
    graph.add_action(fw_control, goal_command, "message_injection",
                     "issue commands from inside the platform")
    return graph
