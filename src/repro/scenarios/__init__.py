"""Scenario composition: the paper's figures as runnable set-ups.

* :mod:`repro.scenarios.worksite` — the Figure 1 partially-autonomous
  worksite (forwarder + drone + harvester + workers + network + defences)
  and the worksite item model for the risk assessments;
* :mod:`repro.scenarios.usecase` — the Figure 2 minimal occlusion use case;
* :mod:`repro.scenarios.campaigns` — named attack campaigns for the
  benchmarks;
* :mod:`repro.scenarios.factory` — primitive-valued run specs → composed,
  armed scenarios (the picklable entry point the sweep runner workers use).
"""

from repro.scenarios.worksite import (
    ScenarioConfig,
    WorksiteScenario,
    build_worksite,
    worksite_item_model,
)
from repro.scenarios.usecase import UsecaseConfig, OcclusionUsecase, build_usecase
from repro.scenarios.campaigns import build_campaign, CAMPAIGN_BUILDERS
from repro.scenarios.factory import PreparedRun, compose_run

__all__ = [
    "PreparedRun",
    "compose_run",
    "ScenarioConfig",
    "WorksiteScenario",
    "build_worksite",
    "worksite_item_model",
    "UsecaseConfig",
    "OcclusionUsecase",
    "build_usecase",
    "build_campaign",
    "CAMPAIGN_BUILDERS",
]
