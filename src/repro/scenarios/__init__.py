"""Scenario composition: the paper's figures as runnable set-ups.

* :mod:`repro.scenarios.worksite` — the Figure 1 partially-autonomous
  worksite (forwarder + drone + harvester + workers + network + defences)
  and the worksite item model for the risk assessments;
* :mod:`repro.scenarios.usecase` — the Figure 2 minimal occlusion use case;
* :mod:`repro.scenarios.campaigns` — named attack campaigns for the
  benchmarks.
"""

from repro.scenarios.worksite import (
    ScenarioConfig,
    WorksiteScenario,
    build_worksite,
    worksite_item_model,
)
from repro.scenarios.usecase import UsecaseConfig, OcclusionUsecase, build_usecase
from repro.scenarios.campaigns import build_campaign, CAMPAIGN_BUILDERS

__all__ = [
    "ScenarioConfig",
    "WorksiteScenario",
    "build_worksite",
    "worksite_item_model",
    "UsecaseConfig",
    "OcclusionUsecase",
    "build_usecase",
    "build_campaign",
    "CAMPAIGN_BUILDERS",
]
