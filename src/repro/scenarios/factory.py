"""Primitive-valued run specs → composed, armed worksite scenarios.

The sweep runner fans runs out across processes, so everything it ships to
a worker must be picklable and platform-stable: plain strings, numbers and
tuples.  This module is the bridge — it turns such a primitive mapping into
a fully composed :class:`~repro.scenarios.worksite.WorksiteScenario` with
its attack campaigns armed and (optionally) a standalone IDS family
attached, without the caller ever touching enum or object types.

``compose_run`` is the single entry point the runner worker calls; it is
also usable directly for in-process experiments that want spec-driven
scenario construction (the determinism regression tests do exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.comms.crypto.secure_channel import SecurityProfile
from repro.defense.ids.anomaly import AnomalyIds
from repro.defense.ids.manager import IdsManager
from repro.defense.ids.signature import SignatureIds
from repro.defense.ids.spec import ProtocolSpec, SpecificationIds
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSchedule, schedule_from_primitives
from repro.scenarios.campaigns import CAMPAIGN_BUILDERS, build_campaign
from repro.scenarios.worksite import (
    ScenarioConfig,
    WorksiteScenario,
    build_worksite,
)
from repro.sim.weather import WeatherState

#: names a run spec may use for its defence posture
PROFILES = ("defended", "undefended")

#: IDS families a run spec may attach on top of an undefended scenario
IDS_FAMILIES = ("signature", "anomaly", "spec", "ensemble")

#: ScenarioConfig fields a spec may override with primitive values
_OVERRIDABLE = {
    "width", "height", "tree_density", "n_ridges", "ridge_height",
    "drone_enabled", "n_workers", "worker_approach_rate_per_h",
    "weather_initial", "weather_frozen", "pile_volume_m3",
    "groundstation_enabled", "gs_attacks",
}


def scenario_config_from_primitives(
    seed: int,
    profile: str = "defended",
    overrides: Optional[Mapping[str, object]] = None,
) -> ScenarioConfig:
    """Build a :class:`ScenarioConfig` from primitive values only.

    ``profile`` selects the defence posture: ``"defended"`` is the paper's
    nominal stack, ``"undefended"`` is plaintext links with every defence
    disabled (the ablation baseline the CLI calls ``--undefended``).
    ``overrides`` may set any field in ``_OVERRIDABLE``; ``weather_initial``
    is given by name (``"clear"``, ``"rain"``, ...).
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; expected one of {PROFILES}"
        )
    kwargs: Dict[str, object] = {"seed": int(seed)}
    if profile == "undefended":
        kwargs.update(
            profile=SecurityProfile.PLAINTEXT,
            protected_management=False,
            defenses_enabled=False,
            access_control_enabled=False,
        )
    valid = {f.name for f in fields(ScenarioConfig)}
    for name, value in dict(overrides or {}).items():
        if name not in _OVERRIDABLE:
            hint = "overridable" if name in valid else "known"
            raise ValueError(
                f"{name!r} is not an {hint} ScenarioConfig field; "
                f"overridable: {sorted(_OVERRIDABLE)}"
            )
        if name == "weather_initial" and isinstance(value, str):
            value = WeatherState[value.upper()]
        kwargs[name] = value
    return ScenarioConfig(**kwargs)


def standalone_ids_family(name: str, scenario: WorksiteScenario) -> IdsManager:
    """Attach one IDS family (or the ensemble) to a composed scenario.

    Used by ablation runs on an *undefended* network, where the scenario's
    own IDS suite is disabled and the family under study is wired up
    separately so channel-level protections do not mask its behaviour.
    """
    if name not in IDS_FAMILIES:
        raise ValueError(
            f"unknown IDS family {name!r}; expected one of {IDS_FAMILIES}"
        )
    manager = IdsManager()
    for detector in _family_detectors(name, scenario):
        manager.attach(detector)
    return manager


def _family_detectors(name: str, scenario: WorksiteScenario) -> List:
    node = scenario.network.nodes["forwarder"]
    medium = scenario.medium
    if name == "signature":
        return [SignatureIds("sig", scenario.sim, scenario.log)]
    if name == "anomaly":
        def rate(getter):
            last = {"v": getter()}

            def sample():
                current = getter()
                delta = current - last["v"]
                last["v"] = current
                return delta

            return sample

        return [AnomalyIds(
            "anom", scenario.sim, scenario.log,
            features={
                "frame_loss_rate": rate(lambda: float(medium.frames_lost)),
                "reject_rate": rate(lambda: float(node.records_rejected)),
                "deauth_rate": rate(
                    lambda: float(node.endpoint.deauths_received)
                ),
            },
        )]
    if name == "spec":
        return [SpecificationIds(
            "spec", scenario.sim, scenario.log, node,
            ProtocolSpec(command_senders={"control"}),
        )]
    return (_family_detectors("signature", scenario)
            + _family_detectors("anomaly", scenario)
            + _family_detectors("spec", scenario))


@dataclass
class PreparedRun:
    """A composed scenario with its attack timeline armed and ready to run."""

    scenario: WorksiteScenario
    windows: List[Tuple[str, float, float]]
    ids_manager: Optional[IdsManager]
    #: armed fault injector, present only when the spec carries faults
    fault_injector: Optional[FaultInjector] = None

    def score_manager(self) -> Optional[IdsManager]:
        """The manager whose alerts should be scored for this run."""
        return self.ids_manager or self.scenario.ids_manager


def compose_run(
    seed: int,
    horizon_s: float,
    profile: str = "defended",
    plan: Sequence[Tuple[str, float, Optional[float]]] = (),
    ids_family: Optional[str] = None,
    overrides: Optional[Mapping[str, object]] = None,
    faults: object = (),
) -> PreparedRun:
    """Compose and arm a worksite run from primitive values.

    ``plan`` is the attack timeline: ``(campaign_name, start_s, duration_s)``
    steps (duration ``None`` means open-ended).  An empty plan is the benign
    baseline.  The returned :class:`PreparedRun` has every campaign armed;
    the caller advances the clock with ``prepared.scenario.run(horizon_s)``.

    ``faults`` is either a :class:`~repro.faults.spec.FaultSchedule` or the
    primitive tuples a :class:`~repro.runner.spec.RunSpec` embeds
    (``FaultSpec.to_primitives`` items).  An empty value leaves the run
    entirely fault-free — no injector is built at all.
    """
    for name, _, _ in plan:
        if name not in CAMPAIGN_BUILDERS:
            raise ValueError(
                f"unknown campaign {name!r}; "
                f"available: {sorted(CAMPAIGN_BUILDERS)}"
            )
    config = scenario_config_from_primitives(seed, profile, overrides)
    scenario = build_worksite(config)
    windows: List[Tuple[str, float, float]] = []
    for name, start, duration in plan:
        kwargs = {"start": float(start)}
        if duration is not None:
            kwargs["duration"] = float(duration)
        try:
            campaign = build_campaign(name, scenario, **kwargs)
        except TypeError:
            # some builders (e.g. "combined") stage their own durations
            kwargs.pop("duration", None)
            campaign = build_campaign(name, scenario, **kwargs)
        campaign.arm()
        windows.extend(campaign.ground_truth_windows())
    manager = (
        standalone_ids_family(ids_family, scenario) if ids_family else None
    )
    injector = None
    if faults:
        schedule = (
            faults if isinstance(faults, FaultSchedule)
            else schedule_from_primitives(faults)
        )
        if schedule:
            injector = FaultInjector(scenario, schedule).arm()
    return PreparedRun(
        scenario=scenario, windows=windows, ids_manager=manager,
        fault_injector=injector,
    )
