"""The SOTIF evidence-collection campaign (ISO 21448 clause 9/10).

Section III-C: AGRARSENSE "explores how to adapt SOTIF principles to forest
machinery" on the Figure 2 use case.  The campaign runs approach episodes
under each catalogued triggering condition (occlusion classes, weather
classes, sensor-availability classes) and records pass/fail exposures into
a :class:`~repro.safety.sotif.SotifAnalysis` — the evidence stream that
moves scenarios from "unknown" to "known" and quantifies the residual-risk
difference between the ground-only and collaborative designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.safety.sotif import SotifAnalysis
from repro.scenarios.usecase import UsecaseConfig, build_usecase
from repro.sim.weather import WeatherState


@dataclass(frozen=True)
class ConditionSetup:
    """How one triggering condition is realised as episode parameters."""

    condition_id: str
    config_overrides: Dict[str, object]


#: triggering-condition id -> the use-case parameters that create it
CONDITION_SETUPS: List[ConditionSetup] = [
    ConditionSetup("TC-01", {"ridge_height": 11.0, "n_screen_trees": 10}),
    ConditionSetup("TC-02", {"ridge_height": 2.0, "n_screen_trees": 70}),
    ConditionSetup("TC-03", {"weather": WeatherState.HEAVY_RAIN,
                             "ridge_height": 6.0}),
    ConditionSetup("TC-04", {"weather": WeatherState.FOG, "ridge_height": 6.0}),
    ConditionSetup("TC-05", {"weather": WeatherState.OVERCAST,
                             "ridge_height": 6.0}),
    ConditionSetup("TC-06", {"approach_speed": 2.6, "ridge_height": 8.0}),
    ConditionSetup("TC-07", {"drone_enabled": False, "ridge_height": 8.0}),
    ConditionSetup("TC-08", {"approach_distance_m": 110.0,
                             "ridge_height": 4.0, "n_screen_trees": 25}),
]


@dataclass
class SotifCampaignResult:
    """Outcome of one evidence-collection campaign."""

    analysis: SotifAnalysis
    episodes_run: int
    failures_by_condition: Dict[str, int] = field(default_factory=dict)


def episode_failed(result) -> bool:
    """SOTIF failure criterion: the function endangered the person.

    An episode fails when the machine was still moving with the person
    inside the danger envelope (``stopped_in_time`` False) — a missed or
    too-late detection.
    """
    return not result.stopped_in_time


def run_sotif_campaign(
    *,
    drone_enabled: bool = True,
    exposures_per_condition: int = 8,
    base_seed: int = 500,
    analysis: Optional[SotifAnalysis] = None,
) -> SotifCampaignResult:
    """Collect exposures for every catalogued triggering condition.

    Parameters
    ----------
    drone_enabled:
        The design under evaluation (TC-07 forces the drone off regardless —
        that *is* its condition).
    exposures_per_condition:
        Episodes per condition (clause 9 wants enough exposure for the
        failure-rate estimate; the analysis' ``min_exposures`` gates trust).
    """
    analysis = analysis or SotifAnalysis(
        min_exposures=exposures_per_condition, acceptance_rate=0.15
    )
    episodes = 0
    failures: Dict[str, int] = {}
    for setup in CONDITION_SETUPS:
        overrides = dict(setup.config_overrides)
        if "drone_enabled" not in overrides:
            overrides["drone_enabled"] = drone_enabled
        for i in range(exposures_per_condition):
            config = UsecaseConfig(
                seed=base_seed + episodes, **overrides  # type: ignore[arg-type]
            )
            usecase = build_usecase(config)
            result = usecase.run_episode()
            failed = episode_failed(result)
            analysis.record_exposure(setup.condition_id, failed)
            failures[setup.condition_id] = (
                failures.get(setup.condition_id, 0) + int(failed)
            )
            episodes += 1
    return SotifCampaignResult(
        analysis=analysis,
        episodes_run=episodes,
        failures_by_condition=failures,
    )
