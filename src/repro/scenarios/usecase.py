"""The Figure 2 minimal use case: occlusion and the collaborative drone.

"The collaborative drone allows for an additional point of view to eliminate
occlusions caused by terrain obstacles."  The use case places the forwarder
behind a terrain ridge while a person approaches from the occluded side;
with the drone's elevated camera in the loop the approach is detected early,
without it late or never.  ``run_episode`` executes one approach episode and
reports detection outcome and timing — the unit of measurement of E-F2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sensors.camera import Camera
from repro.sensors.degradation import DegradationModel
from repro.sensors.detection import Detection, PeopleDetector
from repro.sensors.occlusion import OcclusionModel
from repro.safety.people_detection import CollaborativePeopleDetection
from repro.sim.drone import Drone
from repro.sim.engine import Simulator
from repro.sim.events import EventLog
from repro.sim.forwarder import Forwarder
from repro.sim.geometry import Vec2
from repro.sim.human import Human
from repro.sim.missions import LogPile, MissionPlan
from repro.sim.rng import RngStreams
from repro.sim.terrain import Ridge, Terrain
from repro.sim.weather import Weather, WeatherState
from repro.sim.world import Tree, World, Zone


@dataclass
class UsecaseConfig:
    """Knobs of the minimal use case."""

    seed: int = 1
    drone_enabled: bool = True
    ridge_height: float = 10.0
    ridge_sigma: float = 18.0
    n_screen_trees: int = 40
    approach_distance_m: float = 80.0
    approach_speed: float = 1.4
    episode_timeout_s: float = 120.0
    stop_distance_m: float = 12.0
    weather: WeatherState = WeatherState.CLEAR


@dataclass
class EpisodeResult:
    """Outcome of one approach episode."""

    detected: bool
    detection_time_s: Optional[float]
    detection_distance_m: Optional[float]
    stopped_in_time: bool
    min_separation_m: float
    sources: List[str] = field(default_factory=list)


class OcclusionUsecase:
    """One composed Figure 2 set-up."""

    def __init__(self, config: UsecaseConfig) -> None:
        self.config = config
        self.streams = RngStreams(config.seed)
        self.sim = Simulator()
        self.log = EventLog()
        self.world = self._build_world()
        self.occlusion = OcclusionModel(self.world)
        self.weather = Weather(
            self.sim, self.streams, initial=config.weather, frozen=True
        )
        degradation = DegradationModel(self.weather)

        # forwarder shuttling west of the ridge: short handling times keep it
        # in motion for most of the episode, so a late detection means a
        # moving machine near the person (the hazardous situation)
        mission = MissionPlan(
            piles=[LogPile(Vec2(62.0, 100.0), 200.0)],
            landing_point=Vec2(30.0, 100.0),
            load_time_s=12.0,
            unload_time_s=8.0,
        )
        self.forwarder = Forwarder(
            "forwarder", self.sim, self.log, Vec2(55.0, 100.0), self.world, mission,
            max_speed=2.0,
        )
        self.drone: Optional[Drone] = None
        self.detectors: List[PeopleDetector] = []
        cam_fwd = Camera("cam-forwarder", self.forwarder, self.occlusion,
                         degradation, nominal_range=35.0)
        self.detectors.append(PeopleDetector(cam_fwd, self.streams))
        if config.drone_enabled:
            self.drone = Drone(
                "drone", self.sim, self.log, Vec2(60.0, 95.0),
                target=self.forwarder, altitude=45.0, orbit_radius=12.0,
            )
            cam_drone = Camera("cam-drone", self.drone, self.occlusion,
                               degradation, nominal_range=80.0)
            self.detectors.append(PeopleDetector(cam_drone, self.streams))

        # person anchored east of the ridge, fully occluded from the forwarder
        self.person = Human(
            "person", self.sim, self.log, self.streams,
            Vec2(55.0 + config.approach_distance_m, 100.0),
            wander_radius=0.0, approach_target=self.forwarder,
        )
        self.person.max_speed = config.approach_speed

        self.safety_function = CollaborativePeopleDetection(
            self.forwarder, self.sim, self.log, self.detectors,
            people_fn=lambda: [self.person],
            stop_distance_m=config.stop_distance_m,
        )

    def _build_world(self) -> World:
        config = self.config
        ridge = Ridge(center=Vec2(95.0, 100.0), height=config.ridge_height,
                      sigma=config.ridge_sigma)
        terrain = Terrain(220.0, 200.0, ridges=[ridge])
        world = World(terrain)
        # a screen of trees along the ridge adds canopy occlusion
        rng = self.streams.stream("usecase.trees")
        for _ in range(config.n_screen_trees):
            x = rng.uniform(85.0, 110.0)
            y = rng.uniform(70.0, 130.0)
            world.add_tree(Tree(Vec2(x, y), canopy_radius=rng.uniform(2.0, 3.5)))
        world.add_zone(Zone("work", Vec2(20.0, 60.0), Vec2(200.0, 140.0)))
        return world

    def run_episode(self) -> EpisodeResult:
        """Run one approach episode to completion or timeout."""
        config = self.config
        self.person.start_approach(self.forwarder)
        start = self.sim.now
        min_separation = self.person.distance_to(self.forwarder)
        detected_at: Optional[float] = None
        detected_dist: Optional[float] = None
        endangered = False
        horizon = start + config.episode_timeout_s
        step = 0.5
        while self.sim.now < horizon:
            self.sim.run_until(self.sim.now + step)
            separation = self.person.distance_to(self.forwarder)
            min_separation = min(min_separation, separation)
            if separation < 6.0 and self.forwarder.state.speed > 0.05:
                endangered = True
            if detected_at is None:
                confirm = self.safety_function.first_confirm_times.get("person")
                if confirm is not None:
                    detected_at = confirm - start
                    detected_dist = separation
            if separation < 2.0:
                break
        sources: List[str] = []
        for track in self.safety_function.fusion.tracks.values():
            if track.target == "person":
                sources = list(track.sources)
        stopped = not endangered
        return EpisodeResult(
            detected=detected_at is not None,
            detection_time_s=detected_at,
            detection_distance_m=detected_dist,
            stopped_in_time=stopped,
            min_separation_m=min_separation,
            sources=sources,
        )


def build_usecase(config: Optional[UsecaseConfig] = None) -> OcclusionUsecase:
    """Compose the Figure 2 minimal use case."""
    return OcclusionUsecase(config or UsecaseConfig())
