"""Named attack campaigns against the worksite scenario.

Each builder takes the composed :class:`WorksiteScenario` and returns an
armed-ready :class:`AttackCampaign`.  The vocabulary matches the paper's
survey so every benchmark row can name its paper anchor.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.attacks.camera_attacks import CameraBlindingAttack, CameraHijackAttack
from repro.attacks.deauth import DeauthAttack
from repro.attacks.gnss_attacks import GnssJammingAttack, GnssSpoofingAttack
from repro.attacks.interference import InterferenceSource
from repro.attacks.jamming import JammingAttack
from repro.attacks.network_attacks import (
    MessageInjectionAttack,
    ReplayAttack,
    TamperingAttack,
)
from repro.attacks.scenarios import AttackCampaign
from repro.scenarios.worksite import WorksiteScenario
from repro.sim.geometry import Vec2


def _perimeter(scenario: WorksiteScenario) -> Vec2:
    """A plausible attacker position at the worksite perimeter road."""
    return Vec2(scenario.config.width / 2.0, 2.0)


def jamming_campaign(
    scenario: WorksiteScenario, *, start: float = 600.0, duration: float = 300.0,
    power_dbm: float = 33.0,
) -> AttackCampaign:
    """RF jamming of the worksite channel (Gaber et al.: signal jamming)."""
    attack = JammingAttack(
        "jammer-1", scenario.sim, scenario.log, scenario.medium,
        _perimeter(scenario), power_dbm=power_dbm,
    )
    return AttackCampaign("rf_jamming", "broadband jam of the site radio").add(
        attack, start, duration
    )


def interference_campaign(
    scenario: WorksiteScenario, *, start: float = 600.0, duration: float = 600.0,
) -> AttackCampaign:
    """Co-channel interference (Gaber et al.: frequency interference)."""
    attack = InterferenceSource(
        "interferer-1", scenario.sim, scenario.log, scenario.medium,
        scenario.streams, _perimeter(scenario),
    )
    return AttackCampaign(
        "frequency_interference", "bursty co-channel transmitter"
    ).add(attack, start, duration)


def deauth_campaign(
    scenario: WorksiteScenario, *, start: float = 600.0, duration: float = 300.0,
) -> AttackCampaign:
    """De-auth flood against the forwarder (Gaber et al.: Wi-Fi De-Auth)."""
    attack = DeauthAttack(
        "deauther-1", scenario.sim, scenario.log, scenario.medium,
        _perimeter(scenario), victim="forwarder", spoofed_peer="control",
    )
    return AttackCampaign("wifi_deauth", "forged de-auth flood").add(
        attack, start, duration
    )


def gnss_jamming_campaign(
    scenario: WorksiteScenario, *, start: float = 600.0, duration: float = 300.0,
) -> AttackCampaign:
    """GNSS jamming (Gaber et al.: GNSS attacks)."""
    attack = GnssJammingAttack(
        "gnss-jammer-1", scenario.sim, scenario.log, _perimeter(scenario),
        [scenario.gnss],
    )
    return AttackCampaign("gnss_jamming", "GNSS noise jamming").add(
        attack, start, duration
    )


def gnss_spoofing_campaign(
    scenario: WorksiteScenario, *, start: float = 600.0, duration: float = 600.0,
    drift_per_s: Vec2 = Vec2(0.6, 0.2),
) -> AttackCampaign:
    """GNSS slow-drag spoofing (Gaber et al. / Ren et al.)."""
    attack = GnssSpoofingAttack(
        "gnss-spoofer-1", scenario.sim, scenario.log, scenario.gnss,
        drift_per_s=drift_per_s,
    )
    return AttackCampaign("gnss_spoofing", "slow-drag position spoof").add(
        attack, start, duration
    )


def camera_blinding_campaign(
    scenario: WorksiteScenario, *, start: float = 600.0, duration: float = 300.0,
) -> AttackCampaign:
    """Camera blinding (Petit et al.)."""
    attack = CameraBlindingAttack(
        "blinder-1", scenario.sim, scenario.log, scenario.cameras["forwarder"],
        _perimeter(scenario), effective_range=400.0,
    )
    return AttackCampaign("camera_blinding", "directed-light camera blinding").add(
        attack, start, duration
    )


def camera_hijack_campaign(
    scenario: WorksiteScenario, *, start: float = 600.0, duration: float = 600.0,
) -> AttackCampaign:
    """Drone camera feed hijack (Gaber et al.: camera attacks)."""
    camera = scenario.cameras.get("drone", scenario.cameras["forwarder"])
    attack = CameraHijackAttack(
        "hijacker-1", scenario.sim, scenario.log, camera
    )
    return AttackCampaign("camera_hijack", "video feed takeover").add(
        attack, start, duration
    )


def injection_campaign(
    scenario: WorksiteScenario, *, start: float = 600.0, duration: float = 300.0,
    command: str = "resume",
) -> AttackCampaign:
    """Forged command injection (Section III: unauthorized machine operations)."""
    attack = MessageInjectionAttack(
        "injector-1", scenario.sim, scenario.log, scenario.medium,
        _perimeter(scenario), victim="forwarder", spoofed="control",
        command=command,
    )
    return AttackCampaign("message_injection", "forged operator commands").add(
        attack, start, duration
    )


def replay_campaign(
    scenario: WorksiteScenario, *, start: float = 600.0, duration: float = 600.0,
) -> AttackCampaign:
    """Record-and-replay of captured traffic."""
    attack = ReplayAttack(
        "replayer-1", scenario.sim, scenario.log, scenario.medium,
        _perimeter(scenario), victim="forwarder",
    )
    return AttackCampaign("message_replay", "verbatim traffic replay").add(
        attack, start, duration
    )


def tampering_campaign(
    scenario: WorksiteScenario, *, start: float = 600.0, duration: float = 300.0,
) -> AttackCampaign:
    """In-flight record tampering (MITM bit flips)."""
    attack = TamperingAttack(
        "tamperer-1", scenario.sim, scenario.log, scenario.medium,
        _perimeter(scenario), victim="forwarder",
    )
    return AttackCampaign("message_tampering", "MITM record corruption").add(
        attack, start, duration
    )


def eavesdropping_campaign(
    scenario: WorksiteScenario, *, start: float = 300.0,
    duration: Optional[float] = None,
) -> AttackCampaign:
    """Passive interception of all worksite traffic (Table I confidentiality)."""
    from repro.attacks.eavesdropping import EavesdroppingAttack

    attack = EavesdroppingAttack(
        "listener-1", scenario.sim, scenario.log, scenario.medium
    )
    return AttackCampaign(
        "eavesdropping", "passive interception of operations traffic"
    ).add(attack, start, duration)


def combined_campaign(
    scenario: WorksiteScenario, *, start: float = 600.0,
) -> AttackCampaign:
    """A staged multi-vector campaign: jam → deauth → inject → spoof."""
    campaign = AttackCampaign(
        "combined", "staged multi-vector attack on the worksite"
    )
    campaign.add(
        JammingAttack("jam", scenario.sim, scenario.log, scenario.medium,
                      _perimeter(scenario), power_dbm=30.0),
        start, 180.0,
    )
    campaign.add(
        DeauthAttack("deauth", scenario.sim, scenario.log, scenario.medium,
                     _perimeter(scenario), victim="forwarder",
                     spoofed_peer="control"),
        start + 240.0, 180.0,
    )
    campaign.add(
        MessageInjectionAttack("inject", scenario.sim, scenario.log,
                               scenario.medium, _perimeter(scenario),
                               victim="forwarder", spoofed="control"),
        start + 480.0, 180.0,
    )
    campaign.add(
        GnssSpoofingAttack("spoof", scenario.sim, scenario.log, scenario.gnss),
        start + 720.0, 300.0,
    )
    return campaign


CAMPAIGN_BUILDERS: Dict[str, Callable[..., AttackCampaign]] = {
    "rf_jamming": jamming_campaign,
    "frequency_interference": interference_campaign,
    "wifi_deauth": deauth_campaign,
    "gnss_jamming": gnss_jamming_campaign,
    "gnss_spoofing": gnss_spoofing_campaign,
    "camera_blinding": camera_blinding_campaign,
    "camera_hijack": camera_hijack_campaign,
    "message_injection": injection_campaign,
    "message_replay": replay_campaign,
    "message_tampering": tampering_campaign,
    "eavesdropping": eavesdropping_campaign,
    "combined": combined_campaign,
}


def build_campaign(name: str, scenario: WorksiteScenario, **kwargs) -> AttackCampaign:
    """Build a named campaign against ``scenario``."""
    try:
        builder = CAMPAIGN_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; available: {sorted(CAMPAIGN_BUILDERS)}"
        ) from None
    return builder(scenario, **kwargs)
