"""Injected-violation self-test of the shrink path.

The production system is invariant-clean by construction, so the shrink
guarantee — a minimal repro fails for the *same reason* as the spec it
came from — cannot be exercised on real failures.  This module closes
the loop the same way :mod:`repro.invariants.selftest` does for the
engine: it takes the three stream-level mutations that were discovered
through fuzzer shrink output (``nonce_regression``,
``broken_mode_chain``, ``latency_mismatch``), injects each into a
deliberately *bloated* spec via the evaluator's mutator hook, and runs
the real shrinker over it.

Each case must

* fail its expected invariant on the bloated spec,
* shrink to a strictly smaller spec, and
* still fail with the identical failure identifier after shrinking.

The shrinker cannot see the mutation — it only sees the failure id — so
a reduction that removes the mutation's record-stream site (e.g. drops
the attack that produced the in-window alert ``latency_mismatch``
rewrites) makes the mutator raise, the candidate's failure id change,
and the candidate be rejected.  That the surviving minimal spec still
carries exactly the behaviour the invariant needs is the property this
self-test proves, and what ``repro-worksite fuzz --selftest`` reports.
"""

from __future__ import annotations

from typing import Callable, List

from repro.fuzz.evaluate import Mutator, evaluate_spec, failure_id
from repro.fuzz.shrink import shrink_spec, spec_size
from repro.invariants.selftest import BASE_SEED, MUTATIONS
from repro.runner.spec import RunSpec

#: the invariants/selftest mutations exercised end-to-end through shrink
INJECTED_NAMES = ("nonce_regression", "broken_mode_chain", "latency_mismatch")

#: per-case shrink evaluation budget (each eval is a full simulated run)
SELFTEST_MAX_EVALS = 60


def mutator_for(name: str) -> Mutator:
    """The named selftest mutation, adapted to the evaluator's hook.

    Drops the expected-time half of the selftest contract: the evaluator
    only needs the mutated stream.  The underlying mutation raises when
    its mutation site is gone — under shrink that converts a candidate's
    failure id and rejects it, which is exactly the guarantee under test.
    """
    mutate = next(m for n, _, m in MUTATIONS if n == name)

    def apply(records: List[dict]) -> List[dict]:
        mutated, _ = mutate(records)
        return mutated

    return apply


def expected_invariant(name: str) -> str:
    return next(e for n, e, _ in MUTATIONS if n == name)


def bloated_spec() -> RunSpec:
    """A spec with every kind of removable weight the shrinker handles.

    Two attack steps, the crash/brownout fault campaign plus one stray
    fault, scenario overrides and an explicit IDS family — all on top of
    the invariants-selftest base recipe, so every mutation site (seals,
    mode transitions, in-window alerts) exists before shrinking.
    """
    from repro.faults.campaigns import build_fault_campaign
    from repro.faults.spec import FaultSpec

    schedule = build_fault_campaign("crash_brownout", start=15.0, duration=20.0)
    faults = tuple(fault.to_primitives() for fault in schedule.faults)
    extra = FaultSpec.make(
        "packet_corruption", "medium", 30.0, 10.0, {"probability": 0.1}
    ).to_primitives()
    return RunSpec(
        campaign="gnss_spoofing+rf_jamming",
        seed=BASE_SEED,
        horizon_s=90.0,
        profile="defended",
        plan=(("rf_jamming", 10.0, 20.0), ("gnss_spoofing", 40.0, 15.0)),
        ids_family="signature",
        overrides=(("n_workers", 4), ("tree_density", 0.02)),
        faults=faults + (extra,),
    )


def run_shrink_selftest(
    max_evals: int = SELFTEST_MAX_EVALS,
    log: Callable[[str], None] = lambda message: None,
) -> dict:
    """Shrink every injected-violation spec; assert the failure survives."""
    cases = []
    for name in INJECTED_NAMES:
        expected = expected_invariant(name)
        mutator = mutator_for(name)
        spec = bloated_spec()
        original = evaluate_spec(spec, mutator=mutator)
        target = failure_id(original)
        log(f"{name}: injected failure {target}; shrinking")
        shrunk = shrink_spec(
            spec, original, mutator=mutator, max_evals=max_evals
        )
        result = shrunk["result"]
        preserved = (
            (original.get("failure") or {}).get("kind") == "invariant"
            and expected in original.get("violated", [])
            and expected in result.get("violated", [])
            and failure_id(result) == target
        )
        reduced = spec_size(shrunk["spec"]) < spec_size(spec)
        log(
            f"{name}: {spec.key} (size {spec_size(spec)}) -> "
            f"{shrunk['spec'].key} (size {spec_size(shrunk['spec'])}) "
            f"in {shrunk['steps']} step(s); preserved={preserved}"
        )
        cases.append({
            "name": name,
            "expected_invariant": expected,
            "failure": target,
            "original": {"key": spec.key, "size": spec_size(spec)},
            "shrunk": {
                "key": shrunk["spec"].key,
                "size": spec_size(shrunk["spec"]),
                "spec": shrunk["spec"].to_dict(),
                "violated": result.get("violated", []),
            },
            "steps": shrunk["steps"],
            "evals": shrunk["evals"],
            "preserved": preserved,
            "reduced": reduced,
        })
    return {
        "schema": 1,
        "cases": cases,
        "ok": all(c["preserved"] and c["reduced"] for c in cases),
    }
