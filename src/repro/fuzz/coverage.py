"""Behavioural coverage signatures over the trace record stream.

A *signature* is a short string naming one behaviour the run actually
exhibited — not what its spec asked for.  The families mirror the
subsystems the invariant engine checks:

* ``drop:frame:<cause>`` / ``drop:record:<cause>`` — drop-cause taxonomy
  hits at the frame and record layers;
* ``mode:<machine>:<prev>-><mode>`` — ModeMachine transition edges
  actually taken;
* ``ids:<detector>:<alert_type>:<in|out>`` — IDS alert ↔ attack-window
  attribution outcomes;
* ``service:<service>:down:<cause>`` / ``service:<service>:up`` — the
  outage/recovery paths (the retry/rejoin story shows up here and as
  ``drop:frame:retry_exhausted``);
* ``deauth:<accepted|rejected>`` — management-frame protection outcomes;
* ``safety:<action>`` — safety interventions taken.

Signatures are derived deterministically from the record stream, so the
coverage map inherits the simulator's byte-identical determinism: the
same corpus always produces the same map.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

#: signature family prefixes, in report order
FAMILIES = ("drop", "mode", "ids", "service", "deauth", "safety")


def signatures_from_records(records: Sequence[Mapping]) -> List[str]:
    """The sorted set of behavioural signatures a record stream exhibits."""
    found = set()
    for record in records:
        rtype = record.get("type")
        if rtype == "frame.drop":
            found.add(f"drop:frame:{record.get('cause')}")
        elif rtype == "record.drop":
            found.add(f"drop:record:{record.get('cause')}")
        elif rtype == "mode.transition":
            found.add(
                f"mode:{record.get('machine')}:"
                f"{record.get('prev')}->{record.get('mode')}"
            )
        elif rtype == "ids.alert":
            outcome = "in" if record.get("in_window") else "out"
            found.add(
                f"ids:{record.get('detector')}:"
                f"{record.get('alert_type')}:{outcome}"
            )
        elif rtype == "service.down":
            found.add(
                f"service:{record.get('service')}:down:{record.get('cause')}"
            )
        elif rtype == "service.up":
            found.add(f"service:{record.get('service')}:up")
        elif rtype == "link.deauth":
            outcome = "accepted" if record.get("accepted") else "rejected"
            found.add(f"deauth:{outcome}")
        elif rtype == "safety.intervention":
            found.add(f"safety:{record.get('action')}")
    return sorted(found)


def family_of(signature: str) -> str:
    """The family prefix of one signature string."""
    return signature.split(":", 1)[0]


class CoverageMap:
    """Which signatures the explored corpus has hit, and how often.

    The map is the fuzzer's fitness function: a spec whose trace exhibits
    a signature nobody has seen before earns a place in the corpus.
    Persistence is canonical JSON (sorted keys), so the file is a pure
    function of the observation history.
    """

    def __init__(self) -> None:
        #: signature -> {"count": total hits, "origin": first origin label}
        self._hits: Dict[str, dict] = {}

    def __len__(self) -> int:
        return len(self._hits)

    def __contains__(self, signature: str) -> bool:
        return signature in self._hits

    def observe(self, signatures: Iterable[str], origin: str) -> List[str]:
        """Fold one run's signatures in; returns the never-seen-before ones."""
        new: List[str] = []
        for signature in signatures:
            entry = self._hits.get(signature)
            if entry is None:
                self._hits[signature] = {"count": 1, "origin": origin}
                new.append(signature)
            else:
                entry["count"] += 1
        return sorted(new)

    def signatures(self) -> List[str]:
        return sorted(self._hits)

    def by_family(self) -> Dict[str, int]:
        """Signature counts per family, families in declaration order."""
        counts = {family: 0 for family in FAMILIES}
        for signature in self._hits:
            family = family_of(signature)
            counts[family] = counts.get(family, 0) + 1
        return {f: n for f, n in counts.items() if n}

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "signatures": {
                signature: dict(entry)
                for signature, entry in sorted(self._hits.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CoverageMap":
        cover = cls()
        for signature, entry in dict(data.get("signatures", {})).items():
            cover._hits[str(signature)] = {
                "count": int(entry.get("count", 0)),
                "origin": str(entry.get("origin", "")),
            }
        return cover
