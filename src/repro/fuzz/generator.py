"""Seed-driven sampling and mutation of valid run specs.

The generator is the fuzzer's input model: it knows which campaign names,
fault kinds/targets, profiles and scenario overrides compose into a valid
:class:`~repro.runner.spec.RunSpec`, and samples them from tunable
distributions.  It is deliberately **stateless** — every draw comes from
the ``random.Random`` the caller passes in, so the search loop can derive
one RNG per iteration from the master seed and stay resumable and
byte-identical (see :mod:`repro.fuzz.search`).

Sampling and mutation both stay inside the valid-spec envelope: campaign
names from :data:`~repro.scenarios.campaigns.CAMPAIGN_BUILDERS`, fault
targets that resolve on the generated worksite (drone targets are only
drawn while the drone is enabled), override keys from the factory's
overridable set.  An invalid spec is a generator bug, not a finding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.campaigns import FAULT_CAMPAIGNS, build_fault_campaign
from repro.faults.spec import FaultSpec
from repro.runner.spec import BASELINE, RunSpec, _freeze_faults
from repro.scenarios.campaigns import CAMPAIGN_BUILDERS
from repro.scenarios.factory import IDS_FAMILIES, PROFILES

#: fault targets resolvable on the default worksite, per kind; targets on
#: the drone are filtered out when a spec disables the drone
FAULT_TARGETS: Dict[str, Tuple[str, ...]] = {
    "node_crash": ("drone", "forwarder"),
    "radio_brownout": ("drone", "forwarder", "control"),
    "sensor_freeze": ("cam-forwarder", "cam-drone", "us-forwarder"),
    "sensor_dropout": ("cam-forwarder", "us-forwarder"),
    "sensor_bias": ("gnss-forwarder", "cam-forwarder"),
    "clock_drift": ("drone", "forwarder"),
    "packet_corruption": ("medium",),
}

_DRONE_TARGETS = ("drone", "cam-drone")

_WEATHER_NAMES = ("clear", "overcast", "rain", "heavy_rain", "fog", "snow")


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable distributions for the scenario generator.

    The defaults keep individual runs short (60–120 simulated seconds)
    so a 50-iteration fuzz budget finishes in well under a minute of
    wall time while still exercising attacks, faults and recovery.
    """

    horizons_s: Tuple[float, ...] = (60.0, 90.0, 120.0)
    campaigns: Tuple[str, ...] = tuple(sorted(CAMPAIGN_BUILDERS))
    max_plan_steps: int = 2
    max_faults: int = 3
    profiles: Tuple[str, ...] = PROFILES
    #: probability of the undefended ablation profile
    p_undefended: float = 0.2
    ids_families: Tuple[str, ...] = IDS_FAMILIES
    p_ids_family: float = 0.25
    p_open_ended_attack: float = 0.1
    #: probability of seeding the plan from a named fault campaign
    p_named_fault_campaign: float = 0.25
    seed_bits: int = 16
    max_workers: int = 12
    override_keys: Tuple[str, ...] = (
        "n_workers", "drone_enabled", "tree_density", "weather_initial",
        "worker_approach_rate_per_h", "pile_volume_m3",
    )
    max_overrides: int = 2


def _plan_label(plan: Sequence[Tuple[str, float, Optional[float]]]) -> str:
    """Grouping label for a (possibly multi-step) attack plan."""
    names = sorted({name for name, _, _ in plan})
    return "+".join(names) if names else BASELINE


def spec_with_plan(spec: RunSpec, plan) -> RunSpec:
    """``spec`` with a new plan and a consistent campaign label."""
    plan = tuple(plan)
    return replace(spec, plan=plan, campaign=_plan_label(plan))


def drone_disabled(spec: RunSpec) -> bool:
    return dict(spec.overrides).get("drone_enabled") is False


class ScenarioGenerator:
    """Sample and mutate valid run specs from tunable distributions."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        #: mutation operators in fixed registry order (shuffled per call)
        self._operators = (
            ("add_plan_step", self._add_plan_step),
            ("drop_plan_step", self._drop_plan_step),
            ("retime_plan_step", self._retime_plan_step),
            ("swap_campaign", self._swap_campaign),
            ("add_fault", self._add_fault),
            ("drop_fault", self._drop_fault),
            ("perturb_fault", self._perturb_fault),
            ("reseed", self._reseed),
            ("change_horizon", self._change_horizon),
            ("flip_profile", self._flip_profile),
            ("cycle_ids_family", self._cycle_ids_family),
            ("set_override", self._set_override),
            ("drop_override", self._drop_override),
        )

    # -- sampling -----------------------------------------------------------
    def sample(self, rng: random.Random) -> RunSpec:
        """One fresh spec drawn from the configured distributions."""
        cfg = self.config
        horizon = rng.choice(cfg.horizons_s)
        profile = (
            "undefended" if rng.random() < cfg.p_undefended else "defended"
        )
        overrides = self._sample_overrides(rng)
        plan: List[Tuple[str, float, Optional[float]]] = []
        for _ in range(rng.randint(0, cfg.max_plan_steps)):
            step = self._sample_plan_step(
                rng, horizon, exclude=[name for name, _, _ in plan]
            )
            if step is not None:
                plan.append(step)
        plan = tuple(plan)
        ids_family = None
        if rng.random() < cfg.p_ids_family:
            ids_family = rng.choice(cfg.ids_families)
        spec = RunSpec(
            campaign=_plan_label(plan),
            seed=rng.getrandbits(cfg.seed_bits),
            horizon_s=float(horizon),
            profile=profile,
            plan=plan,
            ids_family=ids_family,
            overrides=tuple(sorted(overrides.items())),
            faults=self._sample_faults(rng, horizon, overrides),
        )
        return spec

    def _sample_plan_step(
        self,
        rng: random.Random,
        horizon: float,
        exclude: Sequence[str] = (),
    ) -> Optional[Tuple[str, float, Optional[float]]]:
        # a plan never repeats a campaign name: builders hard-code their
        # attack endpoint names, so a second instance of the same campaign
        # collides in the radio medium (duplicate endpoint) at start time
        choices = [c for c in self.config.campaigns if c not in exclude]
        if not choices:
            return None
        name = rng.choice(choices)
        start = round(rng.uniform(5.0, horizon * 0.5), 1)
        if rng.random() < self.config.p_open_ended_attack:
            duration = None
        else:
            duration = round(rng.uniform(10.0, 40.0), 1)
        return (name, start, duration)

    def _sample_overrides(self, rng: random.Random) -> Dict[str, object]:
        cfg = self.config
        overrides: Dict[str, object] = {}
        for key in rng.sample(
            cfg.override_keys, rng.randint(0, cfg.max_overrides)
        ):
            overrides[key] = self._override_value(rng, key)
        return overrides

    def _override_value(self, rng: random.Random, key: str) -> object:
        if key == "n_workers":
            return rng.randint(1, self.config.max_workers)
        if key == "drone_enabled":
            return rng.random() < 0.5
        if key == "tree_density":
            return round(rng.uniform(0.005, 0.05), 4)
        if key == "weather_initial":
            return rng.choice(_WEATHER_NAMES)
        if key == "worker_approach_rate_per_h":
            return round(rng.uniform(0.5, 6.0), 2)
        if key == "pile_volume_m3":
            return round(rng.uniform(40.0, 200.0), 1)
        raise ValueError(f"no sampler for override key {key!r}")

    def _sample_fault(
        self, rng: random.Random, horizon: float, no_drone: bool
    ) -> FaultSpec:
        kinds = sorted(FAULT_TARGETS)
        while True:
            kind = rng.choice(kinds)
            targets = [
                t for t in FAULT_TARGETS[kind]
                if not (no_drone and t in _DRONE_TARGETS)
            ]
            if targets:
                break
        target = rng.choice(targets)
        start = round(rng.uniform(5.0, horizon * 0.5), 1)
        duration = round(rng.uniform(5.0, 40.0), 1)
        params: Dict[str, object] = {}
        if kind == "packet_corruption":
            params["probability"] = round(rng.uniform(0.05, 0.5), 3)
        elif kind == "radio_brownout":
            params["sag_db"] = round(rng.uniform(3.0, 20.0), 1)
        elif kind == "sensor_bias":
            params["bias_east_m"] = round(rng.uniform(-10.0, 10.0), 1)
            params["bias_north_m"] = round(rng.uniform(-10.0, 10.0), 1)
        elif kind == "clock_drift":
            params["offset_s"] = round(rng.uniform(0.0, 1.0), 3)
            params["rate"] = round(rng.uniform(0.0, 0.005), 5)
        return FaultSpec.make(kind, target, start, duration, params)

    def _sample_faults(
        self, rng: random.Random, horizon: float, overrides: Dict[str, object]
    ) -> Tuple[tuple, ...]:
        cfg = self.config
        no_drone = overrides.get("drone_enabled") is False
        if rng.random() < cfg.p_named_fault_campaign:
            name = rng.choice(sorted(FAULT_CAMPAIGNS))
            start = round(rng.uniform(5.0, horizon * 0.4), 1)
            duration = round(rng.uniform(10.0, 30.0), 1)
            schedule = build_fault_campaign(name, start=start, duration=duration)
            faults = [
                f for f in schedule.faults
                if not (no_drone and f.target in _DRONE_TARGETS)
            ]
            return tuple(f.to_primitives() for f in faults)
        n = rng.randint(0, cfg.max_faults)
        return tuple(
            self._sample_fault(rng, horizon, no_drone).to_primitives()
            for _ in range(n)
        )

    # -- mutation -----------------------------------------------------------
    def mutate(self, rng: random.Random, spec: RunSpec) -> RunSpec:
        """One structural mutation of ``spec``, staying inside the envelope.

        Operators are tried in a per-call shuffled order; the first one
        applicable to this spec wins (e.g. ``drop_fault`` never applies to
        a fault-free spec).  At least ``reseed`` always applies.
        """
        order = list(self._operators)
        rng.shuffle(order)
        for _, operator in order:
            mutated = operator(rng, spec)
            if mutated is not None and mutated != spec:
                return mutated
        return self._reseed(rng, spec)

    # each operator returns the mutated spec, or None when inapplicable
    def _add_plan_step(self, rng, spec: RunSpec) -> Optional[RunSpec]:
        if len(spec.plan) >= self.config.max_plan_steps:
            return None
        step = self._sample_plan_step(
            rng, spec.horizon_s,
            exclude=[name for name, _, _ in spec.plan],
        )
        if step is None:
            return None
        return spec_with_plan(spec, spec.plan + (step,))

    def _drop_plan_step(self, rng, spec: RunSpec) -> Optional[RunSpec]:
        if not spec.plan:
            return None
        index = rng.randrange(len(spec.plan))
        return spec_with_plan(
            spec, spec.plan[:index] + spec.plan[index + 1:]
        )

    def _retime_plan_step(self, rng, spec: RunSpec) -> Optional[RunSpec]:
        if not spec.plan:
            return None
        index = rng.randrange(len(spec.plan))
        name, _, _ = spec.plan[index]
        step = (name,) + self._sample_plan_step(rng, spec.horizon_s)[1:]
        plan = list(spec.plan)
        plan[index] = step
        return spec_with_plan(spec, plan)

    def _swap_campaign(self, rng, spec: RunSpec) -> Optional[RunSpec]:
        if not spec.plan:
            return None
        index = rng.randrange(len(spec.plan))
        _, start, duration = spec.plan[index]
        used = {name for name, _, _ in spec.plan}
        choices = [c for c in self.config.campaigns if c not in used]
        if not choices:
            return None
        plan = list(spec.plan)
        plan[index] = (rng.choice(choices), start, duration)
        return spec_with_plan(spec, plan)

    def _add_fault(self, rng, spec: RunSpec) -> Optional[RunSpec]:
        if len(spec.faults) >= self.config.max_faults:
            return None
        fault = self._sample_fault(
            rng, spec.horizon_s, drone_disabled(spec)
        )
        return replace(
            spec, faults=spec.faults + (fault.to_primitives(),)
        )

    def _drop_fault(self, rng, spec: RunSpec) -> Optional[RunSpec]:
        if not spec.faults:
            return None
        index = rng.randrange(len(spec.faults))
        return replace(
            spec, faults=spec.faults[:index] + spec.faults[index + 1:]
        )

    def _perturb_fault(self, rng, spec: RunSpec) -> Optional[RunSpec]:
        if not spec.faults:
            return None
        index = rng.randrange(len(spec.faults))
        fresh = self._sample_fault(
            rng, spec.horizon_s, drone_disabled(spec)
        )
        faults = list(spec.faults)
        faults[index] = fresh.to_primitives()
        return replace(spec, faults=_freeze_faults(faults))

    def _reseed(self, rng, spec: RunSpec) -> RunSpec:
        return replace(spec, seed=rng.getrandbits(self.config.seed_bits))

    def _change_horizon(self, rng, spec: RunSpec) -> Optional[RunSpec]:
        choices = [h for h in self.config.horizons_s if h != spec.horizon_s]
        if not choices:
            return None
        return replace(spec, horizon_s=float(rng.choice(choices)))

    def _flip_profile(self, rng, spec: RunSpec) -> RunSpec:
        flipped = "undefended" if spec.profile == "defended" else "defended"
        return replace(spec, profile=flipped)

    def _cycle_ids_family(self, rng, spec: RunSpec) -> RunSpec:
        choices: List[Optional[str]] = [
            f for f in self.config.ids_families if f != spec.ids_family
        ]
        if spec.ids_family is not None:
            choices.append(None)
        return replace(spec, ids_family=rng.choice(choices))

    def _set_override(self, rng, spec: RunSpec) -> RunSpec:
        key = rng.choice(self.config.override_keys)
        overrides = dict(spec.overrides)
        overrides[key] = self._override_value(rng, key)
        mutated = replace(spec, overrides=tuple(sorted(overrides.items())))
        if overrides.get("drone_enabled") is False:
            # keep the fault timeline valid: no drone targets without a drone
            faults = tuple(
                f for f in mutated.faults if f[1] not in _DRONE_TARGETS
            )
            mutated = replace(mutated, faults=faults)
        return mutated

    def _drop_override(self, rng, spec: RunSpec) -> Optional[RunSpec]:
        if not spec.overrides:
            return None
        index = rng.randrange(len(spec.overrides))
        overrides = list(spec.overrides)
        del overrides[index]
        return replace(spec, overrides=tuple(overrides))
