"""Delta-debug a failing spec down to a minimal repro.

The shrinker is a deterministic greedy reducer: it applies a fixed
sequence of structural passes (drop plan steps, drop faults, drop
overrides, clear the IDS family, shorten the horizon, then snap attack
and fault timings to coarse values) and accepts a candidate only when
its evaluation still fails with the *same* failure identifier
(:func:`repro.fuzz.evaluate.failure_id`) as the original.  Passes repeat
until a full sweep accepts nothing, or the evaluation budget runs out.

Because acceptance is keyed on the failure identifier — the violated
invariant set for invariant failures, the exception type for crashes —
the minimal repro is guaranteed to fail *for the same reason* as the
spec it came from.  That guarantee is what makes a shrunk repro a
machine-checkable assurance artifact rather than merely a smaller run,
and it is exercised end-to-end by :mod:`repro.fuzz.selftest`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, List, Optional

from repro.fuzz.evaluate import Mutator, evaluate_spec, failure_id
from repro.fuzz.generator import spec_with_plan
from repro.runner.spec import RunSpec

#: default cap on evaluations one shrink may spend
DEFAULT_MAX_EVALS = 120

#: horizons tried (ascending) when shortening a repro's run
_HORIZON_LADDER = (30.0, 45.0, 60.0, 90.0)

#: timing quantum attack/fault starts and durations are snapped to
_TIME_QUANTUM_S = 5.0


def spec_size(spec: RunSpec) -> float:
    """Scalar complexity of a spec; shrinking never increases it.

    Structure dominates (plan steps, faults, overrides, an explicit IDS
    family), the horizon breaks ties, and non-quantized timings add a
    small penalty so the timing-snap pass counts as progress.
    """
    size = (
        10.0 * len(spec.plan)
        + 10.0 * len(spec.faults)
        + 4.0 * len(spec.overrides)
        + (2.0 if spec.ids_family is not None else 0.0)
        + spec.horizon_s / 100.0
    )
    for _, start, duration in spec.plan:
        size += _quantum_penalty(start) + _quantum_penalty(duration)
    for fault in spec.faults:
        size += _quantum_penalty(fault[2]) + _quantum_penalty(fault[3])
    return round(size, 6)


def _quantum_penalty(value: Optional[float]) -> float:
    if value is None:
        return 0.0
    return 0.0 if float(value) % _TIME_QUANTUM_S == 0.0 else 0.5


def _snap(value: Optional[float]) -> Optional[float]:
    """``value`` snapped to the timing quantum (never below one quantum)."""
    if value is None:
        return None
    snapped = round(float(value) / _TIME_QUANTUM_S) * _TIME_QUANTUM_S
    return max(_TIME_QUANTUM_S, snapped)


def _candidates(spec: RunSpec) -> Iterator[RunSpec]:
    """All one-step reductions of ``spec``, in fixed deterministic order."""
    for index in range(len(spec.plan)):
        yield spec_with_plan(
            spec, spec.plan[:index] + spec.plan[index + 1:]
        )
    for index in range(len(spec.faults)):
        yield replace(
            spec, faults=spec.faults[:index] + spec.faults[index + 1:]
        )
    for index in range(len(spec.overrides)):
        yield replace(
            spec,
            overrides=spec.overrides[:index] + spec.overrides[index + 1:],
        )
    if spec.ids_family is not None:
        yield replace(spec, ids_family=None)
    for horizon in _HORIZON_LADDER:
        if horizon < spec.horizon_s:
            yield replace(spec, horizon_s=horizon)
    snapped_plan = tuple(
        (name, _snap(start), _snap(duration))
        for name, start, duration in spec.plan
    )
    if snapped_plan != spec.plan:
        yield spec_with_plan(spec, snapped_plan)
    snapped_faults = tuple(
        (kind, target, _snap(start), _snap(duration), params)
        for kind, target, start, duration, params in spec.faults
    )
    if snapped_faults != spec.faults:
        yield replace(spec, faults=snapped_faults)


def shrink_spec(
    spec: RunSpec,
    result: Optional[dict] = None,
    *,
    mutator: Optional[Mutator] = None,
    max_evals: int = DEFAULT_MAX_EVALS,
) -> dict:
    """Reduce a failing ``spec`` while preserving its failure identifier.

    ``result`` is the spec's prior evaluation, if the caller already has
    it (saves one evaluation).  Returns a dict with the shrunk ``spec``,
    its evaluation ``result``, the preserved ``failure`` identifier, the
    number of ``evals`` spent, and ``reproduced`` — False means the
    original spec did not fail at all under this evaluator, so there was
    nothing to shrink (the spec comes back unchanged).
    """
    evals = 0
    if result is None:
        result = evaluate_spec(spec, mutator=mutator)
        evals += 1
    target = failure_id(result)
    if target is None:
        return {
            "spec": spec,
            "result": result,
            "failure": None,
            "evals": evals,
            "reproduced": False,
            "steps": 0,
        }
    steps = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _candidates(spec):
            if spec_size(candidate) >= spec_size(spec):
                continue
            if evals >= max_evals:
                break
            attempt = evaluate_spec(candidate, mutator=mutator)
            evals += 1
            if failure_id(attempt) == target:
                spec, result = candidate, attempt
                steps += 1
                improved = True
                break
    return {
        "spec": spec,
        "result": result,
        "failure": target,
        "evals": evals,
        "reproduced": True,
        "steps": steps,
    }


def shrink_report(original_spec: RunSpec, original_result: dict,
                  shrunk: dict) -> dict:
    """The persisted JSON payload for one shrunk failing spec."""
    shrunk_spec: RunSpec = shrunk["spec"]
    return {
        "schema": 1,
        "failure": shrunk["failure"],
        "original": {
            "key": original_spec.key,
            "spec": original_spec.to_dict(),
            "size": spec_size(original_spec),
            "digest": original_result.get("digest"),
            "violated": original_result.get("violated", []),
            "error": original_result.get("error"),
        },
        "shrunk": {
            "key": shrunk_spec.key,
            "spec": shrunk_spec.to_dict(),
            "size": spec_size(shrunk_spec),
            "digest": shrunk["result"].get("digest"),
            "violated": shrunk["result"].get("violated", []),
            "error": shrunk["result"].get("error"),
        },
        "evals": shrunk["evals"],
        "steps": shrunk["steps"],
        "reproduced": shrunk["reproduced"],
    }
