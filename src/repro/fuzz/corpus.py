"""On-disk corpus for the coverage-guided fuzzer.

A corpus directory is the fuzzer's entire state, laid out so that every
file is a pure function of the master seed and the iteration count:

``corpus.jsonl``
    One canonical-JSON line per coverage-increasing spec, in discovery
    order: ``{"schema", "key", "origin", "new_signatures", "spec"}``.
``coverage.json``
    The persisted :class:`~repro.fuzz.coverage.CoverageMap`.
``state.json``
    Resume bookkeeping: master seed, iterations done, failure counters
    and the accumulated risk-heatmap cells.
``failures/<origin>-<key>.json``
    One shrink report per failing spec
    (see :func:`repro.fuzz.shrink.shrink_report`).
``report.json``
    The risk-heatmap report over the explored space, rewritten at the
    end of every session (see :func:`repro.telemetry.analysis.fuzz_report`).

All JSON is written with sorted keys and a trailing newline, so two
sessions with the same seed and budget produce byte-identical trees —
the property the CI smoke job and the acceptance check both diff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.fuzz.coverage import CoverageMap
from repro.runner.spec import RunSpec
from repro.telemetry.writer import canonical_line

STATE_SCHEMA = 1


def _dump(path: Path, payload: dict) -> None:
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )


class Corpus:
    """Load, append to, and persist one corpus directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.entries: List[dict] = []
        self.coverage = CoverageMap()
        self.state: dict = {
            "schema": STATE_SCHEMA,
            "seed": None,
            "iterations_done": 0,
            "failures": 0,
            "unshrinkable": 0,
            "seed_signatures": 0,
            "heatmap": {},
        }

    # -- paths --------------------------------------------------------------
    @property
    def corpus_path(self) -> Path:
        return self.root / "corpus.jsonl"

    @property
    def coverage_path(self) -> Path:
        return self.root / "coverage.json"

    @property
    def state_path(self) -> Path:
        return self.root / "state.json"

    @property
    def failures_dir(self) -> Path:
        return self.root / "failures"

    @property
    def report_path(self) -> Path:
        return self.root / "report.json"

    # -- lifecycle ----------------------------------------------------------
    def exists(self) -> bool:
        return self.state_path.exists()

    def load(self) -> "Corpus":
        """Load a previously persisted corpus for ``--resume``."""
        self.state = json.loads(self.state_path.read_text(encoding="utf-8"))
        if self.state.get("schema") != STATE_SCHEMA:
            raise ValueError(
                f"unsupported corpus state schema in {self.state_path}: "
                f"{self.state.get('schema')!r}"
            )
        if self.coverage_path.exists():
            self.coverage = CoverageMap.from_dict(
                json.loads(self.coverage_path.read_text(encoding="utf-8"))
            )
        self.entries = []
        if self.corpus_path.exists():
            with self.corpus_path.open(encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        self.entries.append(json.loads(line))
        return self

    def save(self) -> None:
        """Persist coverage and state (corpus/failures are append-on-add)."""
        self.root.mkdir(parents=True, exist_ok=True)
        _dump(self.coverage_path, self.coverage.to_dict())
        _dump(self.state_path, self.state)

    # -- content ------------------------------------------------------------
    def specs(self) -> List[RunSpec]:
        """The corpus entries rehydrated as run specs, discovery order."""
        return [RunSpec.from_dict(entry["spec"]) for entry in self.entries]

    def add_entry(
        self, spec: RunSpec, origin: str, new_signatures: List[str]
    ) -> dict:
        """Append one coverage-increasing spec to ``corpus.jsonl``."""
        entry = {
            "schema": STATE_SCHEMA,
            "key": spec.key,
            "origin": origin,
            "new_signatures": list(new_signatures),
            "spec": spec.to_dict(),
        }
        self.entries.append(entry)
        self.root.mkdir(parents=True, exist_ok=True)
        with self.corpus_path.open("a", encoding="utf-8") as handle:
            handle.write(canonical_line(entry) + "\n")
        return entry

    def add_failure(self, origin: str, key: str, report: dict) -> Path:
        """Persist one shrink report under ``failures/``."""
        self.failures_dir.mkdir(parents=True, exist_ok=True)
        path = self.failures_dir / f"{origin.replace(':', '-')}-{key}.json"
        _dump(path, report)
        return path

    def write_report(self, report: dict) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        _dump(self.report_path, report)
        return self.report_path

    # -- heatmap accumulation ----------------------------------------------
    def record_cell(
        self,
        spec: RunSpec,
        *,
        new_signatures: int,
        violations: int,
        failed: bool,
    ) -> None:
        """Fold one evaluated run into its risk-heatmap cell.

        Cells are keyed ``<campaign-label>|<sorted fault kinds>`` — the
        two axes the paper's risk argument slices on (what attack was
        composed, what faults were concurrently injected).
        """
        kinds = sorted({fault[0] for fault in spec.faults}) or ["none"]
        cell_key = f"{spec.campaign}|{'+'.join(kinds)}"
        cell = self.state["heatmap"].setdefault(
            cell_key,
            {"runs": 0, "new_signatures": 0, "violations": 0, "failures": 0},
        )
        cell["runs"] += 1
        cell["new_signatures"] += int(new_signatures)
        cell["violations"] += int(violations)
        cell["failures"] += int(bool(failed))
