"""Coverage-guided scenario fuzzing: generated worksite scenarios at scale.

The paper's certification argument needs systematic, evidence-producing
exploration of the attack/fault scenario space — not a handful of
hand-written grids.  This package turns the PR 1–5 machinery (run specs,
the scenario factory, structured traces, the invariant engine, fault
campaigns) into an automated scenario-discovery engine:

* :mod:`repro.fuzz.generator` — seed-driven sampling and mutation of
  valid :class:`~repro.runner.spec.RunSpec` values over tunable
  distributions (attack plans, fault schedules, scenario overrides);
* :mod:`repro.fuzz.coverage` — behavioural coverage signatures extracted
  from the trace record stream (drop-cause taxonomy hits, mode-machine
  transition edges, IDS attribution outcomes, service outage/recovery
  paths) folded into a persistent :class:`CoverageMap`;
* :mod:`repro.fuzz.evaluate` — the one-spec evaluator: compose, run,
  trace, invariant-check, signature-extract (the fuzzer's oracle);
* :mod:`repro.fuzz.search` — the mutation-based coverage-guided search
  loop with a persistent, resumable corpus;
* :mod:`repro.fuzz.shrink` — delta-debugging of failing specs down to
  minimal repros that preserve the original failure;
* :mod:`repro.fuzz.selftest` — injected-violation specs proving the
  shrinker preserves the triggering invariant.

Everything is a pure function of the master seed: two invocations of
``repro-worksite fuzz --seed 7 --iterations 50`` write byte-identical
corpora, coverage maps and shrunk repros.
"""

from repro.fuzz.corpus import Corpus
from repro.fuzz.coverage import CoverageMap, signatures_from_records
from repro.fuzz.evaluate import evaluate_spec, failure_id
from repro.fuzz.generator import GeneratorConfig, ScenarioGenerator
from repro.fuzz.search import FuzzSession, run_fuzz
from repro.fuzz.shrink import shrink_spec, spec_size

__all__ = [
    "Corpus",
    "CoverageMap",
    "FuzzSession",
    "GeneratorConfig",
    "ScenarioGenerator",
    "evaluate_spec",
    "failure_id",
    "run_fuzz",
    "shrink_spec",
    "signatures_from_records",
    "spec_size",
]
