"""The mutation-based coverage-guided search loop.

One iteration is one derived-RNG draw: either a fresh sample from the
generator's distributions or a structural mutation of a corpus entry,
evaluated through :func:`repro.fuzz.evaluate.evaluate_spec`.  A spec
earns a corpus slot when its trace exhibits a coverage signature never
seen before; a spec whose evaluation fails the oracle (invariant
violation, exception, deadlock) is delta-debugged to a minimal repro and
persisted under ``failures/``.

Determinism and resume share one mechanism: iteration ``i`` always runs
under ``Random(derive_seed(master_seed, f"fuzz:iter:{i}"))``, and the
corpus directory records how many iterations are done.  Resuming with
the same master seed therefore continues the *identical* trajectory the
un-interrupted session would have taken — and two sessions with the same
seed and budget write byte-identical corpora (wall time never enters any
persisted file; it only gates when a ``--time-budget`` session stops).
"""

from __future__ import annotations

import time
from random import Random
from typing import Callable, Optional

from repro.fuzz.corpus import Corpus
from repro.fuzz.evaluate import evaluate_spec, failure_id
from repro.fuzz.generator import ScenarioGenerator
from repro.fuzz.shrink import shrink_report, shrink_spec
from repro.runner.spec import RunSpec
from repro.sim.rng import derive_seed
from repro.telemetry.analysis import fuzz_report

#: iteration budget when the caller names neither iterations nor wall time
DEFAULT_ITERATIONS = 25

#: probability an iteration samples fresh instead of mutating the corpus
P_FRESH = 0.3

Log = Callable[[str], None]


def seed_specs() -> list:
    """The seed corpus: the default worksite, no attacks, no faults.

    Both defence profiles run so the map starts with the system's normal
    behavioural baseline; everything the search discovers beyond these
    signatures is new behaviour (the acceptance bar counts exactly this).
    """
    return [
        RunSpec(seed=42, horizon_s=90.0, profile="defended"),
        RunSpec(seed=42, horizon_s=90.0, profile="undefended"),
    ]


class FuzzSession:
    """One fuzzing session over a (possibly pre-existing) corpus directory."""

    def __init__(
        self,
        corpus_dir,
        seed: int,
        *,
        generator: Optional[ScenarioGenerator] = None,
        log: Optional[Log] = None,
        monitor=None,
        status_path=None,
    ) -> None:
        self.corpus = Corpus(corpus_dir)
        self.seed = int(seed)
        self.generator = generator or ScenarioGenerator()
        self.log: Log = log or (lambda message: None)
        # opt-in progress plane (a SweepMonitor): status.json carries
        # wall-clock content, so the CLI wires it up explicitly and the
        # byte-identical-corpus contract stays about the corpus tree only
        self.monitor = monitor
        self.status_path = status_path

    # -- lifecycle ----------------------------------------------------------
    def start(self, *, resume: bool = False) -> None:
        """Initialise a fresh corpus, or reload one for ``--resume``."""
        if self.corpus.exists():
            if not resume:
                raise FileExistsError(
                    f"corpus directory {self.corpus.root} already holds a "
                    "session; pass --resume to continue it"
                )
            self.corpus.load()
            if self.corpus.state.get("seed") != self.seed:
                raise ValueError(
                    f"corpus at {self.corpus.root} was built with seed "
                    f"{self.corpus.state.get('seed')}, not {self.seed}; "
                    "resuming under a different seed would fork the trajectory"
                )
            self.log(
                f"resumed corpus: {len(self.corpus.entries)} entries, "
                f"{len(self.corpus.coverage)} signatures, "
                f"{self.corpus.state['iterations_done']} iterations done"
            )
            return
        self.corpus.state["seed"] = self.seed
        for j, spec in enumerate(seed_specs()):
            origin = f"seed:{j}"
            result = evaluate_spec(spec)
            new = self.corpus.coverage.observe(result["signatures"], origin)
            self.corpus.add_entry(spec, origin, new)
        self.corpus.state["seed_signatures"] = len(self.corpus.coverage)
        self.log(
            f"seed corpus: {len(self.corpus.entries)} specs, "
            f"{len(self.corpus.coverage)} baseline signatures"
        )

    # -- the loop -----------------------------------------------------------
    def run(
        self,
        iterations: Optional[int] = None,
        time_budget_s: Optional[float] = None,
    ) -> dict:
        """Run until the iteration or wall-time budget is spent.

        Returns the risk-heatmap report (also persisted as
        ``report.json``).  With only a time budget the stopping point —
        but nothing about any completed iteration — depends on the wall
        clock.
        """
        if iterations is None and time_budget_s is None:
            iterations = DEFAULT_ITERATIONS
        started = time.monotonic()
        done = 0
        self._progress_event(
            "sweep_started", total=iterations or 0, jobs=1, kind="fuzz",
        )
        while True:
            if iterations is not None and done >= iterations:
                break
            if (time_budget_s is not None
                    and time.monotonic() - started >= time_budget_s):
                break
            index = self.corpus.state["iterations_done"]
            self._progress_event(
                "cell_started", key=f"iter:{index}", label=f"iter {index}",
            )
            iter_started = time.monotonic()
            self._iterate(index)
            self.corpus.state["iterations_done"] = index + 1
            done += 1
            self._progress_event(
                "cell_finished", key=f"iter:{index}", status="ok",
                cached=False,
                wall_s=round(time.monotonic() - iter_started, 3),
            )
        self.corpus.save()
        report = self.build_report()
        self.corpus.write_report(report)
        self._write_status()
        return report

    def _progress_event(self, name: str, **fields) -> None:
        if self.monitor is None:
            return
        fields["event"] = name
        fields.setdefault("t", time.monotonic())
        self.monitor.on_event(fields)
        self._write_status()

    def _write_status(self) -> None:
        if self.monitor is not None and self.status_path is not None:
            self.monitor.write_status(self.status_path)

    def _iterate(self, index: int) -> None:
        rng = Random(derive_seed(self.seed, f"fuzz:iter:{index}"))
        origin = f"iter:{index}"
        specs = self.corpus.specs()
        if not specs or rng.random() < P_FRESH:
            spec, how = self.generator.sample(rng), "sample"
        else:
            spec, how = self.generator.mutate(rng, rng.choice(specs)), "mutate"
        result = evaluate_spec(spec)
        new = self.corpus.coverage.observe(result["signatures"], origin)
        if new:
            self.corpus.add_entry(spec, origin, new)
            self.log(
                f"[{index}] {how} {spec.key} ({spec.campaign}): "
                f"+{len(new)} signature(s): {', '.join(new[:4])}"
                + (" ..." if len(new) > 4 else "")
            )
        invariants = result.get("invariants") or {}
        failure = failure_id(result)
        if failure is not None:
            self.corpus.state["failures"] += 1
            self.log(f"[{index}] FAILURE {spec.key}: {failure}; shrinking")
            # shrink re-evaluates the original itself, so a flaky failure
            # that does not reproduce is caught (and counted) here
            shrunk = shrink_spec(spec)
            report = shrink_report(spec, result, shrunk)
            if (not shrunk["reproduced"]
                    or failure_id(shrunk["result"]) != failure):
                self.corpus.state["unshrinkable"] += 1
                report["unshrinkable"] = True
                self.log(f"[{index}] UNSHRINKABLE {spec.key}: "
                         "failure did not reproduce under shrink")
            else:
                self.log(
                    f"[{index}] shrunk {spec.key} -> {shrunk['spec'].key} "
                    f"in {shrunk['steps']} step(s), {shrunk['evals']} eval(s)"
                )
            self.corpus.add_failure(origin, spec.key, report)
        self.corpus.record_cell(
            spec,
            new_signatures=len(new),
            violations=invariants.get("violations", 0),
            failed=failure is not None,
        )

    # -- reporting ----------------------------------------------------------
    def build_report(self) -> dict:
        state = self.corpus.state
        totals = {
            "seed": self.seed,
            "iterations": state["iterations_done"],
            "corpus_entries": len(self.corpus.entries),
            "signatures": len(self.corpus.coverage),
            "seed_signatures": state["seed_signatures"],
            "new_beyond_seed": (
                len(self.corpus.coverage) - state["seed_signatures"]
            ),
            "failures": state["failures"],
            "unshrinkable": state["unshrinkable"],
        }
        return fuzz_report(
            self.corpus.coverage.to_dict(), state["heatmap"], totals
        )


def run_fuzz(
    corpus_dir,
    seed: int,
    *,
    iterations: Optional[int] = None,
    time_budget_s: Optional[float] = None,
    resume: bool = False,
    generator: Optional[ScenarioGenerator] = None,
    log: Optional[Log] = None,
    monitor=None,
    status_path=None,
) -> dict:
    """Convenience wrapper: start (or resume) a session and run its budget."""
    session = FuzzSession(
        corpus_dir, seed, generator=generator, log=log,
        monitor=monitor, status_path=status_path,
    )
    session.start(resume=resume)
    return session.run(iterations=iterations, time_budget_s=time_budget_s)
