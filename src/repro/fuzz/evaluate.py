"""The one-spec evaluator: compose, run, trace, check, extract coverage.

This is the fuzzer's measurement instrument and its oracle in one pass.
A spec is composed through the same :func:`~repro.scenarios.factory.compose_run`
path the sweep worker uses, run under an in-memory tracer (the trace
header embeds the spec, mirroring ``repro-worksite trace``, so every
persisted repro is self-describing and replayable by ``check``), and the
record stream is then:

* folded into behavioural coverage signatures
  (:func:`repro.fuzz.coverage.signatures_from_records`);
* swept by the full :class:`~repro.invariants.engine.InvariantEngine`
  registry — any violation is a **failure**;
* hashed into a canonical trace digest that pins the exact bytes a
  repro reproduces.

A spec also fails when composition/execution raises, or when the kernel
deadlocks short of the horizon.  ``failure_id`` names the failure class;
the shrinker only accepts reductions that preserve it.

The optional ``mutator`` hook rewrites the record stream *before* the
invariant sweep.  It exists for the self-test tier
(:mod:`repro.fuzz.selftest`): seeded stream-level violations let the
shrink path be proven against known failures on a system whose real runs
are invariant-clean.
"""

from __future__ import annotations

import hashlib
import traceback
from typing import Callable, List, Optional

from repro.invariants.engine import InvariantEngine
from repro.fuzz.coverage import signatures_from_records
from repro.runner.spec import RunSpec
from repro.telemetry.writer import canonical_line

Mutator = Callable[[List[dict]], object]


def trace_digest(records: List[dict]) -> str:
    """SHA-256 over the canonical JSONL encoding of a record stream."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(canonical_line(record).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _run_records(spec: RunSpec) -> List[dict]:
    """Execute ``spec`` and return its full in-memory record stream."""
    from repro.scenarios.factory import compose_run
    from repro.telemetry import tracer as trace

    prepared = compose_run(
        seed=spec.seed,
        horizon_s=spec.horizon_s,
        profile=spec.profile,
        plan=spec.plan,
        ids_family=spec.ids_family,
        overrides=dict(spec.overrides),
        faults=spec.faults,
    )
    tracer = trace.Tracer(prepared.scenario.sim, keep_records=True)
    tracer.meta(
        seed=spec.seed, profile=spec.profile, horizon_s=spec.horizon_s,
        campaign=spec.campaign, spec=spec.to_dict(),
    )
    with trace.installed(tracer):
        prepared.scenario.run(spec.horizon_s)
    if prepared.scenario.sim.now < spec.horizon_s:
        raise RuntimeError(
            f"kernel deadlock: clock stopped at "
            f"t={prepared.scenario.sim.now} before horizon {spec.horizon_s}"
        )
    return tracer.records


def evaluate_spec(spec: RunSpec, *, mutator: Optional[Mutator] = None) -> dict:
    """Evaluate one spec; never raises (failures become the result).

    The returned dict is JSON-serialisable and a pure function of the
    spec (plus the mutator, when given).
    """
    result = {
        "key": spec.key,
        "spec": spec.to_dict(),
        "status": "ok",
        "error": None,
        "records": 0,
        "digest": None,
        "signatures": [],
        "invariants": None,
        "violated": [],
        "failure": None,
    }
    try:
        records = _run_records(spec)
        if mutator is not None:
            mutated = mutator(records)
            if mutated is not None:
                records = list(mutated)
    except Exception as exc:  # noqa: BLE001 - the result carries the details
        result["status"] = "error"
        result["error"] = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        result["failure"] = {
            "kind": "exception",
            "detail": type(exc).__name__,
            "message": result["error"],
        }
        return result
    engine = InvariantEngine()
    engine.check(records)
    result["records"] = len(records)
    result["digest"] = trace_digest(records)
    result["signatures"] = signatures_from_records(records)
    result["invariants"] = engine.summary()
    result["violated"] = sorted(engine.by_invariant())
    if engine.violations:
        result["failure"] = {
            "kind": "invariant",
            "detail": ",".join(result["violated"]),
            "violations": len(engine.violations),
        }
    return result


def failure_id(result: dict) -> Optional[str]:
    """The stable failure-class identifier of an evaluation, if it failed.

    Shrinking preserves this exactly: a candidate reduction is only
    accepted while its evaluation fails with the same identifier.
    """
    failure = result.get("failure")
    if not failure:
        return None
    return f"{failure['kind']}:{failure['detail']}"
