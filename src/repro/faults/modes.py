"""Degraded-mode vehicle state machines.

Each machine runs NOMINAL → DEGRADED → SAFE_STOP → RECOVERING → NOMINAL,
driven by *service condition* reports (heartbeat loss, sensor-health
votes, link death from dead-peer detection).  Outage accounting and
fallback selection go through the existing
:class:`~repro.defense.recovery.ContinuityManager`, so the RecoveryPlan's
RTO objectives finally run in-sim:

* a service whose declared fallback is ``safe_stop`` drops the vehicle
  straight to SAFE_STOP;
* any other outage degrades the vehicle and starts an RTO deadline —
  if the service is still down when its RTO expires, the machine
  escalates to SAFE_STOP (the certification-relevant "fail safe within
  the declared objective" behaviour);
* when the last outage clears, the machine enters RECOVERING, runs the
  recovery hook (SecureChannel re-handshake / rejoin), and returns to
  NOMINAL after ``recovery_time_s``.

The machines only exist when a non-empty fault schedule is armed, so the
baseline simulation is untouched.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.defense.recovery import ContinuityManager
from repro.sim.engine import Event, Simulator
from repro.sim.events import EventCategory, EventLog
from repro.telemetry import tracer as trace


class VehicleMode(enum.Enum):
    """Operating mode of a worksite vehicle under the resilience machine."""

    NOMINAL = "nominal"
    DEGRADED = "degraded"
    SAFE_STOP = "safe_stop"
    RECOVERING = "recovering"


class ModeMachine:
    """One vehicle's degraded-mode state machine.

    Parameters
    ----------
    machine:
        Vehicle name (``"forwarder"``, ``"drone"``).
    continuity:
        Shared outage accountant; its :class:`RecoveryPlan` supplies the
        per-service RTOs and fallback modes.
    recovery_time_s:
        Dwell time in RECOVERING before declaring NOMINAL.
    default_rto_s:
        Escalation deadline for services the plan has no objective for.
    on_degraded / on_safe_stop / on_recovering / on_nominal:
        Vehicle-specific actions invoked on entering each mode (reduce
        speed, halt, rejoin the network, resume).
    """

    def __init__(
        self,
        machine: str,
        sim: Simulator,
        log: EventLog,
        continuity: ContinuityManager,
        *,
        recovery_time_s: float = 5.0,
        default_rto_s: float = 30.0,
        on_degraded: Optional[Callable[[], None]] = None,
        on_safe_stop: Optional[Callable[[], None]] = None,
        on_recovering: Optional[Callable[[], None]] = None,
        on_nominal: Optional[Callable[[], None]] = None,
    ) -> None:
        self.machine = machine
        self.sim = sim
        self.log = log
        self.continuity = continuity
        self.recovery_time_s = recovery_time_s
        self.default_rto_s = default_rto_s
        self.mode = VehicleMode.NOMINAL
        self._handlers: Dict[VehicleMode, Optional[Callable[[], None]]] = {
            VehicleMode.DEGRADED: on_degraded,
            VehicleMode.SAFE_STOP: on_safe_stop,
            VehicleMode.RECOVERING: on_recovering,
            VehicleMode.NOMINAL: on_nominal,
        }
        #: open outages: service -> outage start time
        self._down: Dict[str, float] = {}
        self._deadlines: Dict[str, Event] = {}
        self._recovery_event: Optional[Event] = None
        #: (time, prev, mode, reason) history for resilience evidence
        self.transitions: List[Tuple[float, str, str, str]] = []
        #: condition-onset → SAFE_STOP latencies, seconds
        self.safe_stop_latencies: List[float] = []

    # -- condition reports ---------------------------------------------------
    def service_down(
        self,
        service: str,
        cause: str = "unknown",
        fallback: Optional[str] = None,
    ) -> None:
        """Report a service outage affecting this vehicle.  Idempotent.

        ``fallback`` overrides the plan-declared fallback mode — used for
        conditions the plan has no objective for but whose safe reaction is
        known (a compute crash is an immediate safe stop).
        """
        if service in self._down:
            return
        self._down[service] = self.sim.now
        declared = self.continuity.service_down(service, cause=cause)
        fallback = fallback if fallback is not None else declared
        if self._recovery_event is not None:
            self._recovery_event.cancel()
            self._recovery_event = None
        reason = f"{service}:{cause}"
        if fallback == "safe_stop":
            self._to(VehicleMode.SAFE_STOP, reason)
            return
        if self.mode is not VehicleMode.SAFE_STOP:
            self._to(VehicleMode.DEGRADED, reason)
        objective = self.continuity.plan.objective(service)
        rto_s = objective.rto_s if objective is not None else self.default_rto_s
        self._deadlines[service] = self.sim.schedule(
            rto_s, lambda s=service: self._escalate(s)
        )

    def service_up(self, service: str) -> None:
        """Report a service restoration.  Idempotent."""
        started = self._down.pop(service, None)
        if started is None:
            return
        deadline = self._deadlines.pop(service, None)
        if deadline is not None:
            deadline.cancel()
        self.continuity.service_up(service)
        if self._down:
            return
        self._to(VehicleMode.RECOVERING, f"{service}:restored")
        self._recovery_event = self.sim.schedule(
            self.recovery_time_s, self._finish_recovery
        )

    # -- internals -----------------------------------------------------------
    def _escalate(self, service: str) -> None:
        if service in self._down and self.mode is not VehicleMode.SAFE_STOP:
            self._to(VehicleMode.SAFE_STOP, f"{service}:rto_exceeded")

    def _finish_recovery(self) -> None:
        self._recovery_event = None
        if not self._down and self.mode is VehicleMode.RECOVERING:
            self._to(VehicleMode.NOMINAL, "recovered")

    def _to(self, mode: VehicleMode, reason: str) -> None:
        if mode is self.mode:
            return
        prev = self.mode
        self.mode = mode
        now = self.sim.now
        if mode is VehicleMode.SAFE_STOP and self._down:
            self.safe_stop_latencies.append(now - min(self._down.values()))
        self.transitions.append((now, prev.value, mode.value, reason))
        self.log.emit(
            now, EventCategory.SYSTEM, "mode_transition", self.machine,
            mode=mode.value, prev=prev.value, reason=reason,
        )
        if trace.ACTIVE:
            trace.TRACER.mode_transition(
                self.machine, mode.value, prev.value, reason=reason
            )
        handler = self._handlers.get(mode)
        if handler is not None:
            handler()

    # -- evidence ------------------------------------------------------------
    @property
    def down_services(self) -> List[str]:
        return sorted(self._down)

    def summary(self) -> dict:
        return {
            "mode": self.mode.value,
            "transitions": len(self.transitions),
            "down_services": self.down_services,
            "safe_stop_latencies_s": [
                round(v, 6) for v in self.safe_stop_latencies
            ],
        }


class SensorHealthVoter:
    """Periodic sensor-health quorum vote feeding a mode machine.

    Each tick counts the healthy sensors; falling below ``quorum`` reports
    ``service`` down on the machine (degrading the vehicle), reaching it
    again reports the service up.  Only instantiated in fault mode.
    """

    def __init__(
        self,
        sim: Simulator,
        checks: Sequence[Tuple[str, Callable[[], bool]]],
        machine: ModeMachine,
        *,
        service: str = "perception",
        quorum: Optional[int] = None,
        interval_s: float = 1.0,
    ) -> None:
        from repro.comms.protocols import phase_offset

        self.sim = sim
        self.checks = list(checks)
        self.machine = machine
        self.service = service
        self.quorum = (
            quorum if quorum is not None else len(self.checks) // 2 + 1
        )
        self.votes_cast = 0
        self.last_healthy = len(self.checks)
        offset = phase_offset(
            f"sensor-voter:{machine.machine}:{service}", interval_s
        )
        self._process = sim.every(
            interval_s, self._vote, start_at=sim.now + offset
        )

    def _vote(self) -> None:
        self.votes_cast += 1
        healthy = sum(1 for _, check in self.checks if check())
        self.last_healthy = healthy
        if healthy < self.quorum:
            self.machine.service_down(self.service, cause="sensor_vote")
        else:
            self.machine.service_up(self.service)

    def stop(self) -> None:
        self._process.stop()
