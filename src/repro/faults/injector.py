"""The fault injector: arms a :class:`FaultSchedule` against a scenario.

Faults are applied through *typed hooks* on the subsystems — endpoint
power (:meth:`LinkEndpoint.power_off`), medium power sag and corruption
(:meth:`WirelessMedium.set_power_sag` / :meth:`set_corruption`), sensor
fault state (:meth:`Sensor.inject_freeze` and friends), kernel clock
domains (:meth:`Simulator.set_clock_drift`) — never by monkey-patching.

Arming a non-empty schedule also builds the resilience stack the faults
exercise: per-vehicle :class:`~repro.faults.modes.ModeMachine` wired
through :class:`~repro.defense.recovery.ContinuityManager`, hardened
link-layer retry policies with deterministic backoff jitter, dead-peer
detection, and drone↔forwarder heartbeats.  Arming an **empty** schedule
does none of that: no RNG draws, no scheduled events, no policies — the
non-perturbation guarantee the golden-trace regression test pins down.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.comms.link import RetryPolicy
from repro.defense.recovery import ContinuityManager, RecoveryPlan
from repro.faults.modes import ModeMachine, SensorHealthVoter, VehicleMode
from repro.faults.spec import FaultSchedule, FaultSpec
from repro.sim.events import EventCategory
from repro.sim.geometry import Vec2
from repro.telemetry import tracer as trace

#: reason string used for safe stops commanded by the mode machines
STOP_REASON = "mode_machine"


class FaultInjector:
    """Injects one :class:`FaultSchedule` into a composed worksite scenario.

    Parameters
    ----------
    scenario:
        A :class:`~repro.scenarios.worksite.WorksiteScenario`.
    schedule:
        The declarative fault schedule; an empty schedule arms to nothing.
    """

    def __init__(self, scenario, schedule: FaultSchedule) -> None:
        self.scenario = scenario
        self.schedule = schedule
        self.armed = False
        self.faults_injected = 0
        self.faults_cleared = 0
        self.active_faults: List[FaultSpec] = []
        self.machines: Dict[str, ModeMachine] = {}
        self.continuities: Dict[str, ContinuityManager] = {}
        self.voter: Optional[SensorHealthVoter] = None
        self._sensors: Dict[str, object] = {}
        self._corruption_rng = None

    # -- arming ---------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Resolve the schedule and install everything.  Idempotent-ish:
        call once, before running the scenario."""
        if self.armed or not self.schedule:
            return self
        self.armed = True
        self._build_resilience_stack()
        sim = self.scenario.sim
        resolved = self.schedule.resolve(self.scenario.streams)
        for fault in resolved:
            sim.schedule_at(
                max(sim.now, fault.start_s), lambda f=fault: self._inject(f)
            )
        return self

    # -- resilience stack -----------------------------------------------------
    def _build_resilience_stack(self) -> None:
        scenario = self.scenario
        sim, log = scenario.sim, scenario.log
        plan = RecoveryPlan.worksite_default()
        forwarder = scenario.forwarder
        drone = scenario.drone

        cm_fwd = ContinuityManager(plan, sim, log, scope="forwarder")
        self.continuities["forwarder"] = cm_fwd
        machine_fwd = ModeMachine(
            "forwarder", sim, log, cm_fwd,
            on_degraded=lambda: forwarder.set_speed_limit(1.0),
            on_safe_stop=lambda: forwarder.safe_stop(STOP_REASON),
            on_recovering=lambda: self._rejoin("forwarder"),
            on_nominal=lambda: self._forwarder_nominal(),
        )
        self.machines["forwarder"] = machine_fwd

        if drone is not None:
            cm_drone = ContinuityManager(plan, sim, log, scope="drone")
            self.continuities["drone"] = cm_drone
            machine_drone = ModeMachine(
                "drone", sim, log, cm_drone,
                on_safe_stop=lambda: drone.return_home(),
                on_recovering=lambda: self._rejoin("drone"),
                on_nominal=lambda: self._drone_nominal(),
            )
            self.machines["drone"] = machine_drone

        self._wire_heartbeats()
        self._harden_links()
        self._register_sensors()
        self._start_voter()

    def _forwarder_nominal(self) -> None:
        self.scenario.forwarder.clear_safe_stop(STOP_REASON)
        self.scenario.forwarder.set_speed_limit(None)

    def _drone_nominal(self) -> None:
        drone = self.scenario.drone
        if drone is not None and drone.mode.value == "grounded":
            drone.launch()

    def _wire_heartbeats(self) -> None:
        """Feed heartbeat loss into the mode machines.

        The existing forwarder↔control watchdog keeps its original
        callbacks (speed-limit fallback) and additionally reports the
        ``command_link`` service; a new drone↔forwarder pair watches the
        ``detection_relay`` / drone uplink.
        """
        from repro.comms.protocols import HeartbeatMonitor

        scenario = self.scenario
        machine_fwd = self.machines["forwarder"]
        hb = scenario.heartbeat
        prev_loss, prev_recovery = hb.on_loss, hb.on_recovery

        def on_loss() -> None:
            if prev_loss is not None:
                prev_loss()
            machine_fwd.service_down("command_link", cause="heartbeat_loss")

        def on_recovery() -> None:
            if prev_recovery is not None:
                prev_recovery()
            machine_fwd.service_up("command_link")

        hb.on_loss, hb.on_recovery = on_loss, on_recovery

        machine_drone = self.machines.get("drone")
        node_fwd = scenario.network.nodes.get("forwarder")
        node_drone = scenario.network.nodes.get("drone")
        if machine_drone is None or node_fwd is None or node_drone is None:
            return
        HeartbeatMonitor(
            node_fwd, "drone", scenario.sim, scenario.log,
            on_loss=lambda: machine_fwd.service_down(
                "detection_relay", cause="heartbeat_loss"
            ),
            on_recovery=lambda: machine_fwd.service_up("detection_relay"),
        )
        HeartbeatMonitor(
            node_drone, "forwarder", scenario.sim, scenario.log,
            on_loss=lambda: machine_drone.service_down(
                "uplink", cause="heartbeat_loss"
            ),
            on_recovery=lambda: machine_drone.service_up("uplink"),
        )

    #: which (endpoint, dead peer) pair maps to which (machine, service)
    _DEAD_PEER_SERVICES = {
        ("forwarder", "control"): ("forwarder", "command_link"),
        ("forwarder", "drone"): ("forwarder", "detection_relay"),
        ("drone", "forwarder"): ("drone", "uplink"),
    }

    def _harden_links(self) -> None:
        """Install deterministic backoff retry + dead-peer detection."""
        scenario = self.scenario
        for name, node in scenario.network.nodes.items():
            rng = scenario.streams.stream(f"faults.retry.{name}")
            node.endpoint.retry_policy = RetryPolicy.hardened(rng)
            node.endpoint.on_peer_dead = (
                lambda peer, me=name: self._on_peer_dead(me, peer)
            )

    def _on_peer_dead(self, endpoint: str, peer: str) -> None:
        mapped = self._DEAD_PEER_SERVICES.get((endpoint, peer))
        if mapped is None:
            return
        machine_name, service = mapped
        machine = self.machines.get(machine_name)
        if machine is not None:
            machine.service_down(service, cause="dead_peer")

    def _register_sensors(self) -> None:
        scenario = self.scenario
        for camera in scenario.cameras.values():
            self._sensors[camera.name] = camera
        ultrasonic = getattr(scenario.safety_function, "ultrasonic", None)
        if ultrasonic is not None:
            self._sensors[ultrasonic.name] = ultrasonic
        self._sensors[scenario.gnss.name] = scenario.gnss

    def _start_voter(self) -> None:
        scenario = self.scenario
        sim = scenario.sim
        checks = []
        camera = scenario.cameras.get("forwarder")
        if camera is not None:
            checks.append((camera.name, lambda: camera.healthy(sim.now)))
        ultrasonic = getattr(scenario.safety_function, "ultrasonic", None)
        if ultrasonic is not None:
            checks.append(
                (ultrasonic.name, lambda: ultrasonic.healthy(sim.now))
            )
        checks.append((scenario.gnss.name, scenario.gnss.healthy))
        self.voter = SensorHealthVoter(
            sim, checks, self.machines["forwarder"], service="perception"
        )

    def _rejoin(self, machine: str) -> None:
        """Re-run the SecureChannel handshakes for a recovering vehicle."""
        from repro.comms.crypto.secure_channel import HandshakeError

        network = self.scenario.network
        peers = [n for n in network.nodes if n != machine]
        for peer in peers:
            endpoint = network.nodes[peer].endpoint
            if not endpoint.powered:
                continue
            try:
                network.reestablish(machine, peer)
            except HandshakeError:
                pass

    # -- injection ------------------------------------------------------------
    def _inject(self, fault: FaultSpec) -> None:
        scenario = self.scenario
        self.faults_injected += 1
        self.active_faults.append(fault)
        scenario.log.emit(
            scenario.sim.now, EventCategory.SYSTEM, "fault_inject",
            fault.target, fault=fault.kind,
        )
        if trace.ACTIVE:
            trace.TRACER.fault_inject(fault.kind, fault.target)
        self._APPLY[fault.kind](self, fault)
        if fault.duration_s is not None:
            scenario.sim.schedule(
                fault.duration_s, lambda: self._clear(fault)
            )

    def _clear(self, fault: FaultSpec) -> None:
        scenario = self.scenario
        self.faults_cleared += 1
        if fault in self.active_faults:
            self.active_faults.remove(fault)
        scenario.log.emit(
            scenario.sim.now, EventCategory.SYSTEM, "fault_clear",
            fault.target, fault=fault.kind,
        )
        if trace.ACTIVE:
            trace.TRACER.fault_clear(fault.kind, fault.target)
        self._CLEAR[fault.kind](self, fault)

    def _sensor(self, target: str):
        sensor = self._sensors.get(target)
        if sensor is None:
            raise KeyError(
                f"unknown sensor target {target!r}; known: {sorted(self._sensors)}"
            )
        return sensor

    # node crash / restore ----------------------------------------------------
    def _apply_node_crash(self, fault: FaultSpec) -> None:
        scenario = self.scenario
        node = scenario.network.nodes.get(fault.target)
        if node is not None:
            node.endpoint.power_off()
        if fault.target == "drone" and scenario.drone is not None:
            scenario.drone.ground("fault_injection")
        machine = self.machines.get(fault.target)
        if machine is not None:
            machine.service_down(
                "compute", cause="node_crash", fallback="safe_stop"
            )

    def _clear_node_crash(self, fault: FaultSpec) -> None:
        node = self.scenario.network.nodes.get(fault.target)
        if node is not None:
            node.endpoint.power_on()
        machine = self.machines.get(fault.target)
        if machine is not None:
            machine.service_up("compute")

    # radio brownout ----------------------------------------------------------
    def _apply_radio_brownout(self, fault: FaultSpec) -> None:
        sag_db = float(fault.param("sag_db", 12.0))
        self.scenario.medium.set_power_sag(fault.target, sag_db)

    def _clear_radio_brownout(self, fault: FaultSpec) -> None:
        self.scenario.medium.clear_power_sag(fault.target)

    # sensor faults -----------------------------------------------------------
    def _apply_sensor_freeze(self, fault: FaultSpec) -> None:
        self._sensor(fault.target).inject_freeze()

    def _clear_sensor_freeze(self, fault: FaultSpec) -> None:
        self._sensor(fault.target).clear_freeze()

    def _apply_sensor_dropout(self, fault: FaultSpec) -> None:
        self._sensor(fault.target).inject_dropout()

    def _clear_sensor_dropout(self, fault: FaultSpec) -> None:
        self._sensor(fault.target).clear_dropout()

    def _apply_sensor_bias(self, fault: FaultSpec) -> None:
        sensor = self._sensor(fault.target)
        if sensor is self.scenario.gnss:
            sensor.fault_bias = Vec2(
                float(fault.param("bias_east_m", 5.0)),
                float(fault.param("bias_north_m", 0.0)),
            )
        else:
            sensor.set_fault_gain(float(fault.param("gain", 0.5)))

    def _clear_sensor_bias(self, fault: FaultSpec) -> None:
        sensor = self._sensor(fault.target)
        if sensor is self.scenario.gnss:
            sensor.fault_bias = None
        else:
            sensor.set_fault_gain(1.0)

    # clock drift -------------------------------------------------------------
    def _apply_clock_drift(self, fault: FaultSpec) -> None:
        self.scenario.sim.set_clock_drift(
            fault.target,
            offset_s=float(fault.param("offset_s", 0.5)),
            rate=float(fault.param("rate", 0.001)),
        )

    def _clear_clock_drift(self, fault: FaultSpec) -> None:
        self.scenario.sim.clear_clock_drift(fault.target)

    # packet corruption -------------------------------------------------------
    def _apply_packet_corruption(self, fault: FaultSpec) -> None:
        if self._corruption_rng is None:
            self._corruption_rng = self.scenario.streams.stream(
                "faults.corruption"
            )
        self.scenario.medium.set_corruption(
            float(fault.param("probability", 0.2)), self._corruption_rng
        )

    def _clear_packet_corruption(self, fault: FaultSpec) -> None:
        self.scenario.medium.clear_corruption()

    _APPLY: Dict[str, Callable] = {
        "node_crash": _apply_node_crash,
        "radio_brownout": _apply_radio_brownout,
        "sensor_freeze": _apply_sensor_freeze,
        "sensor_dropout": _apply_sensor_dropout,
        "sensor_bias": _apply_sensor_bias,
        "clock_drift": _apply_clock_drift,
        "packet_corruption": _apply_packet_corruption,
    }
    _CLEAR: Dict[str, Callable] = {
        "node_crash": _clear_node_crash,
        "radio_brownout": _clear_radio_brownout,
        "sensor_freeze": _clear_sensor_freeze,
        "sensor_dropout": _clear_sensor_dropout,
        "sensor_bias": _clear_sensor_bias,
        "clock_drift": _clear_clock_drift,
        "packet_corruption": _clear_packet_corruption,
    }

    # -- resilience evidence --------------------------------------------------
    def resilience_summary(self, horizon_s: Optional[float] = None) -> dict:
        """Deterministic, JSON-serialisable resilience digest.

        Closes any still-open outages at the current simulation time first
        (end-of-run accounting), so call it once, after the run.  Works
        without a tracer — sweep workers fold it into their result records.
        """
        from repro.sim.metrics import SeriesSummary

        scenario = self.scenario
        horizon = float(horizon_s if horizon_s is not None else scenario.sim.now)
        for continuity in self.continuities.values():
            continuity.close_all()

        availability: Dict[str, float] = {}
        mttr_samples: List[float] = []
        for machine_name, continuity in sorted(self.continuities.items()):
            downtime: Dict[str, float] = {}
            for outage in continuity.outages:
                duration = outage.duration or 0.0
                downtime[outage.service] = (
                    downtime.get(outage.service, 0.0) + duration
                )
                mttr_samples.append(duration)
            for service, down_s in sorted(downtime.items()):
                key = f"{machine_name}.{service}"
                availability[key] = round(
                    max(0.0, 1.0 - down_s / horizon) if horizon > 0 else 0.0, 6
                )

        latencies: List[float] = []
        for machine in self.machines.values():
            latencies.extend(machine.safe_stop_latencies)
        latency = SeriesSummary.of(latencies)
        retry_exhausted = sum(
            node.endpoint.retry_exhausted
            for node in scenario.network.nodes.values()
        )
        return {
            "faults": {
                "scheduled": len(self.schedule),
                "injected": self.faults_injected,
                "cleared": self.faults_cleared,
                "active_at_end": len(self.active_faults),
            },
            "modes": {
                name: machine.summary()
                for name, machine in sorted(self.machines.items())
            },
            "availability": availability,
            "mttr_s": (
                round(sum(mttr_samples) / len(mttr_samples), 6)
                if mttr_samples else None
            ),
            "safe_stop_latency": {
                "count": latency.count,
                "p50_s": round(latency.p50, 6) if latency.count else None,
                "p95_s": round(latency.p95, 6) if latency.count else None,
            },
            "compliance": {
                name: continuity.compliance_report()
                for name, continuity in sorted(self.continuities.items())
            },
            "delivery": {
                "retry_exhausted": retry_exhausted,
                "rejoins": scenario.network.rejoins,
            },
        }

    def final_modes(self) -> Dict[str, VehicleMode]:
        return {name: m.mode for name, m in sorted(self.machines.items())}
