"""Named fault campaigns: reusable, sweep-runnable fault schedules.

Mirrors :mod:`repro.scenarios.campaigns` for attacks: each builder maps a
``(start, duration)`` window to a :class:`FaultSchedule`, so the CLI
(``--fault-campaign``), the sweep engine (``fault_campaign`` in a sweep
spec) and tests all share one catalogue.  Builders are pure — no RNG, no
scenario access — which keeps the resulting :class:`RunSpec` primitives
stable cache keys.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.faults.spec import FaultSchedule, FaultSpec


def _crash_brownout(start: float, duration: float) -> FaultSchedule:
    """Drone compute crash overlapping a forwarder radio brownout.

    The acceptance scenario: with the drone crashed mid-mission the
    forwarder must reach SAFE_STOP within the ``detection_relay`` RTO, and
    the brownout stresses the hardened retry path at the same time.
    """
    return FaultSchedule(faults=(
        FaultSpec.make("node_crash", "drone", start, duration),
        FaultSpec.make(
            "radio_brownout", "forwarder", start + 5.0, duration,
            {"sag_db": 14.0},
        ),
    ))


def _sensor_storm(start: float, duration: float) -> FaultSchedule:
    """Staggered perception faults: freeze, dropout and bias at once."""
    third = duration / 3.0
    return FaultSchedule(faults=(
        FaultSpec.make("sensor_freeze", "cam-forwarder", start, duration),
        FaultSpec.make(
            "sensor_dropout", "us-forwarder", start + third, duration
        ),
        FaultSpec.make(
            "sensor_bias", "gnss-forwarder", start + 2.0 * third, duration,
            {"bias_east_m": 8.0, "bias_north_m": 3.0},
        ),
    ))


def _comms_chaos(start: float, duration: float) -> FaultSchedule:
    """Channel-level mayhem: corruption bursts, brownout and clock drift."""
    return FaultSchedule(faults=(
        FaultSpec.make(
            "packet_corruption", "medium", start, duration,
            {"probability": 0.25},
        ),
        FaultSpec.make(
            "radio_brownout", "drone", start + 2.0, duration,
            {"sag_db": 10.0},
        ),
        FaultSpec.make(
            "clock_drift", "forwarder", start, duration,
            {"offset_s": 0.5, "rate": 0.002},
        ),
    ))


FAULT_CAMPAIGNS: Dict[str, Callable[[float, float], FaultSchedule]] = {
    "crash_brownout": _crash_brownout,
    "sensor_storm": _sensor_storm,
    "comms_chaos": _comms_chaos,
}


def build_fault_campaign(
    name: str, *, start: float = 20.0, duration: float = 30.0
) -> FaultSchedule:
    """Build a named campaign's schedule for the given activation window."""
    try:
        builder = FAULT_CAMPAIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault campaign {name!r}; "
            f"known: {', '.join(sorted(FAULT_CAMPAIGNS))}"
        ) from None
    return builder(float(start), float(duration))
