"""Deterministic fault injection and degraded-mode resilience.

The paper's CE-certification argument needs evidence that the worksite
stays safe under *component failures*, not just attacks: Section III's
SOTIF triggering conditions and the Table I continuity requirements both
describe non-malicious outages.  This package supplies the failure
dimension:

* :mod:`repro.faults.spec` — declarative :class:`FaultSpec` /
  :class:`FaultSchedule` with deterministic activation windows;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that arms a
  schedule against a composed scenario through typed hooks (never
  monkey-patching) and builds the resilience stack;
* :mod:`repro.faults.modes` — NOMINAL → DEGRADED → SAFE_STOP → RECOVERING
  vehicle mode machines wired through the existing
  :class:`~repro.defense.recovery.ContinuityManager`;
* :mod:`repro.faults.campaigns` — named, sweep-runnable fault campaigns.

Non-perturbation contract: arming an *empty* schedule changes nothing —
no RNG draws, no scheduled events, no endpoint policies — so a run with
no faults stays byte-identical to one without the injector at all.
"""

from repro.faults.campaigns import (
    FAULT_CAMPAIGNS,
    build_fault_campaign,
)
from repro.faults.injector import FaultInjector
from repro.faults.modes import ModeMachine, SensorHealthVoter, VehicleMode
from repro.faults.spec import (
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
    load_fault_schedule,
    schedule_from_primitives,
)

__all__ = [
    "FAULT_CAMPAIGNS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "ModeMachine",
    "SensorHealthVoter",
    "VehicleMode",
    "build_fault_campaign",
    "load_fault_schedule",
    "schedule_from_primitives",
]
