"""Declarative fault specifications and schedules.

A :class:`FaultSpec` names one fault — its kind, target, activation window
and parameters — using only primitive values, mirroring
:class:`repro.runner.spec.RunSpec`: schedules pickle across process
boundaries, serialise to canonical JSON and survive the sweep cache
unchanged.  A :class:`FaultSchedule` is an ordered tuple of specs plus an
optional deterministic start jitter drawn from the scenario's own RNG
streams, so the *same seed always produces the same fault timeline*.

Schedules load from TOML files (``[[fault]]`` tables, see
``examples/faults_storm.toml``) or from primitive tuples embedded in a
:class:`~repro.runner.spec.RunSpec`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.sim.rng import RngStreams

#: the fault taxonomy (see docs/resilience.md for semantics per kind)
FAULT_KINDS: Tuple[str, ...] = (
    "node_crash",          # compute/radio outage of a whole node
    "radio_brownout",      # TX power sag on one endpoint
    "sensor_freeze",       # sensor repeats stale data
    "sensor_dropout",      # sensor produces nothing
    "sensor_bias",         # systematic output offset / quality loss
    "clock_drift",         # node-local clock offset and drift rate
    "packet_corruption",   # in-flight frame corruption bursts
)

#: named RNG stream that activation jitter is drawn from
JITTER_STREAM = "faults.schedule"


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    target:
        What the fault hits — a node name (``"drone"``), a sensor name
        (``"cam-forwarder"``), or ``"medium"`` for channel-wide faults.
    start_s:
        Activation time on the simulation clock.
    duration_s:
        How long the fault persists; ``None`` means it never clears.
    params:
        Kind-specific knobs as a sorted tuple of ``(key, value)`` pairs
        (kept primitive and hashable for the sweep cache).
    """

    kind: str
    target: str
    start_s: float
    duration_s: Optional[float] = None
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.start_s < 0.0:
            raise ValueError(f"fault start must be >= 0, got {self.start_s}")
        if self.duration_s is not None and self.duration_s <= 0.0:
            raise ValueError(
                f"fault duration must be positive, got {self.duration_s}"
            )

    @property
    def end_s(self) -> Optional[float]:
        if self.duration_s is None:
            return None
        return self.start_s + self.duration_s

    def param(self, name: str, default: object = None) -> object:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def param_dict(self) -> Dict[str, object]:
        return {k: v for k, v in self.params}

    @classmethod
    def make(
        cls,
        kind: str,
        target: str,
        start_s: float,
        duration_s: Optional[float] = None,
        params: Optional[Mapping[str, object]] = None,
    ) -> "FaultSpec":
        return cls(
            kind=str(kind),
            target=str(target),
            start_s=float(start_s),
            duration_s=None if duration_s is None else float(duration_s),
            params=_freeze_params(params),
        )

    def to_primitives(self) -> tuple:
        """``(kind, target, start, duration, params)`` for RunSpec embedding."""
        return (
            self.kind, self.target, self.start_s, self.duration_s,
            tuple((k, v) for k, v in self.params),
        )

    @classmethod
    def from_primitives(cls, data: Sequence) -> "FaultSpec":
        kind, target, start, duration, params = data
        return cls.make(kind, target, start, duration, dict(params))


def _freeze_params(params: Optional[Mapping[str, object]]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted((str(k), v) for k, v in dict(params or {}).items()))


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of faults with optional deterministic start jitter.

    ``jitter_s`` > 0 offsets every fault's start by a uniform draw from the
    scenario RNG stream :data:`JITTER_STREAM` — one draw per fault, in
    schedule order, so the realised timeline is a pure function of the
    master seed.  A schedule with ``jitter_s == 0`` makes no draws at all.
    """

    faults: Tuple[FaultSpec, ...] = ()
    jitter_s: float = 0.0

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def resolve(self, streams: RngStreams) -> Tuple[FaultSpec, ...]:
        """The realised fault list, jitter applied from the scenario RNG."""
        if self.jitter_s <= 0.0 or not self.faults:
            return self.faults
        rng = streams.stream(JITTER_STREAM)
        return tuple(
            replace(fault, start_s=fault.start_s + rng.uniform(0.0, self.jitter_s))
            for fault in self.faults
        )

    @property
    def last_end_s(self) -> Optional[float]:
        """Latest fault end (jitter excluded); None if any fault is open-ended."""
        latest = 0.0
        for fault in self.faults:
            if fault.end_s is None:
                return None
            latest = max(latest, fault.end_s)
        return latest

    def to_primitives(self) -> tuple:
        return (
            tuple(fault.to_primitives() for fault in self.faults),
            self.jitter_s,
        )

    @property
    def key(self) -> str:
        """Stable content hash (used in run labels and result stores)."""
        import hashlib

        payload = json.dumps(
            [list(f.to_primitives()) for f in self.faults] + [self.jitter_s],
            sort_keys=True, separators=(",", ":"), default=list,
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:12]


def schedule_from_primitives(data: Sequence, jitter_s: float = 0.0) -> FaultSchedule:
    """Rebuild a schedule from ``FaultSpec.to_primitives`` tuples."""
    return FaultSchedule(
        faults=tuple(FaultSpec.from_primitives(item) for item in data),
        jitter_s=float(jitter_s),
    )


def schedule_from_mapping(data: Mapping) -> FaultSchedule:
    """Build a schedule from a parsed TOML/JSON mapping."""
    known = {"fault", "jitter_s"}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown fault schedule keys {unknown}; known: {sorted(known)}"
        )
    faults = []
    for entry in data.get("fault", ()):
        entry = dict(entry)
        entry_known = {"kind", "target", "start", "duration", "params"}
        entry_unknown = sorted(set(entry) - entry_known)
        if entry_unknown:
            raise ValueError(
                f"unknown [[fault]] keys {entry_unknown}; "
                f"known: {sorted(entry_known)}"
            )
        faults.append(FaultSpec.make(
            entry["kind"],
            entry["target"],
            entry.get("start", 0.0),
            entry.get("duration"),
            entry.get("params"),
        ))
    return FaultSchedule(
        faults=tuple(faults), jitter_s=float(data.get("jitter_s", 0.0))
    )


def load_fault_schedule(path: str) -> FaultSchedule:
    """Load a fault schedule from a TOML (or JSON) file."""
    raw = Path(path).read_bytes()
    if str(path).endswith(".json"):
        data = json.loads(raw.decode("utf-8"))
    else:
        import tomllib

        data = tomllib.loads(raw.decode("utf-8"))
    return schedule_from_mapping(data)
