"""STRIDE threat enumeration over an item model.

Systematically derives threat scenarios from the item's structure: each
asset's protected properties map to the STRIDE categories that violate them,
and each category maps to the concrete attack types available against the
asset's carrier (channels ⇒ radio/network attacks, sensors ⇒ sensor attacks,
platforms ⇒ firmware attacks).  The output plugs straight into the TARA.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.risk.model import (
    Asset,
    CybersecurityProperty,
    DamageScenario,
    ItemModel,
    ThreatScenario,
)

#: STRIDE category -> violated property
STRIDE_VIOLATES: Dict[str, CybersecurityProperty] = {
    "spoofing": CybersecurityProperty.INTEGRITY,
    "tampering": CybersecurityProperty.INTEGRITY,
    "repudiation": CybersecurityProperty.INTEGRITY,
    "information_disclosure": CybersecurityProperty.CONFIDENTIALITY,
    "denial_of_service": CybersecurityProperty.AVAILABILITY,
    "elevation_of_privilege": CybersecurityProperty.INTEGRITY,
}

#: (asset kind, STRIDE category) -> candidate attack types
_ATTACKS_BY_KIND: Dict[Tuple[str, str], List[str]] = {
    ("channel", "spoofing"): ["message_injection"],
    ("channel", "tampering"): ["message_tampering", "message_replay"],
    ("channel", "information_disclosure"): ["eavesdropping"],
    ("channel", "denial_of_service"): ["rf_jamming", "wifi_deauth",
                                       "frequency_interference"],
    ("sensor.gnss", "spoofing"): ["gnss_spoofing"],
    ("sensor.gnss", "denial_of_service"): ["gnss_jamming"],
    ("sensor.camera", "tampering"): ["camera_hijack"],
    ("sensor.camera", "denial_of_service"): ["camera_blinding"],
    ("sensor.camera", "information_disclosure"): ["camera_hijack"],
    ("platform", "tampering"): ["firmware_tampering"],
    ("platform", "elevation_of_privilege"): ["credential_bruteforce"],
    ("data", "information_disclosure"): ["eavesdropping"],
    ("data", "tampering"): ["message_tampering"],
}


def asset_kind(asset: Asset) -> str:
    """Infer the asset kind from its id prefix (``ch-``, ``gnss-``, ...)."""
    prefix = asset.asset_id.split("-", 1)[0].lower()
    mapping = {
        "ch": "channel",
        "gnss": "sensor.gnss",
        "cam": "sensor.camera",
        "fw": "platform",
        "data": "data",
    }
    return mapping.get(prefix, "platform")


def enumerate_threats(
    item: ItemModel,
    *,
    id_prefix: str = "TS",
) -> List[ThreatScenario]:
    """Derive threat scenarios for every damage scenario of the item.

    For each damage scenario, every STRIDE category violating the scenario's
    property yields one threat per applicable attack type.
    """
    threats: List[ThreatScenario] = []
    counter = 0
    for damage in item.damage_scenarios:
        asset = item.asset(damage.asset_id)
        kind = asset_kind(asset)
        for stride, violated in STRIDE_VIOLATES.items():
            if violated is not damage.violated_property:
                continue
            attack_types = _ATTACKS_BY_KIND.get((kind, stride), [])
            for attack_type in attack_types:
                counter += 1
                threats.append(
                    ThreatScenario(
                        threat_id=f"{id_prefix}-{counter:03d}",
                        damage_scenario_id=damage.scenario_id,
                        stride=stride,
                        attack_type=attack_type,
                        description=(
                            f"{stride.replace('_', ' ')} of {asset.name} via "
                            f"{attack_type.replace('_', ' ')}"
                        ),
                    )
                )
    return threats


def coverage_by_stride(threats: Sequence[ThreatScenario]) -> Dict[str, int]:
    """Count of enumerated threats per STRIDE category."""
    counts: Dict[str, int] = {category: 0 for category in STRIDE_VIOLATES}
    for threat in threats:
        counts[threat.stride] = counts.get(threat.stride, 0) + 1
    return counts
