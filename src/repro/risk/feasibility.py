"""Attack-feasibility rating via attack potential (ISO/SAE 21434 Annex G).

The attack-potential approach of ISO 18045: each attack (path) is scored on
five factors — elapsed time, specialist expertise, knowledge of the item,
window of opportunity, equipment — whose points sum to the attack potential.
Higher potential required ⇒ lower feasibility for the attacker population.

Countermeasures raise the required potential: the treatment step adds each
deployed measure's ``feasibility_increase`` (scaled) to the relevant factor
sum and re-rates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict


class ElapsedTime(enum.IntEnum):
    """Time needed to identify and exploit (points)."""

    ONE_DAY = 0
    ONE_WEEK = 1
    ONE_MONTH = 4
    SIX_MONTHS = 17
    BEYOND_SIX_MONTHS = 19


class Expertise(enum.IntEnum):
    """Specialist expertise required (points)."""

    LAYMAN = 0
    PROFICIENT = 3
    EXPERT = 6
    MULTIPLE_EXPERTS = 8


class Knowledge(enum.IntEnum):
    """Knowledge of the item required (points)."""

    PUBLIC = 0
    RESTRICTED = 3
    CONFIDENTIAL = 7
    STRICTLY_CONFIDENTIAL = 11


class WindowOfOpportunity(enum.IntEnum):
    """Access window required (points)."""

    UNLIMITED = 0
    EASY = 1
    MODERATE = 4
    DIFFICULT = 10


class Equipment(enum.IntEnum):
    """Equipment required (points)."""

    STANDARD = 0
    SPECIALIZED = 4
    BESPOKE = 7
    MULTIPLE_BESPOKE = 9


class FeasibilityRating(enum.IntEnum):
    """Attack feasibility, ordered so higher = easier attack."""

    VERY_LOW = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3


@dataclass(frozen=True)
class AttackPotential:
    """The five-factor attack-potential vector."""

    elapsed_time: ElapsedTime = ElapsedTime.ONE_WEEK
    expertise: Expertise = Expertise.PROFICIENT
    knowledge: Knowledge = Knowledge.PUBLIC
    window: WindowOfOpportunity = WindowOfOpportunity.EASY
    equipment: Equipment = Equipment.STANDARD
    extra_points: int = 0  # countermeasure-induced hardening

    def points(self) -> int:
        return (
            int(self.elapsed_time)
            + int(self.expertise)
            + int(self.knowledge)
            + int(self.window)
            + int(self.equipment)
            + self.extra_points
        )

    def hardened(self, additional_points: int) -> "AttackPotential":
        """The potential after deploying countermeasures."""
        if additional_points < 0:
            raise ValueError("hardening points must be non-negative")
        return replace(self, extra_points=self.extra_points + additional_points)


def rate_feasibility(potential: AttackPotential) -> FeasibilityRating:
    """Map attack-potential points to the feasibility rating (Annex G bands)."""
    points = potential.points()
    if points <= 13:
        return FeasibilityRating.HIGH
    if points <= 19:
        return FeasibilityRating.MEDIUM
    if points <= 24:
        return FeasibilityRating.LOW
    return FeasibilityRating.VERY_LOW


#: default attack-potential vectors per attack type, reflecting the survey's
#: qualitative difficulty ordering (jamming is cheap; GNSS spoofing needs
#: specialised equipment; firmware tampering needs physical access + expertise)
DEFAULT_POTENTIALS: Dict[str, AttackPotential] = {
    "rf_jamming": AttackPotential(
        ElapsedTime.ONE_DAY, Expertise.LAYMAN, Knowledge.PUBLIC,
        WindowOfOpportunity.EASY, Equipment.STANDARD,
    ),
    "frequency_interference": AttackPotential(
        ElapsedTime.ONE_DAY, Expertise.LAYMAN, Knowledge.PUBLIC,
        WindowOfOpportunity.EASY, Equipment.STANDARD,
    ),
    "wifi_deauth": AttackPotential(
        ElapsedTime.ONE_DAY, Expertise.PROFICIENT, Knowledge.PUBLIC,
        WindowOfOpportunity.EASY, Equipment.STANDARD,
    ),
    "gnss_jamming": AttackPotential(
        ElapsedTime.ONE_DAY, Expertise.PROFICIENT, Knowledge.PUBLIC,
        WindowOfOpportunity.EASY, Equipment.SPECIALIZED,
    ),
    "gnss_spoofing": AttackPotential(
        ElapsedTime.ONE_WEEK, Expertise.EXPERT, Knowledge.PUBLIC,
        WindowOfOpportunity.MODERATE, Equipment.SPECIALIZED,
    ),
    "camera_blinding": AttackPotential(
        ElapsedTime.ONE_DAY, Expertise.LAYMAN, Knowledge.PUBLIC,
        WindowOfOpportunity.MODERATE, Equipment.STANDARD,
    ),
    "camera_hijack": AttackPotential(
        ElapsedTime.ONE_MONTH, Expertise.EXPERT, Knowledge.RESTRICTED,
        WindowOfOpportunity.MODERATE, Equipment.SPECIALIZED,
    ),
    "message_injection": AttackPotential(
        ElapsedTime.ONE_WEEK, Expertise.PROFICIENT, Knowledge.RESTRICTED,
        WindowOfOpportunity.EASY, Equipment.STANDARD,
    ),
    "message_replay": AttackPotential(
        ElapsedTime.ONE_WEEK, Expertise.PROFICIENT, Knowledge.RESTRICTED,
        WindowOfOpportunity.EASY, Equipment.STANDARD,
    ),
    "message_tampering": AttackPotential(
        ElapsedTime.ONE_WEEK, Expertise.EXPERT, Knowledge.RESTRICTED,
        WindowOfOpportunity.MODERATE, Equipment.SPECIALIZED,
    ),
    "eavesdropping": AttackPotential(
        ElapsedTime.ONE_DAY, Expertise.PROFICIENT, Knowledge.PUBLIC,
        WindowOfOpportunity.EASY, Equipment.STANDARD,
    ),
    "firmware_tampering": AttackPotential(
        ElapsedTime.ONE_MONTH, Expertise.EXPERT, Knowledge.CONFIDENTIAL,
        WindowOfOpportunity.DIFFICULT, Equipment.SPECIALIZED,
    ),
    "credential_bruteforce": AttackPotential(
        ElapsedTime.ONE_WEEK, Expertise.PROFICIENT, Knowledge.PUBLIC,
        WindowOfOpportunity.EASY, Equipment.STANDARD,
    ),
}


def default_potential(attack_type: str) -> AttackPotential:
    """The default potential for an attack type (generic fallback)."""
    return DEFAULT_POTENTIALS.get(
        attack_type,
        AttackPotential(
            ElapsedTime.ONE_MONTH, Expertise.EXPERT, Knowledge.RESTRICTED,
            WindowOfOpportunity.MODERATE, Equipment.SPECIALIZED,
        ),
    )
