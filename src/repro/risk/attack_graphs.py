"""Attack-path graph analysis over the item model (networkx).

Builds a directed graph whose nodes are attacker states (entry points,
compromised components, violated assets) and whose edges are attack actions
weighted by attack-potential points.  Supports:

* enumerating attack paths from entry points to an asset;
* the minimum-effort path (the feasibility driver per 21434);
* countermeasure cut analysis: which deployed measures sever all paths
  below an effort budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.defense.countermeasures import CountermeasureCatalog
from repro.risk.feasibility import default_potential


@dataclass(frozen=True)
class AttackEdge:
    """One attack action between attacker states."""

    source: str
    target: str
    attack_type: str
    description: str = ""


class AttackGraph:
    """A weighted attack graph.

    Node conventions: ``entry:*`` for attacker entry points, ``asset:*`` for
    asset-violation goals, anything else is an intermediate state.
    """

    def __init__(self) -> None:
        self.graph = nx.DiGraph()

    def add_entry(self, name: str) -> str:
        node = f"entry:{name}"
        self.graph.add_node(node, kind="entry")
        return node

    def add_state(self, name: str) -> str:
        self.graph.add_node(name, kind="state")
        return name

    def add_goal(self, asset_id: str) -> str:
        node = f"asset:{asset_id}"
        self.graph.add_node(node, kind="goal")
        return node

    def add_action(
        self, source: str, target: str, attack_type: str, description: str = ""
    ) -> None:
        """Add an attack action edge weighted by its default potential."""
        effort = default_potential(attack_type).points() + 1  # >= 1 for pathing
        self.graph.add_edge(
            source, target,
            attack_type=attack_type,
            description=description,
            effort=effort,
        )

    # -- queries ---------------------------------------------------------------
    @property
    def entries(self) -> List[str]:
        return [n for n, d in self.graph.nodes(data=True) if d.get("kind") == "entry"]

    @property
    def goals(self) -> List[str]:
        return [n for n, d in self.graph.nodes(data=True) if d.get("kind") == "goal"]

    def paths_to(self, goal: str, *, cutoff: int = 8) -> List[List[str]]:
        """All simple attack paths from any entry to ``goal``."""
        paths: List[List[str]] = []
        for entry in self.entries:
            try:
                found = nx.all_simple_paths(self.graph, entry, goal, cutoff=cutoff)
                paths.extend(list(found))
            except nx.NodeNotFound:
                continue
        return paths

    def min_effort_path(self, goal: str) -> Optional[Tuple[List[str], int]]:
        """The least-total-effort path from any entry to ``goal``."""
        best: Optional[Tuple[List[str], int]] = None
        for entry in self.entries:
            try:
                length, path = nx.single_source_dijkstra(
                    self.graph, entry, goal, weight="effort"
                )
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
            if best is None or length < best[1]:
                best = (path, int(length))
        return best

    def path_attack_types(self, path: Sequence[str]) -> List[str]:
        types = []
        for a, b in zip(path, path[1:]):
            types.append(self.graph.edges[a, b]["attack_type"])
        return types

    def severed_by(
        self, goal: str, deployed_measures: Sequence[str],
        catalog: Optional[CountermeasureCatalog] = None,
        *,
        min_increase: int = 2,
    ) -> bool:
        """True if the deployed measures break every path to ``goal``.

        An edge is considered broken when some deployed measure mitigates its
        attack type with ``feasibility_increase >= min_increase``.
        """
        catalog = catalog or CountermeasureCatalog()
        blocked_types = set()
        for name in deployed_measures:
            try:
                measure = catalog.get(name)
            except KeyError:
                continue
            if measure.feasibility_increase >= min_increase:
                blocked_types |= measure.mitigates
        pruned = nx.DiGraph()
        pruned.add_nodes_from(self.graph.nodes(data=True))
        for a, b, data in self.graph.edges(data=True):
            if data["attack_type"] not in blocked_types:
                pruned.add_edge(a, b, **data)
        for entry in self.entries:
            if pruned.has_node(goal) and nx.has_path(pruned, entry, goal):
                return False
        return True

    def critical_attack_types(self, goal: str) -> List[str]:
        """Attack types appearing on every entry→goal path (choke points)."""
        paths = self.paths_to(goal)
        if not paths:
            return []
        common = set(self.path_attack_types(paths[0]))
        for path in paths[1:]:
            common &= set(self.path_attack_types(path))
        return sorted(common)
