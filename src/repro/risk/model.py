"""TARA work products: item model, assets, damage and threat scenarios.

Follows the work-product structure of ISO/SAE 21434 clause 15: item
definition → asset identification → damage scenarios → threat scenarios →
attack paths.  The vocabulary for attack actions is shared with
:mod:`repro.attacks` so assessments bind to executable attacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.risk.impact import SfopImpact


class CybersecurityProperty(enum.Enum):
    """The protected property of an asset (C-I-A)."""

    CONFIDENTIALITY = "confidentiality"
    INTEGRITY = "integrity"
    AVAILABILITY = "availability"


@dataclass(frozen=True)
class Asset:
    """A cybersecurity asset of the item.

    Attributes
    ----------
    asset_id:
        Stable identifier.
    name:
        Human-readable name.
    system:
        The constituent system carrying the asset (forwarder, drone, ...).
    properties:
        Cybersecurity properties whose violation causes damage.
    safety_related:
        True when a violation can propagate into a safety hazard (the
        interplay flag linking to :mod:`repro.safety.hazards`).
    """

    asset_id: str
    name: str
    system: str
    properties: Tuple[CybersecurityProperty, ...]
    safety_related: bool = False


@dataclass(frozen=True)
class DamageScenario:
    """Adverse consequence of compromising an asset property."""

    scenario_id: str
    asset_id: str
    violated_property: CybersecurityProperty
    description: str
    impact: SfopImpact
    linked_hazard: Optional[str] = None  # hazard_id when safety-coupled


@dataclass(frozen=True)
class AttackStep:
    """One step of an attack path."""

    description: str
    attack_type: str  # repro.attacks vocabulary, or a free-form action
    target: str       # node or channel attacked


@dataclass(frozen=True)
class AttackPath:
    """An ordered realisation of a threat scenario."""

    path_id: str
    steps: Tuple[AttackStep, ...]

    @property
    def attack_types(self) -> List[str]:
        return [step.attack_type for step in self.steps]


@dataclass(frozen=True)
class ThreatScenario:
    """A potential cause of a damage scenario.

    Attributes
    ----------
    threat_id:
        Stable identifier.
    damage_scenario_id:
        The damage scenario realised.
    stride:
        STRIDE category of the threat action.
    attack_type:
        Principal attack class (for countermeasure selection).
    description:
        The threat action.
    attack_paths:
        Known realisations; feasibility is rated per path and the scenario
        takes the *maximum* (easiest path wins, per 21434).
    """

    threat_id: str
    damage_scenario_id: str
    stride: str
    attack_type: str
    description: str
    attack_paths: Tuple[AttackPath, ...] = ()


@dataclass
class ItemModel:
    """The item under assessment: systems, channels, assets, scenarios.

    The worksite item model is built by
    :func:`repro.scenarios.worksite.worksite_item_model`; custom models
    follow the same shape.
    """

    name: str
    systems: List[str] = field(default_factory=list)
    channels: List[Tuple[str, str, str]] = field(default_factory=list)
    # (channel name, endpoint A, endpoint B)
    assets: List[Asset] = field(default_factory=list)
    damage_scenarios: List[DamageScenario] = field(default_factory=list)
    threat_scenarios: List[ThreatScenario] = field(default_factory=list)

    def asset(self, asset_id: str) -> Asset:
        for asset in self.assets:
            if asset.asset_id == asset_id:
                return asset
        raise KeyError(f"unknown asset {asset_id!r}")

    def damage_scenario(self, scenario_id: str) -> DamageScenario:
        for scenario in self.damage_scenarios:
            if scenario.scenario_id == scenario_id:
                return scenario
        raise KeyError(f"unknown damage scenario {scenario_id!r}")

    def scenarios_for_asset(self, asset_id: str) -> List[DamageScenario]:
        return [d for d in self.damage_scenarios if d.asset_id == asset_id]

    def threats_for_damage(self, scenario_id: str) -> List[ThreatScenario]:
        return [t for t in self.threat_scenarios if t.damage_scenario_id == scenario_id]

    def safety_related_assets(self) -> List[Asset]:
        return [a for a in self.assets if a.safety_related]

    def validate(self) -> List[str]:
        """Consistency check; returns a list of problems (empty = valid)."""
        problems = []
        asset_ids = {a.asset_id for a in self.assets}
        if len(asset_ids) != len(self.assets):
            problems.append("duplicate asset ids")
        damage_ids = set()
        for scenario in self.damage_scenarios:
            if scenario.scenario_id in damage_ids:
                problems.append(f"duplicate damage scenario {scenario.scenario_id}")
            damage_ids.add(scenario.scenario_id)
            if scenario.asset_id not in asset_ids:
                problems.append(
                    f"damage scenario {scenario.scenario_id} references unknown "
                    f"asset {scenario.asset_id}"
                )
        threat_ids = set()
        for threat in self.threat_scenarios:
            if threat.threat_id in threat_ids:
                problems.append(f"duplicate threat scenario {threat.threat_id}")
            threat_ids.add(threat.threat_id)
            if threat.damage_scenario_id not in damage_ids:
                problems.append(
                    f"threat {threat.threat_id} references unknown damage "
                    f"scenario {threat.damage_scenario_id}"
                )
        system_set = set(self.systems)
        for asset in self.assets:
            if asset.system not in system_set:
                problems.append(
                    f"asset {asset.asset_id} on unknown system {asset.system}"
                )
        for name, a, b in self.channels:
            if a not in system_set or b not in system_set:
                problems.append(f"channel {name} endpoint not in systems")
        return problems
