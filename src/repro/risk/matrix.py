"""The risk-value matrix (ISO/SAE 21434 clause 15.8).

Risk value on the 1–5 scale from impact (overall SFOP rating) and attack
feasibility, following the informative matrix of the standard's Annex H:
risk grows with both coordinates; severe-impact/high-feasibility is 5,
negligible-impact anything is 1.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.risk.feasibility import FeasibilityRating
from repro.risk.impact import ImpactRating

#: (impact, feasibility) -> risk value 1..5
_MATRIX: Dict[Tuple[ImpactRating, FeasibilityRating], int] = {
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.VERY_LOW): 1,
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.LOW): 1,
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.MEDIUM): 1,
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.HIGH): 1,
    (ImpactRating.MODERATE, FeasibilityRating.VERY_LOW): 1,
    (ImpactRating.MODERATE, FeasibilityRating.LOW): 2,
    (ImpactRating.MODERATE, FeasibilityRating.MEDIUM): 2,
    (ImpactRating.MODERATE, FeasibilityRating.HIGH): 3,
    (ImpactRating.MAJOR, FeasibilityRating.VERY_LOW): 2,
    (ImpactRating.MAJOR, FeasibilityRating.LOW): 2,
    (ImpactRating.MAJOR, FeasibilityRating.MEDIUM): 3,
    (ImpactRating.MAJOR, FeasibilityRating.HIGH): 4,
    (ImpactRating.SEVERE, FeasibilityRating.VERY_LOW): 2,
    (ImpactRating.SEVERE, FeasibilityRating.LOW): 3,
    (ImpactRating.SEVERE, FeasibilityRating.MEDIUM): 4,
    (ImpactRating.SEVERE, FeasibilityRating.HIGH): 5,
}


def risk_value(impact: ImpactRating, feasibility: FeasibilityRating) -> int:
    """Risk value (1 = lowest, 5 = highest)."""
    return _MATRIX[(impact, feasibility)]


def risk_label(value: int) -> str:
    """Qualitative label for a risk value."""
    labels = {1: "very low", 2: "low", 3: "medium", 4: "high", 5: "critical"}
    if value not in labels:
        raise ValueError(f"risk value must be 1..5, got {value}")
    return labels[value]
