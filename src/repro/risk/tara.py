"""The assembled TARA pipeline (ISO/SAE 21434 clause 15).

Given an :class:`~repro.risk.model.ItemModel`, the pipeline rates every
threat scenario:

1. impact — from the damage scenario's SFOP ratings;
2. feasibility — from the easiest attack path's attack potential (or the
   attack type's default potential when no path is modelled), optionally
   hardened by deployed countermeasures;
3. risk value — from the matrix;
4. CAL — for development assurance.

Environmental modifiers let the forestry characteristics (Table I) reshape
feasibility and impact — that is the mechanism behind the E-T1 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.defense.countermeasures import CountermeasureCatalog
from repro.risk.cal import CaLevel, determine_cal
from repro.risk.feasibility import (
    AttackPotential,
    FeasibilityRating,
    default_potential,
    rate_feasibility,
)
from repro.risk.impact import ImpactRating, SfopImpact
from repro.risk.matrix import risk_label, risk_value
from repro.risk.model import ItemModel, ThreatScenario


@dataclass(frozen=True)
class ThreatAssessment:
    """The assessment of one threat scenario."""

    threat_id: str
    damage_scenario_id: str
    attack_type: str
    impact: ImpactRating
    feasibility: FeasibilityRating
    risk_value: int
    cal: CaLevel
    safety_coupled: bool
    potential_points: int

    @property
    def risk_label(self) -> str:
        return risk_label(self.risk_value)


@dataclass
class TaraResult:
    """The full TARA output for an item."""

    item_name: str
    assessments: List[ThreatAssessment] = field(default_factory=list)

    def by_threat(self, threat_id: str) -> ThreatAssessment:
        for assessment in self.assessments:
            if assessment.threat_id == threat_id:
                return assessment
        raise KeyError(f"no assessment for threat {threat_id!r}")

    def max_risk(self) -> int:
        return max((a.risk_value for a in self.assessments), default=0)

    def mean_risk(self) -> float:
        if not self.assessments:
            return 0.0
        return sum(a.risk_value for a in self.assessments) / len(self.assessments)

    def above(self, threshold: int) -> List[ThreatAssessment]:
        """Assessments whose risk value exceeds the acceptance threshold."""
        return [a for a in self.assessments if a.risk_value > threshold]

    def safety_coupled(self) -> List[ThreatAssessment]:
        return [a for a in self.assessments if a.safety_coupled]

    def risk_profile(self) -> Dict[int, int]:
        """Histogram of risk values."""
        profile: Dict[int, int] = {v: 0 for v in range(1, 6)}
        for assessment in self.assessments:
            profile[assessment.risk_value] += 1
        return profile


class Tara:
    """The TARA engine.

    Parameters
    ----------
    item:
        The item model under assessment.
    catalog:
        Countermeasure catalog used to harden feasibility for deployed
        measures.
    deployed_measures:
        Names of deployed countermeasures.
    feasibility_modifier:
        Optional hook ``(threat, potential) -> potential`` applied before
        rating — the entry point for forestry-characteristic modifiers.
    impact_modifier:
        Optional hook ``(threat, impact) -> impact`` for the same purpose.
    """

    #: points of attack-potential hardening per unit of a countermeasure's
    #: ``feasibility_increase`` (calibrated so one strong measure moves the
    #: rating roughly one band)
    HARDENING_SCALE = 3

    def __init__(
        self,
        item: ItemModel,
        *,
        catalog: Optional[CountermeasureCatalog] = None,
        deployed_measures: Sequence[str] = (),
        feasibility_modifier: Optional[
            Callable[[ThreatScenario, AttackPotential], AttackPotential]
        ] = None,
        impact_modifier: Optional[
            Callable[[ThreatScenario, SfopImpact], SfopImpact]
        ] = None,
    ) -> None:
        problems = item.validate()
        if problems:
            raise ValueError(f"invalid item model: {problems}")
        self.item = item
        self.catalog = catalog or CountermeasureCatalog()
        self.deployed_measures = list(deployed_measures)
        self.feasibility_modifier = feasibility_modifier
        self.impact_modifier = impact_modifier

    def _hardening_points(self, attack_type: str) -> int:
        points = 0
        for name in self.deployed_measures:
            try:
                measure = self.catalog.get(name)
            except KeyError:
                continue
            if attack_type in measure.mitigates:
                points += measure.feasibility_increase * self.HARDENING_SCALE
        return points

    def _scenario_potential(self, threat: ThreatScenario) -> AttackPotential:
        """Easiest attack path's potential (max feasibility = min points)."""
        candidates: List[AttackPotential] = []
        for path in threat.attack_paths:
            # a path is as hard as its hardest step, combined additively over
            # distinct skill requirements: approximate by the max step points
            step_potentials = [default_potential(s.attack_type) for s in path.steps]
            hardest = max(step_potentials, key=lambda p: p.points())
            candidates.append(hardest)
        if not candidates:
            candidates.append(default_potential(threat.attack_type))
        return min(candidates, key=lambda p: p.points())

    def assess(self) -> TaraResult:
        """Run the pipeline over every threat scenario."""
        result = TaraResult(item_name=self.item.name)
        for threat in self.item.threat_scenarios:
            damage = self.item.damage_scenario(threat.damage_scenario_id)
            asset = self.item.asset(damage.asset_id)

            impact_vector = damage.impact
            if self.impact_modifier is not None:
                impact_vector = self.impact_modifier(threat, impact_vector)
            impact = impact_vector.overall()

            potential = self._scenario_potential(threat)
            if self.feasibility_modifier is not None:
                potential = self.feasibility_modifier(threat, potential)
            potential = potential.hardened(self._hardening_points(threat.attack_type))
            feasibility = rate_feasibility(potential)

            value = risk_value(impact, feasibility)
            cal = determine_cal(impact, threat.attack_type)
            result.assessments.append(
                ThreatAssessment(
                    threat_id=threat.threat_id,
                    damage_scenario_id=threat.damage_scenario_id,
                    attack_type=threat.attack_type,
                    impact=impact,
                    feasibility=feasibility,
                    risk_value=value,
                    cal=cal,
                    safety_coupled=asset.safety_related
                    and impact_vector.safety > ImpactRating.NEGLIGIBLE,
                    potential_points=potential.points(),
                )
            )
        return result
