"""Cybersecurity Assurance Level determination (ISO/SAE 21434 Annex E).

CAL 1–4 from the impact of the associated damage scenario and the attack
vector through which the threat is mounted (the Annex E scheme): remote
attacks on severe-impact scenarios demand CAL 4; physical-access attacks on
moderate scenarios CAL 1–2.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from repro.risk.impact import ImpactRating


class AttackVector(enum.IntEnum):
    """Attack vector classes, ordered by reach (wider = more exposed)."""

    PHYSICAL = 0
    LOCAL = 1
    ADJACENT = 2  # radio range
    NETWORK = 3   # remote


class CaLevel(enum.IntEnum):
    """Cybersecurity assurance levels."""

    CAL1 = 1
    CAL2 = 2
    CAL3 = 3
    CAL4 = 4


#: attack type -> attack vector (worksite attacks are mostly radio-adjacent)
ATTACK_VECTORS: Dict[str, AttackVector] = {
    "rf_jamming": AttackVector.ADJACENT,
    "frequency_interference": AttackVector.ADJACENT,
    "wifi_deauth": AttackVector.ADJACENT,
    "gnss_jamming": AttackVector.ADJACENT,
    "gnss_spoofing": AttackVector.ADJACENT,
    "camera_blinding": AttackVector.PHYSICAL,
    "camera_hijack": AttackVector.NETWORK,
    "message_injection": AttackVector.ADJACENT,
    "message_replay": AttackVector.ADJACENT,
    "message_tampering": AttackVector.ADJACENT,
    "eavesdropping": AttackVector.ADJACENT,
    "firmware_tampering": AttackVector.PHYSICAL,
    "credential_bruteforce": AttackVector.NETWORK,
}

#: (impact, vector) -> CAL, per the Annex E informative scheme
_CAL_TABLE: Dict[Tuple[ImpactRating, AttackVector], CaLevel] = {}
for _impact in ImpactRating:
    for _vector in AttackVector:
        if _impact is ImpactRating.NEGLIGIBLE:
            level = CaLevel.CAL1
        elif _impact is ImpactRating.MODERATE:
            level = CaLevel.CAL1 if _vector <= AttackVector.LOCAL else CaLevel.CAL2
        elif _impact is ImpactRating.MAJOR:
            if _vector <= AttackVector.LOCAL:
                level = CaLevel.CAL2
            elif _vector is AttackVector.ADJACENT:
                level = CaLevel.CAL3
            else:
                level = CaLevel.CAL3
        else:  # SEVERE
            if _vector is AttackVector.PHYSICAL:
                level = CaLevel.CAL2
            elif _vector is AttackVector.LOCAL:
                level = CaLevel.CAL3
            else:
                level = CaLevel.CAL4
        _CAL_TABLE[(_impact, _vector)] = level


def attack_vector_of(attack_type: str) -> AttackVector:
    """Vector class of an attack type (ADJACENT fallback for radio site)."""
    return ATTACK_VECTORS.get(attack_type, AttackVector.ADJACENT)


def determine_cal(impact: ImpactRating, attack_type: str) -> CaLevel:
    """CAL from impact rating and the threat's attack vector."""
    return _CAL_TABLE[(impact, attack_vector_of(attack_type))]
