"""Risk treatment decisions and residual-risk computation (21434 clause 15.9).

For each assessed threat: decide among *avoid / reduce / share / retain*
based on the risk value against the acceptance threshold; for *reduce*,
select countermeasures from the catalog and re-run the feasibility rating
with the hardened attack potential to obtain the residual risk.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.defense.countermeasures import Countermeasure, CountermeasureCatalog
from repro.risk.feasibility import default_potential, rate_feasibility
from repro.risk.matrix import risk_value
from repro.risk.tara import TaraResult, ThreatAssessment


class TreatmentDecision(enum.Enum):
    """The four treatment options of ISO/SAE 21434."""

    AVOID = "avoid"
    REDUCE = "reduce"
    SHARE = "share"
    RETAIN = "retain"


@dataclass
class RiskTreatment:
    """Treatment of one threat."""

    threat_id: str
    decision: TreatmentDecision
    measures: List[str] = field(default_factory=list)
    initial_risk: int = 0
    residual_risk: int = 0
    rationale: str = ""

    @property
    def risk_reduction(self) -> int:
        return self.initial_risk - self.residual_risk


@dataclass
class TreatmentPlan:
    """The treatment plan for a whole TARA result."""

    treatments: List[RiskTreatment] = field(default_factory=list)
    total_cost: float = 0.0

    def measures_deployed(self) -> List[str]:
        """Measures actually deployed (REDUCE decisions only — an AVOID
        records the insufficient candidates without fielding them)."""
        names: List[str] = []
        for treatment in self.treatments:
            if treatment.decision is not TreatmentDecision.REDUCE:
                continue
            for measure in treatment.measures:
                if measure not in names:
                    names.append(measure)
        return names

    def residual_above(self, threshold: int) -> List[RiskTreatment]:
        return [t for t in self.treatments if t.residual_risk > threshold]

    def max_residual(self) -> int:
        return max((t.residual_risk for t in self.treatments), default=0)


def plan_treatment(
    result: TaraResult,
    *,
    catalog: Optional[CountermeasureCatalog] = None,
    acceptance_threshold: int = 2,
    hardening_scale: int = 3,
    avoid_threshold: int = 5,
) -> TreatmentPlan:
    """Build a treatment plan from a TARA result.

    Decision logic:

    * risk ≤ threshold → RETAIN;
    * risk = ``avoid_threshold`` with no strong mitigation available → AVOID
      (redesign: the function is not fielded in that form);
    * otherwise → REDUCE with the strongest affordable catalog measures;
      if no measure exists at all → SHARE (contractual/insurance), residual
      unchanged.
    """
    catalog = catalog or CountermeasureCatalog()
    plan = TreatmentPlan()
    deployed_cost: Dict[str, float] = {}
    for assessment in result.assessments:
        if assessment.risk_value <= acceptance_threshold:
            plan.treatments.append(
                RiskTreatment(
                    threat_id=assessment.threat_id,
                    decision=TreatmentDecision.RETAIN,
                    initial_risk=assessment.risk_value,
                    residual_risk=assessment.risk_value,
                    rationale="risk within acceptance threshold",
                )
            )
            continue
        candidates = catalog.mitigating(assessment.attack_type)
        if not candidates:
            plan.treatments.append(
                RiskTreatment(
                    threat_id=assessment.threat_id,
                    decision=TreatmentDecision.SHARE,
                    initial_risk=assessment.risk_value,
                    residual_risk=assessment.risk_value,
                    rationale="no catalog mitigation; risk shared contractually",
                )
            )
            continue
        # deploy measures strongest-first until residual acceptable
        chosen: List[Countermeasure] = []
        potential = default_potential(assessment.attack_type)
        residual = assessment.risk_value
        for measure in candidates:
            chosen.append(measure)
            potential = potential.hardened(measure.feasibility_increase * hardening_scale)
            residual = risk_value(assessment.impact, rate_feasibility(potential))
            if residual <= acceptance_threshold:
                break
        if residual > acceptance_threshold and assessment.risk_value >= avoid_threshold:
            plan.treatments.append(
                RiskTreatment(
                    threat_id=assessment.threat_id,
                    decision=TreatmentDecision.AVOID,
                    initial_risk=assessment.risk_value,
                    residual_risk=residual,
                    measures=[m.name for m in chosen],
                    rationale="mitigation insufficient at critical risk; redesign required",
                )
            )
            continue
        for measure in chosen:
            deployed_cost.setdefault(measure.name, measure.cost)
        plan.treatments.append(
            RiskTreatment(
                threat_id=assessment.threat_id,
                decision=TreatmentDecision.REDUCE,
                measures=[m.name for m in chosen],
                initial_risk=assessment.risk_value,
                residual_risk=residual,
                rationale="catalog countermeasures deployed",
            )
        )
    plan.total_cost = sum(deployed_cost.values())
    return plan
