"""Cybersecurity risk calculi: ISO/SAE 21434 TARA and IEC 62443 SL.

The paper's future-work core is "developing a forestry-adapted risk
assessment methodology, using ISO/SAE 21434 (in particular the continuous
risk assessment part), IEC 62443 (including the adaptation of the risk
assessment method to various domains) and IEC TS 63074 as guidance".  This
package encodes both calculi executably:

* :mod:`repro.risk.model` — assets, damage scenarios, threat scenarios,
  attack paths (the TARA work products);
* :mod:`repro.risk.stride` — systematic threat enumeration over an item
  model;
* :mod:`repro.risk.feasibility` — attack-potential feasibility rating
  (ISO 21434 Annex G / ISO 18045);
* :mod:`repro.risk.impact` — SFOP impact rating;
* :mod:`repro.risk.matrix` — the risk-value matrix;
* :mod:`repro.risk.tara` — the assembled TARA pipeline;
* :mod:`repro.risk.cal` — cybersecurity assurance level determination;
* :mod:`repro.risk.iec62443` — zones, conduits, SL-T/SL-A and gap analysis;
* :mod:`repro.risk.attack_graphs` — attack-path graph analysis (networkx);
* :mod:`repro.risk.treatment` — risk treatment and residual risk.
"""

from repro.risk.model import (
    Asset,
    AttackPath,
    AttackStep,
    CybersecurityProperty,
    DamageScenario,
    ItemModel,
    ThreatScenario,
)
from repro.risk.feasibility import AttackPotential, FeasibilityRating, rate_feasibility
from repro.risk.impact import ImpactCategory, ImpactRating, SfopImpact
from repro.risk.matrix import risk_value
from repro.risk.tara import Tara, TaraResult, ThreatAssessment
from repro.risk.cal import CaLevel, determine_cal
from repro.risk.iec62443 import SecurityLevel, Zone, Conduit, ZoneModel
from repro.risk.attack_graphs import AttackGraph
from repro.risk.treatment import RiskTreatment, TreatmentDecision, TreatmentPlan

__all__ = [
    "Asset",
    "AttackPath",
    "AttackStep",
    "CybersecurityProperty",
    "DamageScenario",
    "ItemModel",
    "ThreatScenario",
    "AttackPotential",
    "FeasibilityRating",
    "rate_feasibility",
    "ImpactCategory",
    "ImpactRating",
    "SfopImpact",
    "risk_value",
    "Tara",
    "TaraResult",
    "ThreatAssessment",
    "CaLevel",
    "determine_cal",
    "SecurityLevel",
    "Zone",
    "Conduit",
    "ZoneModel",
    "AttackGraph",
    "RiskTreatment",
    "TreatmentDecision",
    "TreatmentPlan",
]
