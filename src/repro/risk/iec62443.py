"""IEC 62443 zones, conduits and security levels.

IEC 62443-3-2 partitions the system under consideration into *zones*
(groupings of assets with common security requirements) connected by
*conduits* (communication channels).  Each zone gets a target security level
vector **SL-T** over the seven foundational requirements; deployed
countermeasures determine the achieved level **SL-A**; the gap SL-T − SL-A
drives remediation.

Foundational requirements:

FR1 Identification & authentication control, FR2 Use control, FR3 System
integrity, FR4 Data confidentiality, FR5 Restricted data flow, FR6 Timely
response to events, FR7 Resource availability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.defense.countermeasures import CountermeasureCatalog

FOUNDATIONAL_REQUIREMENTS: Tuple[str, ...] = (
    "FR1", "FR2", "FR3", "FR4", "FR5", "FR6", "FR7",
)

FR_NAMES: Dict[str, str] = {
    "FR1": "Identification and authentication control",
    "FR2": "Use control",
    "FR3": "System integrity",
    "FR4": "Data confidentiality",
    "FR5": "Restricted data flow",
    "FR6": "Timely response to events",
    "FR7": "Resource availability",
}


class SecurityLevel(enum.IntEnum):
    """SL 0–4 (protection against increasingly capable violators)."""

    SL0 = 0  # no specific protection
    SL1 = 1  # casual or coincidental violation
    SL2 = 2  # intentional, simple means
    SL3 = 3  # sophisticated means, moderate resources
    SL4 = 4  # sophisticated means, extended resources


SlVector = Dict[str, SecurityLevel]


def sl_vector(**levels: int) -> SlVector:
    """Build an SL vector; unspecified FRs default to SL0.

    >>> sl_vector(FR1=2, FR6=3)["FR6"]
    <SecurityLevel.SL3: 3>
    """
    vector = {fr: SecurityLevel.SL0 for fr in FOUNDATIONAL_REQUIREMENTS}
    for fr, level in levels.items():
        if fr not in vector:
            raise KeyError(f"unknown foundational requirement {fr!r}")
        vector[fr] = SecurityLevel(level)
    return vector


@dataclass
class Zone:
    """A security zone.

    Attributes
    ----------
    name:
        Zone name.
    systems:
        Constituent systems assigned to the zone.
    sl_target:
        SL-T vector.
    deployed_measures:
        Countermeasure names deployed inside the zone.
    safety_related:
        Whether the zone hosts safety-related control functions
        (IEC TS 63074 requires SL-T ≥ SL2 for FR3/FR6 there).
    """

    name: str
    systems: List[str] = field(default_factory=list)
    sl_target: SlVector = field(default_factory=lambda: sl_vector())
    deployed_measures: List[str] = field(default_factory=list)
    safety_related: bool = False

    def sl_achieved(self, catalog: CountermeasureCatalog) -> SlVector:
        """SL-A from the deployed measures' capabilities."""
        return {
            fr: SecurityLevel(catalog.sl_capability(fr, self.deployed_measures))
            for fr in FOUNDATIONAL_REQUIREMENTS
        }

    def gaps(self, catalog: CountermeasureCatalog) -> Dict[str, int]:
        """Per-FR shortfall SL-T − SL-A (only positive entries)."""
        achieved = self.sl_achieved(catalog)
        return {
            fr: int(self.sl_target[fr]) - int(achieved[fr])
            for fr in FOUNDATIONAL_REQUIREMENTS
            if int(self.sl_target[fr]) > int(achieved[fr])
        }

    def compliant(self, catalog: CountermeasureCatalog) -> bool:
        return not self.gaps(catalog)


@dataclass
class Conduit:
    """A conduit between two zones."""

    name: str
    zone_a: str
    zone_b: str
    channels: List[str] = field(default_factory=list)
    sl_target: SlVector = field(default_factory=lambda: sl_vector())
    deployed_measures: List[str] = field(default_factory=list)

    def sl_achieved(self, catalog: CountermeasureCatalog) -> SlVector:
        return {
            fr: SecurityLevel(catalog.sl_capability(fr, self.deployed_measures))
            for fr in FOUNDATIONAL_REQUIREMENTS
        }

    def gaps(self, catalog: CountermeasureCatalog) -> Dict[str, int]:
        achieved = self.sl_achieved(catalog)
        return {
            fr: int(self.sl_target[fr]) - int(achieved[fr])
            for fr in FOUNDATIONAL_REQUIREMENTS
            if int(self.sl_target[fr]) > int(achieved[fr])
        }


class ZoneModelError(ValueError):
    """Raised for inconsistent zone/conduit models."""


class ZoneModel:
    """The zone-and-conduit partition of the system under consideration."""

    def __init__(self, catalog: Optional[CountermeasureCatalog] = None) -> None:
        self.catalog = catalog or CountermeasureCatalog()
        self.zones: Dict[str, Zone] = {}
        self.conduits: Dict[str, Conduit] = {}

    def add_zone(self, zone: Zone) -> Zone:
        if zone.name in self.zones:
            raise ZoneModelError(f"duplicate zone {zone.name!r}")
        if zone.safety_related:
            # IEC TS 63074: safety-related zones need at least SL2 on system
            # integrity and timely response
            for fr in ("FR3", "FR6"):
                if int(zone.sl_target[fr]) < int(SecurityLevel.SL2):
                    raise ZoneModelError(
                        f"safety-related zone {zone.name!r} requires SL-T >= 2 for {fr}"
                    )
        self.zones[zone.name] = zone
        return zone

    def add_conduit(self, conduit: Conduit) -> Conduit:
        if conduit.name in self.conduits:
            raise ZoneModelError(f"duplicate conduit {conduit.name!r}")
        for zone_name in (conduit.zone_a, conduit.zone_b):
            if zone_name not in self.zones:
                raise ZoneModelError(
                    f"conduit {conduit.name!r} references unknown zone {zone_name!r}"
                )
        self.conduits[conduit.name] = conduit
        return conduit

    def zone_of_system(self, system: str) -> Optional[Zone]:
        for zone in self.zones.values():
            if system in zone.systems:
                return zone
        return None

    def assessment(self) -> Dict[str, dict]:
        """Per-zone and per-conduit SL-T / SL-A / gap report."""
        report: Dict[str, dict] = {}
        for zone in self.zones.values():
            achieved = zone.sl_achieved(self.catalog)
            report[f"zone:{zone.name}"] = {
                "sl_target": {fr: int(v) for fr, v in zone.sl_target.items()},
                "sl_achieved": {fr: int(v) for fr, v in achieved.items()},
                "gaps": zone.gaps(self.catalog),
                "compliant": zone.compliant(self.catalog),
            }
        for conduit in self.conduits.values():
            achieved = conduit.sl_achieved(self.catalog)
            report[f"conduit:{conduit.name}"] = {
                "sl_target": {fr: int(v) for fr, v in conduit.sl_target.items()},
                "sl_achieved": {fr: int(v) for fr, v in achieved.items()},
                "gaps": conduit.gaps(self.catalog),
                "compliant": not conduit.gaps(self.catalog),
            }
        return report

    def total_gap(self) -> int:
        """Sum of all SL shortfalls (a single remediation-burden number)."""
        total = 0
        for zone in self.zones.values():
            total += sum(zone.gaps(self.catalog).values())
        for conduit in self.conduits.values():
            total += sum(conduit.gaps(self.catalog).values())
        return total
