"""SFOP impact rating (ISO/SAE 21434 clause 15.5).

Damage scenarios are rated in four categories — Safety, Financial,
Operational, Privacy — each on the scale negligible / moderate / major /
severe.  The overall impact of a damage scenario is the maximum category
rating (the standard assesses categories independently; the maximum is the
conventional aggregation for risk-value determination).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ImpactRating(enum.IntEnum):
    """Per-category impact rating."""

    NEGLIGIBLE = 0
    MODERATE = 1
    MAJOR = 2
    SEVERE = 3


class ImpactCategory(enum.Enum):
    """SFOP categories."""

    SAFETY = "safety"
    FINANCIAL = "financial"
    OPERATIONAL = "operational"
    PRIVACY = "privacy"


@dataclass(frozen=True)
class SfopImpact:
    """The four category ratings of one damage scenario."""

    safety: ImpactRating = ImpactRating.NEGLIGIBLE
    financial: ImpactRating = ImpactRating.NEGLIGIBLE
    operational: ImpactRating = ImpactRating.NEGLIGIBLE
    privacy: ImpactRating = ImpactRating.NEGLIGIBLE

    def overall(self) -> ImpactRating:
        """Maximum category rating."""
        return max(self.safety, self.financial, self.operational, self.privacy)

    def dominated_by_safety(self) -> bool:
        """True when safety is (one of) the highest-rated categories."""
        return self.safety == self.overall() and self.safety > ImpactRating.NEGLIGIBLE

    def category(self, category: ImpactCategory) -> ImpactRating:
        return {
            ImpactCategory.SAFETY: self.safety,
            ImpactCategory.FINANCIAL: self.financial,
            ImpactCategory.OPERATIONAL: self.operational,
            ImpactCategory.PRIVACY: self.privacy,
        }[category]

    @staticmethod
    def of(
        safety: int = 0, financial: int = 0, operational: int = 0, privacy: int = 0
    ) -> "SfopImpact":
        """Convenience constructor from integers 0–3."""
        return SfopImpact(
            safety=ImpactRating(safety),
            financial=ImpactRating(financial),
            operational=ImpactRating(operational),
            privacy=ImpactRating(privacy),
        )
