"""Goal Structuring Notation (GSN) graphs.

Element kinds follow the GSN community standard: Goal, Strategy, Solution
(evidence), Context, Assumption, Justification; relations are *SupportedBy*
(goal→strategy→goal→solution) and *InContextOf* (to context-type elements).

The well-formedness checker enforces the structural rules the standard
states: goals are supported by strategies or solutions, strategies only by
goals, solutions are leaves, context-type elements take no support, and the
graph below the root must be acyclic and connected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple


class GsnKind(enum.Enum):
    """GSN element kinds."""

    GOAL = "goal"
    STRATEGY = "strategy"
    SOLUTION = "solution"
    CONTEXT = "context"
    ASSUMPTION = "assumption"
    JUSTIFICATION = "justification"


_CONTEXTUAL = {GsnKind.CONTEXT, GsnKind.ASSUMPTION, GsnKind.JUSTIFICATION}


@dataclass
class GsnElement:
    """One GSN element."""

    element_id: str
    kind: GsnKind
    statement: str
    undeveloped: bool = False
    evidence_ref: Optional[str] = None  # Solution -> evidence registry key


class GsnError(ValueError):
    """Raised on structural violations."""


class GsnGraph:
    """A GSN argument structure."""

    def __init__(self, root_goal: GsnElement) -> None:
        if root_goal.kind is not GsnKind.GOAL:
            raise GsnError("the root element must be a Goal")
        self.elements: Dict[str, GsnElement] = {root_goal.element_id: root_goal}
        self.root_id = root_goal.element_id
        self._supported_by: Dict[str, List[str]] = {}
        self._in_context_of: Dict[str, List[str]] = {}

    # -- construction -----------------------------------------------------------
    def add(self, element: GsnElement) -> GsnElement:
        if element.element_id in self.elements:
            raise GsnError(f"duplicate element id {element.element_id!r}")
        self.elements[element.element_id] = element
        return element

    def supported_by(self, parent_id: str, child_id: str) -> None:
        """Add a SupportedBy relation parent → child."""
        parent = self._get(parent_id)
        child = self._get(child_id)
        if parent.kind in _CONTEXTUAL or parent.kind is GsnKind.SOLUTION:
            raise GsnError(f"{parent.kind.value} elements cannot be supported")
        if child.kind in _CONTEXTUAL:
            raise GsnError(
                f"use in_context_of for {child.kind.value} element {child_id!r}"
            )
        if parent.kind is GsnKind.STRATEGY and child.kind not in (
            GsnKind.GOAL, GsnKind.SOLUTION,
        ):
            raise GsnError("a strategy may only be supported by goals or solutions")
        if parent.kind is GsnKind.GOAL and child.kind is GsnKind.GOAL:
            # goal-to-goal support is permitted by the standard
            pass
        self._supported_by.setdefault(parent_id, []).append(child_id)
        if self._creates_cycle():
            self._supported_by[parent_id].remove(child_id)
            raise GsnError(f"relation {parent_id}->{child_id} creates a cycle")

    def in_context_of(self, element_id: str, context_id: str) -> None:
        """Attach a contextual element."""
        self._get(element_id)
        context = self._get(context_id)
        if context.kind not in _CONTEXTUAL:
            raise GsnError(
                f"in_context_of target must be contextual, got {context.kind.value}"
            )
        self._in_context_of.setdefault(element_id, []).append(context_id)

    def _get(self, element_id: str) -> GsnElement:
        try:
            return self.elements[element_id]
        except KeyError:
            raise GsnError(f"unknown element {element_id!r}") from None

    # -- queries ----------------------------------------------------------------
    def children(self, element_id: str) -> List[GsnElement]:
        return [self.elements[c] for c in self._supported_by.get(element_id, ())]

    def contexts(self, element_id: str) -> List[GsnElement]:
        return [self.elements[c] for c in self._in_context_of.get(element_id, ())]

    def goals(self) -> List[GsnElement]:
        return [e for e in self.elements.values() if e.kind is GsnKind.GOAL]

    def solutions(self) -> List[GsnElement]:
        return [e for e in self.elements.values() if e.kind is GsnKind.SOLUTION]

    def undeveloped_goals(self) -> List[GsnElement]:
        """Goals with no support and no 'undeveloped' marker are defects;
        this returns all goals lacking support (marked or not)."""
        found = []
        for element in self.goals():
            if not self._supported_by.get(element.element_id):
                found.append(element)
        return found

    def _creates_cycle(self) -> bool:
        seen: Set[str] = set()
        stack: Set[str] = set()

        def visit(node: str) -> bool:
            if node in stack:
                return True
            if node in seen:
                return False
            seen.add(node)
            stack.add(node)
            for child in self._supported_by.get(node, ()):  # noqa: B020
                if visit(child):
                    return True
            stack.remove(node)
            return False

        return any(visit(node) for node in list(self.elements))

    # -- well-formedness ----------------------------------------------------------
    def check(self) -> List[str]:
        """Structural findings (empty = well-formed and fully developed)."""
        findings: List[str] = []
        reachable = self._reachable()
        for element in self.elements.values():
            eid = element.element_id
            if element.kind is GsnKind.GOAL:
                children = self._supported_by.get(eid, [])
                if not children and not element.undeveloped:
                    findings.append(f"goal {eid} is unsupported and not marked undeveloped")
            if element.kind is GsnKind.STRATEGY:
                children = self._supported_by.get(eid, [])
                if not children and not element.undeveloped:
                    findings.append(f"strategy {eid} has no supporting goals")
            if element.kind is GsnKind.SOLUTION:
                if self._supported_by.get(eid):
                    findings.append(f"solution {eid} must be a leaf")
                if element.evidence_ref is None:
                    findings.append(f"solution {eid} cites no evidence")
            if element.kind in _CONTEXTUAL and self._supported_by.get(eid):
                findings.append(f"contextual element {eid} cannot be supported")
            if eid not in reachable and eid != self.root_id:
                findings.append(f"element {eid} is unreachable from the root")
        return findings

    def _reachable(self) -> Set[str]:
        seen = {self.root_id}
        frontier = [self.root_id]
        while frontier:
            node = frontier.pop()
            for child in self._supported_by.get(node, ()):  # noqa: B020
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
            for context in self._in_context_of.get(node, ()):  # noqa: B020
                seen.add(context)
        return seen

    def coverage(self) -> float:
        """Share of goals (transitively) grounded in solutions."""
        goals = self.goals()
        if not goals:
            return 0.0
        grounded = sum(1 for g in goals if self._grounded(g.element_id, set()))
        return grounded / len(goals)

    def _grounded(self, element_id: str, visiting: Set[str]) -> bool:
        if element_id in visiting:
            return False  # on the current path: a cycle, never grounded
        visiting.add(element_id)
        try:
            children = self._supported_by.get(element_id, [])
            if not children:
                return self.elements[element_id].kind is GsnKind.SOLUTION
            return all(self._grounded(c, visiting) for c in children)
        finally:
            # path-local guard: a shared sub-argument (diamond) must be
            # re-evaluable from its other parents
            visiting.discard(element_id)
