"""The evidence registry.

Evidence items back the Solutions of the assurance case.  Each item carries
provenance (which experiment/analysis produced it), a timestamp and a
validity horizon — assurance cases decay as the system and threat picture
evolve, which is the "continuous incremental assurance" concern the paper
cites (Assurance 2.0).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class EvidenceStatus(enum.Enum):
    """Lifecycle state of an evidence item."""

    CURRENT = "current"
    STALE = "stale"
    REVOKED = "revoked"


@dataclass
class Evidence:
    """One evidence item.

    Attributes
    ----------
    key:
        Registry key cited by Solutions.
    kind:
        Evidence class (``"test_result"``, ``"analysis"``, ``"simulation"``,
        ``"review"``, ``"certificate"``).
    description:
        What the evidence shows.
    source:
        Producing activity (experiment id, tool, review board).
    produced_at:
        Timestamp (simulation or wall-clock, caller's choice of epoch).
    valid_for_s:
        Validity horizon; None = does not expire.
    data:
        The measured payload backing the claim.
    """

    key: str
    kind: str
    description: str
    source: str
    produced_at: float = 0.0
    valid_for_s: Optional[float] = None
    data: Dict[str, Any] = field(default_factory=dict)
    revoked: bool = False

    def status(self, now: float) -> EvidenceStatus:
        if self.revoked:
            return EvidenceStatus.REVOKED
        if self.valid_for_s is not None and now > self.produced_at + self.valid_for_s:
            return EvidenceStatus.STALE
        return EvidenceStatus.CURRENT


class EvidenceRegistry:
    """Keyed store of evidence items with coverage queries."""

    def __init__(self) -> None:
        self._items: Dict[str, Evidence] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def add(self, item: Evidence) -> Evidence:
        if item.key in self._items:
            raise KeyError(f"duplicate evidence key {item.key!r}")
        self._items[item.key] = item
        return item

    def get(self, key: str) -> Evidence:
        return self._items[key]

    def revoke(self, key: str) -> None:
        self._items[key].revoked = True

    def items(self) -> List[Evidence]:
        return list(self._items.values())

    def current(self, now: float) -> List[Evidence]:
        return [e for e in self._items.values() if e.status(now) is EvidenceStatus.CURRENT]

    def coverage_of(self, keys: List[str], now: float) -> float:
        """Share of cited keys that exist and are current."""
        if not keys:
            return 1.0
        good = sum(
            1 for key in keys
            if key in self._items
            and self._items[key].status(now) is EvidenceStatus.CURRENT
        )
        return good / len(keys)

    def missing(self, keys: List[str]) -> List[str]:
        return [key for key in keys if key not in self._items]
