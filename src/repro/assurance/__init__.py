"""Security assurance cases (Section V).

"One common approach for assurance is to create assurance cases that are
structured bodies of arguments and evidence ... When the concern is
cybersecurity, we create Security Assurance Cases (SACs).  SAC can be
represented in different ways, e.g., using the Goal Structure Notation
(GSN), or Claim Argument Evidence (CAE)."

* :mod:`repro.assurance.gsn` — GSN graphs with well-formedness checking;
* :mod:`repro.assurance.cae` — Claim-Argument-Evidence trees;
* :mod:`repro.assurance.evidence` — the evidence registry (items, freshness,
  coverage);
* :mod:`repro.assurance.sac` — the asset-driven SAC builder (CASCADE-style,
  the paper's own prior approach transferred to forestry);
* :mod:`repro.assurance.patterns` — reusable argument patterns;
* :mod:`repro.assurance.compliance` — regulation/standard requirement models
  and the compliance mapping;
* :mod:`repro.assurance.export` — text/DOT/Markdown rendering.
"""

from repro.assurance.gsn import GsnElement, GsnKind, GsnGraph
from repro.assurance.cae import CaeNode, CaeKind, CaeTree
from repro.assurance.evidence import Evidence, EvidenceRegistry, EvidenceStatus
from repro.assurance.sac import SacBuilder, SacReport
from repro.assurance.compliance import (
    ComplianceMapping,
    Requirement,
    machinery_regulation_requirements,
)
from repro.assurance.export import render_gsn_text, render_gsn_dot, render_markdown

__all__ = [
    "GsnElement",
    "GsnKind",
    "GsnGraph",
    "CaeNode",
    "CaeKind",
    "CaeTree",
    "Evidence",
    "EvidenceRegistry",
    "EvidenceStatus",
    "SacBuilder",
    "SacReport",
    "ComplianceMapping",
    "Requirement",
    "machinery_regulation_requirements",
    "render_gsn_text",
    "render_gsn_dot",
    "render_markdown",
]
