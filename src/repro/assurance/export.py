"""Rendering assurance cases: indented text, Graphviz DOT, Markdown."""

from __future__ import annotations

from typing import List, Set

from repro.assurance.gsn import GsnGraph, GsnKind

_PREFIX = {
    GsnKind.GOAL: "G",
    GsnKind.STRATEGY: "S",
    GsnKind.SOLUTION: "Sn",
    GsnKind.CONTEXT: "C",
    GsnKind.ASSUMPTION: "A",
    GsnKind.JUSTIFICATION: "J",
}

_DOT_SHAPE = {
    GsnKind.GOAL: "box",
    GsnKind.STRATEGY: "parallelogram",
    GsnKind.SOLUTION: "circle",
    GsnKind.CONTEXT: "oval",
    GsnKind.ASSUMPTION: "oval",
    GsnKind.JUSTIFICATION: "oval",
}


def render_gsn_text(graph: GsnGraph, *, max_width: int = 100) -> str:
    """Indented plain-text rendering of the argument tree."""
    lines: List[str] = []
    seen: Set[str] = set()

    def walk(element_id: str, depth: int) -> None:
        element = graph.elements[element_id]
        marker = "(undeveloped) " if element.undeveloped else ""
        statement = element.statement
        budget = max_width - 2 * depth - 12
        if len(statement) > budget > 10:
            statement = statement[: budget - 3] + "..."
        lines.append(
            f"{'  ' * depth}[{element.kind.value.upper()}] {element_id}: "
            f"{marker}{statement}"
        )
        for context in graph.contexts(element_id):
            lines.append(
                f"{'  ' * (depth + 1)}({context.kind.value}) {context.statement[:budget]}"
            )
        if element_id in seen:
            lines.append(f"{'  ' * (depth + 1)}(see above)")
            return
        seen.add(element_id)
        for child in graph.children(element_id):
            walk(child.element_id, depth + 1)

    walk(graph.root_id, 0)
    return "\n".join(lines)


def render_gsn_dot(graph: GsnGraph) -> str:
    """Graphviz DOT output following GSN shape conventions."""
    lines = ["digraph sac {", "  rankdir=TB;", "  node [fontsize=9];"]
    for element in graph.elements.values():
        label = element.statement.replace('"', "'")
        if len(label) > 60:
            label = label[:57] + "..."
        shape = _DOT_SHAPE[element.kind]
        lines.append(
            f'  "{element.element_id}" [shape={shape} label="{element.element_id}\\n{label}"];'
        )
    for parent_id in graph.elements:
        for child in graph.children(parent_id):
            lines.append(f'  "{parent_id}" -> "{child.element_id}";')
        for context in graph.contexts(parent_id):
            lines.append(
                f'  "{parent_id}" -> "{context.element_id}" [style=dashed arrowhead=none];'
            )
    lines.append("}")
    return "\n".join(lines)


def render_markdown(graph: GsnGraph) -> str:
    """Nested-list Markdown rendering."""
    lines: List[str] = ["# Security Assurance Case", ""]
    seen: Set[str] = set()

    def walk(element_id: str, depth: int) -> None:
        element = graph.elements[element_id]
        bullet = "  " * depth + "-"
        kind = element.kind.value.capitalize()
        suffix = " *(undeveloped)*" if element.undeveloped else ""
        lines.append(f"{bullet} **{kind} {element_id}**: {element.statement}{suffix}")
        if element_id in seen:
            return
        seen.add(element_id)
        for child in graph.children(element_id):
            walk(child.element_id, depth + 1)

    walk(graph.root_id, 0)
    return "\n".join(lines)
