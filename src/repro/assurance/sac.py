"""The asset-driven SAC builder (CASCADE-style).

The paper's stated plan: "a knowledge transfer of an approach for creating
SACs that has been evaluated in multiple domains [CASCADE] and use it for
forestry.  We intend to extend the approach to include arguments and
evidence about safety and AI regulations and standards requirements
fulfillment."

The builder takes the combined assessment output (item model, TARA,
treatment plan, interplay findings), an evidence registry and a compliance
mapping, and produces a GSN security assurance case:

    top claim: the worksite is acceptably secure and safe to operate
      ├─ per-asset security claims (CASCADE's asset-driven decomposition)
      │    └─ per-threat treatment claims backed by evidence
      ├─ the interplay claim (safety not breakable by feasible attack)
      └─ per-requirement compliance claims (the paper's extension)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.assurance.compliance import ComplianceMapping
from repro.assurance.evidence import EvidenceRegistry
from repro.assurance.gsn import GsnElement, GsnGraph, GsnKind
from repro.assurance.patterns import (
    asset_security_pattern,
    compliance_pattern,
    interplay_pattern,
    treatment_pattern,
)
from repro.core.methodology import CombinedResult
from repro.risk.model import ItemModel


@dataclass
class SacReport:
    """Quality metrics of a built SAC."""

    elements: int
    goals: int
    solutions: int
    structural_findings: List[str]
    goal_coverage: float          # goals grounded in solutions
    evidence_coverage: float      # cited evidence existing and current
    undeveloped_goals: int
    compliance_coverage: float

    @property
    def complete(self) -> bool:
        return (
            not self.structural_findings
            and self.undeveloped_goals == 0
            and self.evidence_coverage >= 1.0
        )


class SacBuilder:
    """Builds the worksite SAC from assessment outputs.

    Parameters
    ----------
    item:
        The item model (assets to argue over).
    evidence:
        The evidence registry backing the solutions.
    compliance:
        Compliance mapping (for the requirements sub-case).
    """

    def __init__(
        self,
        item: ItemModel,
        evidence: EvidenceRegistry,
        compliance: Optional[ComplianceMapping] = None,
    ) -> None:
        self.item = item
        self.evidence = evidence
        self.compliance = compliance or ComplianceMapping()

    def build(
        self,
        result: CombinedResult,
        *,
        evidence_by_threat: Optional[Dict[str, List[str]]] = None,
        interplay_evidence: Optional[str] = None,
    ) -> GsnGraph:
        """Assemble the full GSN case."""
        evidence_by_threat = evidence_by_threat or {}
        graph = GsnGraph(GsnElement(
            "G-top", GsnKind.GOAL,
            f"The {self.item.name} is acceptably secure, and remains safe "
            "under credible cyber attack, for operation in its defined context",
        ))
        graph.add(GsnElement(
            "C-item", GsnKind.CONTEXT,
            f"Item definition: systems {', '.join(self.item.systems)}; "
            f"{len(self.item.assets)} assets; {len(self.item.threat_scenarios)} "
            "threat scenarios",
        ))
        graph.in_context_of("G-top", "C-item")
        graph.add(GsnElement(
            "A-attacker", GsnKind.ASSUMPTION,
            "Attacker capabilities are bounded by the attack-potential model "
            "of the TARA (proximate radio-range adversary, no nation-state)",
        ))
        graph.in_context_of("G-top", "A-attacker")

        # -- asset-driven security sub-case -------------------------------------
        strategy = "S-assets"
        graph.add(GsnElement(
            strategy, GsnKind.STRATEGY,
            "Argument over the item's cybersecurity assets (CASCADE)",
        ))
        graph.supported_by("G-top", strategy)
        treatments_by_threat = {
            t.threat_id: t for t in result.treatment.treatments
        }
        for asset in self.item.assets:
            damage_ids = {
                d.scenario_id for d in self.item.scenarios_for_asset(asset.asset_id)
            }
            threat_ids = [
                t.threat_id for t in self.item.threat_scenarios
                if t.damage_scenario_id in damage_ids
            ]
            threat_goals = asset_security_pattern(
                graph, strategy, asset.asset_id, asset.name, threat_ids
            )
            for goal_id, threat_id in zip(threat_goals, threat_ids):
                treatment = treatments_by_threat.get(threat_id)
                decision = treatment.decision.value if treatment else "unassessed"
                measures = treatment.measures if treatment else []
                keys = evidence_by_threat.get(threat_id, [])
                treatment_pattern(graph, goal_id, threat_id, decision, measures, keys)

        # -- interplay sub-case (the paper's safety extension) --------------------
        gap_hazards = sorted({
            f.hazard_id for f in result.interplay_findings
        })
        interplay_pattern(graph, "G-top", gap_hazards or ["none identified"],
                          interplay_evidence)

        # -- compliance sub-case (the paper's regulatory extension) ----------------
        requirement_ids = [r.requirement_id for r in self.compliance.requirements]
        compliance_pattern(
            graph, "G-top", requirement_ids, self.compliance.evidence_index()
        )
        return graph

    def report(self, graph: GsnGraph, *, now: float = 0.0) -> SacReport:
        """Score a built case."""
        cited = [
            e.evidence_ref for e in graph.solutions() if e.evidence_ref is not None
        ]
        findings = graph.check()
        undeveloped = [
            e for e in graph.goals()
            if e.undeveloped or (
                not graph.children(e.element_id) and e.kind is GsnKind.GOAL
            )
        ]
        return SacReport(
            elements=len(graph.elements),
            goals=len(graph.goals()),
            solutions=len(graph.solutions()),
            structural_findings=[
                f for f in findings if "not marked undeveloped" not in f
            ],
            goal_coverage=graph.coverage(),
            evidence_coverage=self.evidence.coverage_of(cited, now),
            undeveloped_goals=len(undeveloped),
            compliance_coverage=self.compliance.coverage(),
        )
