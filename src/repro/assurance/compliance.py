"""Regulation/standard requirement models and compliance mapping.

Executable encodings of the compliance surface the paper describes: the
Machinery Regulation (EU) 2023/1230's essential cybersecurity-relevant
requirements, plus hooks for the CRA and AI Act.  A
:class:`ComplianceMapping` links each requirement to the work products that
satisfy it (TARA, treatment plan, zone assessment, interplay analysis,
experiment evidence) and reports coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class Requirement:
    """One regulatory/standard requirement.

    Attributes
    ----------
    requirement_id:
        Stable identifier (e.g. ``"MR-1.1.9"``).
    source:
        The instrument (regulation/standard) it comes from.
    text:
        Condensed requirement text.
    satisfied_by:
        Work-product kinds that can evidence it (``"tara"``,
        ``"treatment"``, ``"zone_assessment"``, ``"interplay"``, ``"sotif"``,
        ``"pl_evaluation"``, ``"experiment"``, ``"sac"``).
    """

    requirement_id: str
    source: str
    text: str
    satisfied_by: tuple


def machinery_regulation_requirements() -> List[Requirement]:
    """Cybersecurity/safety-relevant essentials of Regulation (EU) 2023/1230."""
    return [
        Requirement(
            "MR-1.1.9", "Regulation (EU) 2023/1230",
            "Protection against corruption: connected machinery must withstand "
            "malicious third-party attempts to create a hazardous situation",
            ("tara", "treatment", "interplay", "experiment"),
        ),
        Requirement(
            "MR-1.2.1", "Regulation (EU) 2023/1230",
            "Safety and reliability of control systems, including under "
            "reasonably foreseeable misuse and attack-induced faults",
            ("pl_evaluation", "interplay", "experiment"),
        ),
        Requirement(
            "MR-1.2.4", "Regulation (EU) 2023/1230",
            "Machinery must stop safely; stopping devices must remain "
            "available despite communication failures",
            ("experiment", "pl_evaluation"),
        ),
        Requirement(
            "MR-1.3.7", "Regulation (EU) 2023/1230",
            "Risks related to moving parts and persons in the hazard zone; "
            "detection of persons must be ensured in the operating environment",
            ("sotif", "experiment"),
        ),
        Requirement(
            "MR-AI-2.1", "Regulation (EU) 2023/1230",
            "Safety functions realised with self-evolving (AI) behaviour must "
            "have their decision logic validated for the operating domain",
            ("sotif", "experiment"),
        ),
        Requirement(
            "CRA-1", "Cyber Resilience Act (proposal)",
            "Products with digital elements are designed, developed and "
            "produced with an appropriate level of cybersecurity based on risk",
            ("tara", "treatment", "zone_assessment"),
        ),
        Requirement(
            "CRA-2", "Cyber Resilience Act (proposal)",
            "Vulnerability handling: monitoring, logging and incident response "
            "capabilities exist for the product's lifetime",
            ("experiment", "zone_assessment"),
        ),
        Requirement(
            "ISO21434-15", "ISO/SAE 21434",
            "Threat analysis and risk assessment performed over the item with "
            "documented impact, feasibility and risk treatment",
            ("tara", "treatment"),
        ),
        Requirement(
            "IEC62443-3-2", "IEC 62443-3-2",
            "The system under consideration is partitioned into zones and "
            "conduits with assessed target and achieved security levels",
            ("zone_assessment",),
        ),
        Requirement(
            "IECTS63074-5", "IEC TS 63074",
            "Security threats that could affect safety-related control "
            "systems are identified and countered",
            ("interplay", "treatment"),
        ),
        Requirement(
            "ISO13849-4.5", "ISO 13849-1",
            "Each safety function's achieved Performance Level meets or "
            "exceeds the required PL from the risk graph",
            ("pl_evaluation",),
        ),
    ]


@dataclass
class ComplianceStatus:
    """Coverage of one requirement."""

    requirement: Requirement
    work_products: List[str] = field(default_factory=list)
    evidence_keys: List[str] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        provided = set(self.work_products)
        return any(kind in provided for kind in self.requirement.satisfied_by)


class ComplianceMapping:
    """Links requirements to produced work products and evidence."""

    def __init__(self, requirements: Optional[Sequence[Requirement]] = None) -> None:
        self.requirements = list(
            machinery_regulation_requirements() if requirements is None else requirements
        )
        self._status: Dict[str, ComplianceStatus] = {
            r.requirement_id: ComplianceStatus(requirement=r) for r in self.requirements
        }

    def record(
        self, requirement_id: str, work_product: str, evidence_key: Optional[str] = None
    ) -> None:
        """Register that a work product addresses a requirement."""
        status = self._status[requirement_id]
        if work_product not in status.work_products:
            status.work_products.append(work_product)
        if evidence_key is not None and evidence_key not in status.evidence_keys:
            status.evidence_keys.append(evidence_key)

    def record_work_product(
        self, work_product: str, evidence_key: Optional[str] = None
    ) -> List[str]:
        """Register a work product against every requirement it can satisfy."""
        matched = []
        for requirement in self.requirements:
            if work_product in requirement.satisfied_by:
                self.record(requirement.requirement_id, work_product, evidence_key)
                matched.append(requirement.requirement_id)
        return matched

    def status_of(self, requirement_id: str) -> ComplianceStatus:
        return self._status[requirement_id]

    def unsatisfied(self) -> List[Requirement]:
        return [
            s.requirement for s in self._status.values() if not s.satisfied
        ]

    def coverage(self) -> float:
        if not self._status:
            return 1.0
        satisfied = sum(1 for s in self._status.values() if s.satisfied)
        return satisfied / len(self._status)

    def evidence_index(self) -> Dict[str, List[str]]:
        """requirement id → evidence keys (for the compliance GSN pattern)."""
        return {
            rid: list(status.evidence_keys) for rid, status in self._status.items()
        }
