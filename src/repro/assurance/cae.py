"""Claim-Argument-Evidence (CAE) trees.

The Adelard notation the paper cites as the GSN alternative: *claims* are
supported by *arguments* which are backed by sub-claims or *evidence*.
Conversion to/from GSN is provided so the SAC builder can emit either.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.assurance.gsn import GsnElement, GsnGraph, GsnKind


class CaeKind(enum.Enum):
    """CAE node kinds."""

    CLAIM = "claim"
    ARGUMENT = "argument"
    EVIDENCE = "evidence"


class CaeError(ValueError):
    """Raised on structural violations."""


@dataclass
class CaeNode:
    """One CAE node."""

    node_id: str
    kind: CaeKind
    text: str
    evidence_ref: Optional[str] = None
    children: List["CaeNode"] = field(default_factory=list)

    def add(self, child: "CaeNode") -> "CaeNode":
        """Attach a child, enforcing the CAE grammar."""
        if self.kind is CaeKind.CLAIM and child.kind is CaeKind.EVIDENCE:
            raise CaeError("a claim must be supported through an argument")
        if self.kind is CaeKind.ARGUMENT and child.kind is CaeKind.ARGUMENT:
            raise CaeError("an argument cannot directly support an argument")
        if self.kind is CaeKind.EVIDENCE:
            raise CaeError("evidence nodes are leaves")
        self.children.append(child)
        return child


class CaeTree:
    """A CAE structure rooted at a top claim."""

    def __init__(self, root: CaeNode) -> None:
        if root.kind is not CaeKind.CLAIM:
            raise CaeError("the root must be a claim")
        self.root = root

    def nodes(self) -> List[CaeNode]:
        found: List[CaeNode] = []

        def walk(node: CaeNode) -> None:
            found.append(node)
            for child in node.children:
                walk(child)

        walk(self.root)
        return found

    def claims(self) -> List[CaeNode]:
        return [n for n in self.nodes() if n.kind is CaeKind.CLAIM]

    def evidence(self) -> List[CaeNode]:
        return [n for n in self.nodes() if n.kind is CaeKind.EVIDENCE]

    def check(self) -> List[str]:
        """Structural findings (empty = well-formed)."""
        findings = []
        ids = set()
        for node in self.nodes():
            if node.node_id in ids:
                findings.append(f"duplicate node id {node.node_id}")
            ids.add(node.node_id)
            if node.kind is CaeKind.CLAIM and not node.children:
                findings.append(f"claim {node.node_id} is unsupported")
            if node.kind is CaeKind.ARGUMENT and not node.children:
                findings.append(f"argument {node.node_id} is empty")
            if node.kind is CaeKind.EVIDENCE and node.evidence_ref is None:
                findings.append(f"evidence {node.node_id} has no registry reference")
        return findings

    # -- GSN conversion -----------------------------------------------------------
    def to_gsn(self) -> GsnGraph:
        """Translate claims→goals, arguments→strategies, evidence→solutions."""
        kind_map = {
            CaeKind.CLAIM: GsnKind.GOAL,
            CaeKind.ARGUMENT: GsnKind.STRATEGY,
            CaeKind.EVIDENCE: GsnKind.SOLUTION,
        }
        graph = GsnGraph(
            GsnElement(self.root.node_id, GsnKind.GOAL, self.root.text)
        )

        def walk(node: CaeNode) -> None:
            for child in node.children:
                graph.add(
                    GsnElement(
                        child.node_id,
                        kind_map[child.kind],
                        child.text,
                        evidence_ref=child.evidence_ref,
                    )
                )
                graph.supported_by(node.node_id, child.node_id)
                walk(child)

        walk(self.root)
        return graph

    @staticmethod
    def from_gsn(graph: GsnGraph) -> "CaeTree":
        """Translate a GSN graph back into CAE (contexts are dropped)."""
        kind_map = {
            GsnKind.GOAL: CaeKind.CLAIM,
            GsnKind.STRATEGY: CaeKind.ARGUMENT,
            GsnKind.SOLUTION: CaeKind.EVIDENCE,
        }
        root_element = graph.elements[graph.root_id]
        root = CaeNode(root_element.element_id, CaeKind.CLAIM, root_element.statement)

        def walk(parent: CaeNode, element_id: str) -> None:
            for child in graph.children(element_id):
                if child.kind not in kind_map:
                    continue
                node = CaeNode(
                    child.element_id,
                    kind_map[child.kind],
                    child.statement,
                    evidence_ref=child.evidence_ref,
                )
                parent.children.append(node)
                walk(node, child.element_id)

        walk(root, graph.root_id)
        return CaeTree(root)
