"""Reusable GSN argument patterns for the worksite SAC.

Patterns are parameterised argument fragments, instantiated per asset /
threat / requirement by the SAC builder.  The three patterns here mirror the
CASCADE approach's asset-driven decomposition the paper wants transferred to
forestry: argue over assets, over each asset's treated threats, and over
compliance with the governing requirements.
"""

from __future__ import annotations

from typing import List, Optional

from repro.assurance.gsn import GsnElement, GsnGraph, GsnKind


def asset_security_pattern(
    graph: GsnGraph,
    parent_goal: str,
    asset_id: str,
    asset_name: str,
    threat_ids: List[str],
) -> List[str]:
    """Instantiate the per-asset pattern under ``parent_goal``.

    Creates: goal "asset X is protected" → strategy "argue over identified
    threats" → one sub-goal per threat.  Returns the threat-goal ids so the
    builder can attach treatment goals and solutions.
    """
    asset_goal = f"G-{asset_id}"
    graph.add(GsnElement(
        asset_goal, GsnKind.GOAL,
        f"Asset '{asset_name}' is acceptably protected against cyber threats",
    ))
    graph.supported_by(parent_goal, asset_goal)
    strategy = f"S-{asset_id}"
    graph.add(GsnElement(
        strategy, GsnKind.STRATEGY,
        f"Argument over each identified threat scenario against {asset_name}",
    ))
    graph.supported_by(asset_goal, strategy)
    threat_goals = []
    for threat_id in threat_ids:
        goal_id = f"G-{asset_id}-{threat_id}"
        graph.add(GsnElement(
            goal_id, GsnKind.GOAL,
            f"Threat {threat_id} against {asset_name} is treated to acceptable risk",
        ))
        graph.supported_by(strategy, goal_id)
        threat_goals.append(goal_id)
    return threat_goals


def treatment_pattern(
    graph: GsnGraph,
    threat_goal: str,
    threat_id: str,
    decision: str,
    measures: List[str],
    evidence_keys: List[str],
) -> None:
    """Attach the treatment argument and its evidence under a threat goal."""
    strategy = f"S-{threat_goal}-trt"
    graph.add(GsnElement(
        strategy, GsnKind.STRATEGY,
        f"Argument by risk treatment ({decision}) with measures: "
        f"{', '.join(measures) if measures else 'none required'}",
    ))
    graph.supported_by(threat_goal, strategy)
    goal_id = f"{threat_goal}-resid"
    graph.add(GsnElement(
        goal_id, GsnKind.GOAL,
        f"Residual risk of {threat_id} after treatment is within the acceptance criteria",
    ))
    graph.supported_by(strategy, goal_id)
    if not evidence_keys:
        graph.elements[goal_id].undeveloped = True
        return
    for i, key in enumerate(evidence_keys):
        solution = f"Sn-{threat_goal}-{i}"
        graph.add(GsnElement(
            solution, GsnKind.SOLUTION,
            f"Evidence {key} demonstrates the treated risk level",
            evidence_ref=key,
        ))
        graph.supported_by(goal_id, solution)


def interplay_pattern(
    graph: GsnGraph,
    parent_goal: str,
    hazard_ids: List[str],
    evidence_key: Optional[str],
) -> None:
    """The safety-security interplay claim: no feasible attack breaks safety."""
    goal_id = "G-interplay"
    graph.add(GsnElement(
        goal_id, GsnKind.GOAL,
        "No feasible cyber attack reduces any safety function below its "
        "required Performance Level",
    ))
    graph.supported_by(parent_goal, goal_id)
    strategy = "S-interplay"
    graph.add(GsnElement(
        strategy, GsnKind.STRATEGY,
        f"Argument over the cyber-coupled hazards: {', '.join(hazard_ids)}",
    ))
    graph.supported_by(goal_id, strategy)
    sub = "G-interplay-analysis"
    graph.add(GsnElement(
        sub, GsnKind.GOAL,
        "The combined interplay analysis shows no unresolved assurance gap",
    ))
    graph.supported_by(strategy, sub)
    if evidence_key is None:
        graph.elements[sub].undeveloped = True
    else:
        graph.add(GsnElement(
            "Sn-interplay", GsnKind.SOLUTION,
            "Interplay analysis results over the TARA and hazard catalog",
            evidence_ref=evidence_key,
        ))
        graph.supported_by(sub, "Sn-interplay")


def compliance_pattern(
    graph: GsnGraph,
    parent_goal: str,
    requirement_ids: List[str],
    evidence_by_requirement,
) -> None:
    """Per-requirement compliance claims under a compliance strategy."""
    strategy = "S-compliance"
    graph.add(GsnElement(
        strategy, GsnKind.STRATEGY,
        "Argument over the applicable regulatory and standard requirements",
    ))
    graph.supported_by(parent_goal, strategy)
    for requirement_id in requirement_ids:
        goal_id = f"G-req-{requirement_id}"
        graph.add(GsnElement(
            goal_id, GsnKind.GOAL,
            f"Requirement {requirement_id} is satisfied",
        ))
        graph.supported_by(strategy, goal_id)
        keys = evidence_by_requirement.get(requirement_id, [])
        if not keys:
            graph.elements[goal_id].undeveloped = True
            continue
        for i, key in enumerate(keys):
            solution = f"Sn-req-{requirement_id}-{i}"
            graph.add(GsnElement(
                solution, GsnKind.SOLUTION,
                f"Evidence {key} for requirement {requirement_id}",
                evidence_ref=key,
            ))
            graph.supported_by(goal_id, solution)
