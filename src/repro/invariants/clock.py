"""Simulation-kernel invariants: the clock and record index.

The event kernel only ever moves time forward, and the tracer stamps a
monotonically increasing record index — so a trace whose ``t`` goes
backwards, or whose ``i`` stream has gaps or repeats, was either recorded
by a broken kernel or tampered with after the fact.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.invariants.base import Invariant, Violation


class MonotoneClockInvariant(Invariant):
    """Simulated time never decreases across the record stream."""

    name = "clock.monotonic"
    subsystem = "sim.engine"

    def __init__(self) -> None:
        self._last_t: Optional[float] = None

    def observe(self, record: dict) -> Iterator[Violation]:
        t = record.get("t")
        if not isinstance(t, (int, float)):
            yield self.violation(record, f"record t is {t!r}, not a number")
            return
        if self._last_t is not None and t < self._last_t:
            yield self.violation(
                record,
                f"sim clock went backwards: t={t} after t={self._last_t}",
                previous_t=self._last_t,
            )
        self._last_t = float(t)


class RecordIndexInvariant(Invariant):
    """Record indices are contiguous: each ``i`` is the previous plus one."""

    name = "clock.record_index"
    subsystem = "telemetry"

    def __init__(self) -> None:
        self._last_i: Optional[int] = None

    def observe(self, record: dict) -> Iterator[Violation]:
        if record.get("type") in ("span.start", "span.end"):
            # span records carry their own ``si`` counter, checked by
            # telemetry.spans; the event-record ``i`` stream skips them
            return
        i = record.get("i")
        if not isinstance(i, int):
            yield self.violation(record, f"record i is {i!r}, not an integer")
            return
        if self._last_i is not None and i != self._last_i + 1:
            yield self.violation(
                record,
                f"record index gap: i={i} follows i={self._last_i}",
                previous_i=self._last_i,
            )
        self._last_i = i
