"""Degraded-mode invariants: transition legality and RTO-deadline order.

The :class:`~repro.faults.modes.ModeMachine` contract
(NOMINAL → DEGRADED → SAFE_STOP → RECOVERING → NOMINAL):

* only the transitions the state machine can actually take are legal —
  in particular NOMINAL is only reachable from RECOVERING, and SAFE_STOP
  never relaxes straight back to DEGRADED or NOMINAL;
* each ``mode.transition`` record's ``prev`` must chain onto the last
  observed mode of that machine (initially NOMINAL);
* an escalation with reason ``<service>:rto_exceeded`` is the RTO
  deadline firing — it may only happen while that machine's service
  outage is still open, and strictly after the outage began;
* safe-stop ``latency_s`` attribution can never be negative.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.invariants.base import Invariant, Violation

#: mode -> modes reachable in one transition (from ModeMachine._to call sites)
ALLOWED_TRANSITIONS: Dict[str, frozenset] = {
    "nominal": frozenset({"degraded", "safe_stop"}),
    "degraded": frozenset({"safe_stop", "recovering"}),
    "safe_stop": frozenset({"recovering"}),
    "recovering": frozenset({"nominal", "degraded", "safe_stop"}),
}

RTO_REASON_SUFFIX = ":rto_exceeded"


class ModeTransitionInvariant(Invariant):
    """Mode machines only move along the declared transition graph."""

    name = "modes.transition_legality"
    subsystem = "faults.modes"

    def __init__(self) -> None:
        self._mode: Dict[str, str] = {}

    def observe(self, record: dict) -> Iterator[Violation]:
        if record.get("type") != "mode.transition":
            return
        machine = record.get("machine")
        mode, prev = record.get("mode"), record.get("prev")
        tracked = self._mode.get(machine, "nominal")
        self._mode[machine] = mode
        if prev != tracked:
            yield self.violation(
                record,
                f"{machine} transition chain broken: record claims "
                f"prev={prev!r} but last observed mode is {tracked!r}",
                machine=machine, claimed_prev=prev, observed_prev=tracked,
            )
        allowed = ALLOWED_TRANSITIONS.get(prev)
        if allowed is None:
            yield self.violation(
                record, f"{machine} in unknown mode {prev!r}",
                machine=machine, mode=prev,
            )
        elif mode not in allowed:
            yield self.violation(
                record,
                f"illegal mode jump on {machine}: {prev} -> {mode} "
                f"(allowed from {prev}: {sorted(allowed)})",
                machine=machine, prev=prev, mode=mode,
            )
        latency = record.get("latency_s")
        if latency is not None and latency < 0.0:
            yield self.violation(
                record,
                f"{machine} safe-stop latency is negative ({latency} s)",
                machine=machine, latency_s=latency,
            )


class RtoOrderingInvariant(Invariant):
    """RTO escalations fire only during the outage they escalate."""

    name = "modes.rto_ordering"
    subsystem = "faults.modes"

    def __init__(self) -> None:
        #: (machine, service) -> outage start time, while the outage is open
        self._open: Dict[Tuple[str, str], float] = {}

    def observe(self, record: dict) -> Iterator[Violation]:
        rtype = record.get("type")
        if rtype == "service.down":
            key = (record.get("machine"), record.get("service"))
            self._open.setdefault(key, float(record.get("t", 0.0)))
            return
        if rtype == "service.up":
            self._open.pop(
                (record.get("machine"), record.get("service")), None
            )
            return
        if rtype != "mode.transition" or record.get("mode") != "safe_stop":
            return
        reason = record.get("reason") or ""
        if not reason.endswith(RTO_REASON_SUFFIX):
            return
        machine = record.get("machine")
        service = reason[: -len(RTO_REASON_SUFFIX)]
        started = self._open.get((machine, service))
        if started is None:
            yield self.violation(
                record,
                f"{machine} escalated {service} RTO with no open outage "
                f"for that service",
                machine=machine, service=service,
            )
        elif float(record.get("t", 0.0)) <= started:
            yield self.violation(
                record,
                f"{machine} escalated {service} RTO at t={record.get('t')} "
                f"but the outage only began at t={started}",
                machine=machine, service=service, outage_started=started,
            )
