"""The invariant engine and its process-global installation point.

Mirrors the :mod:`repro.telemetry.tracer` design: one engine is
installed per process, instrumented code guards with a single module
attribute check (``if engine.ACTIVE:``), and :func:`env_enabled` gates
on ``REPRO_CHECK=1`` so sweeps and the CLI opt in uniformly.  With the
guard down the cost at the emit site is exactly one attribute load;
with it up the engine observes each record *after* it has been written,
so checking can never perturb the trace (pinned by the golden-trace
regression).

The default registry (:func:`default_invariants`) is the complete set
of per-subsystem contracts; :class:`InvariantEngine` folds their
violations into a deterministic, JSON-serialisable report.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional

from repro.invariants.base import Invariant, Violation

#: instrumented sites guard on this module attribute; flipped by install()
ACTIVE: bool = False

#: the installed engine (only read under an ``ACTIVE`` guard)
CHECKER: Optional["InvariantEngine"] = None

#: cap on full violation dicts carried in a summary block
SUMMARY_DETAIL_CAP = 20


def env_enabled() -> bool:
    """Whether ``REPRO_CHECK=1`` asks for online invariant checking."""
    return os.environ.get("REPRO_CHECK", "") not in ("", "0")


def install(engine: "InvariantEngine") -> None:
    """Make ``engine`` the process-global checker and arm the guards."""
    global ACTIVE, CHECKER
    CHECKER = engine
    ACTIVE = True


def uninstall() -> None:
    """Disarm the guards and forget the installed engine."""
    global ACTIVE, CHECKER
    ACTIVE = False
    CHECKER = None


@contextmanager
def installed(engine: "InvariantEngine") -> Iterator["InvariantEngine"]:
    """Install ``engine`` for the duration of the block, then uninstall."""
    install(engine)
    try:
        yield engine
    finally:
        uninstall()


def default_invariants() -> List[Invariant]:
    """Fresh instances of every registered per-subsystem invariant."""
    # imported lazily: the crypto checkers import the comms stack, whose
    # instrumented sites import the tracer, which imports this module
    from repro.invariants.clock import (
        MonotoneClockInvariant, RecordIndexInvariant,
    )
    from repro.invariants.crypto import (
        NonceSequenceInvariant, ReplayWindowInvariant,
    )
    from repro.invariants.frames import (
        DropTaxonomyInvariant, FrameCausalityInvariant,
    )
    from repro.invariants.groundstation import (
        AuditChainInvariant, CommandCausalityInvariant,
    )
    from repro.invariants.ids import AlertAttributionInvariant
    from repro.invariants.modes import (
        ModeTransitionInvariant, RtoOrderingInvariant,
    )
    from repro.invariants.spans import SpanDisciplineInvariant

    return [
        MonotoneClockInvariant(),
        RecordIndexInvariant(),
        NonceSequenceInvariant(),
        ReplayWindowInvariant(),
        FrameCausalityInvariant(),
        DropTaxonomyInvariant(),
        ModeTransitionInvariant(),
        RtoOrderingInvariant(),
        AlertAttributionInvariant(),
        SpanDisciplineInvariant(),
        AuditChainInvariant(),
        CommandCausalityInvariant(),
    ]


class InvariantEngine:
    """Run a set of invariants over a record stream and collect violations.

    Parameters
    ----------
    invariants:
        The checkers to run; defaults to :func:`default_invariants`.
    """

    def __init__(
        self, invariants: Optional[Iterable[Invariant]] = None
    ) -> None:
        self.invariants: List[Invariant] = (
            list(invariants) if invariants is not None
            else default_invariants()
        )
        self.violations: List[Violation] = []
        self._records = 0
        self._finished = False

    # -- stream interface ---------------------------------------------------
    def observe(self, record: dict) -> None:
        """Feed one record to every invariant; collect any violations."""
        self._records += 1
        for invariant in self.invariants:
            found = invariant.observe(record)
            if found is not None:
                self.violations.extend(found)

    def finish(self) -> List[Violation]:
        """Conclude end-of-trace checks; idempotent."""
        if not self._finished:
            self._finished = True
            for invariant in self.invariants:
                found = invariant.finish()
                if found is not None:
                    self.violations.extend(found)
        return self.violations

    def check(self, records: Iterable[dict]) -> List[Violation]:
        """Run the full stream through the engine (offline entry point)."""
        for record in records:
            self.observe(record)
        return self.finish()

    # -- reporting ----------------------------------------------------------
    @property
    def record_count(self) -> int:
        return self._records

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_invariant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict:
        """Compact digest for sweep records and run reports.

        Deterministic: a pure function of the record stream, ordered by
        detection.  ``details`` is capped so sweep JSONL rows stay small.
        """
        summary = {
            "checked": len(self.invariants),
            "records": self._records,
            "violations": len(self.violations),
            "by_invariant": self.by_invariant(),
        }
        if self.violations:
            summary["details"] = [
                v.to_dict() for v in self.violations[:SUMMARY_DETAIL_CAP]
            ]
            if len(self.violations) > SUMMARY_DETAIL_CAP:
                summary["truncated"] = (
                    len(self.violations) - SUMMARY_DETAIL_CAP
                )
        return summary
