"""IDS invariants: every alert's attack-window attribution is consistent.

The tracer attributes each ``ids.alert`` to the most recently started
attack window containing it (with the scoring grace period after the
window closes).  The invariant replays the ``attack.start`` /
``attack.stop`` stream independently and checks the attribution:

* ``in_window: true`` requires a containing window, a non-negative
  ``latency_s`` equal to the distance from that window's start, and a
  ``window`` field naming its attack type;
* ``in_window: false`` (a claimed false alarm) is a violation when a
  window *was* open at that time.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.invariants.base import Invariant, Violation

#: latency re-derivation tolerance: tracer rounds latency_s to 1e-6
LATENCY_TOL_S = 1e-5


class _Window:
    __slots__ = ("name", "attack_type", "start", "end")

    def __init__(self, name: str, attack_type: str, start: float) -> None:
        self.name = name
        self.attack_type = attack_type
        self.start = start
        self.end: Optional[float] = None


class AlertAttributionInvariant(Invariant):
    """Alerts claim in-window status exactly when a window contains them."""

    name = "ids.alert_attribution"
    subsystem = "defense.ids"

    #: must match Tracer.GRACE_S / IdsManager.score
    GRACE_S = 30.0

    def __init__(self) -> None:
        self._windows: List[_Window] = []

    def _containing(self, now: float) -> Optional[_Window]:
        best: Optional[_Window] = None
        for window in self._windows:
            if now < window.start:
                continue
            if window.end is not None and now > window.end + self.GRACE_S:
                continue
            if best is None or window.start > best.start:
                best = window
        return best

    def observe(self, record: dict) -> Iterator[Violation]:
        rtype = record.get("type")
        t = float(record.get("t", 0.0))
        if rtype == "attack.start":
            self._windows.append(
                _Window(record.get("attack"), record.get("attack_type"), t)
            )
            return
        if rtype == "attack.stop":
            for window in reversed(self._windows):
                if window.name == record.get("attack") and window.end is None:
                    window.end = t
                    break
            return
        if rtype != "ids.alert":
            return
        window = self._containing(t)
        if record.get("in_window"):
            if window is None:
                yield self.violation(
                    record,
                    f"alert from {record.get('detector')!r} claims "
                    f"in-window attribution but no attack window contains "
                    f"t={t}",
                    detector=record.get("detector"),
                    alert_type=record.get("alert_type"),
                )
                return
            latency = record.get("latency_s")
            expected = t - window.start
            if latency is None or abs(float(latency) - expected) > LATENCY_TOL_S:
                yield self.violation(
                    record,
                    f"alert latency {latency!r} s does not match window "
                    f"start (expected {round(expected, 6)} s from "
                    f"{window.attack_type})",
                    latency_s=latency, expected_s=round(expected, 6),
                    window=window.attack_type,
                )
            claimed = record.get("window")
            if claimed is not None and claimed != window.attack_type:
                yield self.violation(
                    record,
                    f"alert attributed to window {claimed!r} but the "
                    f"containing window is {window.attack_type!r}",
                    claimed=claimed, containing=window.attack_type,
                )
        elif window is not None:
            yield self.violation(
                record,
                f"alert from {record.get('detector')!r} marked as false "
                f"alarm while window {window.attack_type!r} (started "
                f"t={window.start}) was open",
                detector=record.get("detector"),
                window=window.attack_type,
            )
