"""Ground-station invariants: audit-chain continuity and command causality.

The plane's trace-visible contracts:

* every ``gs.audit`` record extends the hash chain — sequence numbers are
  contiguous from 0 and each record's ``prev`` equals the previous
  record's ``hash``, anchored at the seed-derived genesis from the
  ``trace.meta`` header.  A trace that breaks this either lost audit
  records or was rewritten;
* executed commands obey counter causality — for each (vehicle, sender)
  pair, the counters of ``verdict="executed"`` commands are strictly
  increasing.  A replayed command that *executes* (rather than being
  rejected) shows up here as a non-increasing counter.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.invariants.base import Invariant, Violation


class AuditChainInvariant(Invariant):
    """``gs.audit`` records form one contiguous, genesis-anchored chain."""

    name = "gs.audit_chain"
    subsystem = "groundstation"

    def __init__(self) -> None:
        self._seed: Optional[int] = None
        self._prev: Optional[str] = None
        self._next_seq = 0

    def observe(self, record: dict) -> Iterator[Violation]:
        rtype = record.get("type")
        if rtype == "trace.meta":
            seed = record.get("seed")
            if seed is not None:
                self._seed = int(seed)
            return
        if rtype != "gs.audit":
            return
        if self._prev is None:
            # anchor lazily so traces without a seeded header still get
            # sequence/continuity checking from the first audit record on
            if self._seed is not None:
                from repro.groundstation.audit import genesis_hash

                self._prev = genesis_hash(self._seed)
            else:
                self._prev = record.get("prev")
        seq = record.get("seq")
        if seq != self._next_seq:
            yield self.violation(
                record,
                f"audit seq {seq} breaks continuity (expected "
                f"{self._next_seq})",
                seq=seq, expected=self._next_seq,
            )
            self._next_seq = (seq + 1) if isinstance(seq, int) else (
                self._next_seq + 1
            )
        else:
            self._next_seq += 1
        prev = record.get("prev")
        if prev != self._prev:
            yield self.violation(
                record,
                f"audit entry {seq} does not chain: prev={str(prev)[:16]}... "
                f"but the previous hash is {str(self._prev)[:16]}...",
                seq=seq, claimed_prev=prev, expected_prev=self._prev,
            )
        recorded = record.get("hash")
        self._prev = recorded if isinstance(recorded, str) else self._prev


class CommandCausalityInvariant(Invariant):
    """Executed command counters are strictly increasing per sender."""

    name = "gs.command_causality"
    subsystem = "groundstation"

    def __init__(self) -> None:
        self._last: Dict[Tuple[str, str], int] = {}

    def observe(self, record: dict) -> Iterator[Violation]:
        if record.get("type") != "gs.command":
            return
        if record.get("verdict") != "executed":
            return
        key = (record.get("vehicle"), record.get("sender"))
        counter = record.get("counter")
        if not isinstance(counter, int):
            return
        last = self._last.get(key)
        if last is not None and counter <= last:
            yield self.violation(
                record,
                f"executed command counter {counter} from "
                f"{key[1]!r} on {key[0]!r} does not advance past {last} "
                f"(replay executed?)",
                vehicle=key[0], sender=key[1], counter=counter, last=last,
            )
        else:
            self._last[key] = counter
