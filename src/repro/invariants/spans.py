"""Span-layer invariants: the causal span discipline.

The span layer (:mod:`repro.telemetry.spans`) promises four things about
any trace it augments, and this checker holds it to all of them:

* **balanced** — every ``span.start`` is matched by exactly one
  ``span.end`` before end-of-trace, and no end arrives without a start;
* **strictly nested** — a span's parent is open when the span opens, and
  every child is closed before its parent closes (child intervals lie
  within the parent interval, since the clock invariant already pins
  stream order to simulated time);
* **deterministic ids** — every span id equals
  :func:`~repro.telemetry.spans.span_id` of the trace seed and the span
  record's own ``si``, so same-seed traces mint identical ids;
* **contiguous si** — span records carry their own gap-free counter,
  mirroring what ``clock.record_index`` checks for event records.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.invariants.base import Invariant, Violation

#: |dur_s - (end t - start t)| tolerance (both sides round to 6 places)
DUR_TOL_S = 1e-6


class _OpenSpan:
    """Book-keeping for one span between its start and end records."""

    __slots__ = ("record", "parent", "children")

    def __init__(self, record: dict, parent: Optional[str]) -> None:
        self.record = record
        self.parent = parent
        self.children = 0


class SpanDisciplineInvariant(Invariant):
    """Spans balance, nest strictly and carry deterministic ids."""

    name = "telemetry.spans"
    subsystem = "telemetry"

    def __init__(self) -> None:
        self._prefix: Optional[str] = None
        self._next_si = 0
        self._open: Dict[str, _OpenSpan] = {}

    def observe(self, record: dict) -> Iterator[Violation]:
        rtype = record.get("type")
        if rtype == "trace.meta":
            if self._prefix is None and "seed" in record:
                from repro.telemetry.spans import run_prefix

                self._prefix = run_prefix(record["seed"])
            return
        if rtype not in ("span.start", "span.end"):
            return

        si = record.get("si")
        if si != self._next_si:
            yield self.violation(
                record,
                f"span record si={si!r} is not contiguous "
                f"(expected {self._next_si})",
                expected_si=self._next_si,
            )
        # resync on the observed counter so one gap doesn't cascade
        self._next_si = (si + 1) if isinstance(si, int) else self._next_si + 1

        span = record.get("span")
        if rtype == "span.start":
            yield from self._observe_start(record, span, si)
        else:
            yield from self._observe_end(record, span)

    def _observe_start(
        self, record: dict, span: Optional[str], si
    ) -> Iterator[Violation]:
        if self._prefix is not None and isinstance(si, int):
            from repro.telemetry.spans import span_id

            expected = span_id(self._prefix, si)
            if span != expected:
                yield self.violation(
                    record,
                    f"span id {span!r} is not the deterministic id for "
                    f"si={si} (expected {expected!r})",
                    expected_id=expected,
                )
        if span in self._open:
            yield self.violation(
                record, f"span id {span!r} reused while still open"
            )
        parent = record.get("parent")
        if parent is not None:
            entry = self._open.get(parent)
            if entry is None:
                yield self.violation(
                    record,
                    f"span {span!r} opened under parent {parent!r}, "
                    "which is not open",
                    parent=parent,
                )
            else:
                entry.children += 1
        if span is not None:
            self._open[span] = _OpenSpan(record, parent)

    def _observe_end(
        self, record: dict, span: Optional[str]
    ) -> Iterator[Violation]:
        entry = self._open.pop(span, None)
        if entry is None:
            yield self.violation(
                record, f"span.end for {span!r} without an open span.start"
            )
            return
        if entry.children > 0:
            yield self.violation(
                record,
                f"span {span!r} closed before {entry.children} of its "
                "child span(s); children must close first",
                open_children=entry.children,
            )
        if record.get("kind") != entry.record.get("kind"):
            yield self.violation(
                record,
                f"span {span!r} closed as kind "
                f"{record.get('kind')!r}, opened as "
                f"{entry.record.get('kind')!r}",
            )
        dur = record.get("dur_s")
        t0, t1 = entry.record.get("t"), record.get("t")
        if (isinstance(dur, (int, float)) and isinstance(t0, (int, float))
                and isinstance(t1, (int, float))
                and abs(dur - round(t1 - t0, 6)) > DUR_TOL_S):
            yield self.violation(
                record,
                f"span {span!r} dur_s={dur} disagrees with its interval "
                f"[{t0}, {t1}]",
                interval_s=round(t1 - t0, 6),
            )
        if entry.parent is not None:
            parent = self._open.get(entry.parent)
            if parent is not None:
                parent.children -= 1

    def finish(self) -> Iterator[Violation]:
        # attributed to each span's *start* record: that is where the
        # leaked interval began, and what the self-test asserts on
        for entry in sorted(
            self._open.values(), key=lambda e: e.record.get("si", 0)
        ):
            record = entry.record
            yield self.violation(
                record,
                f"span {record.get('span')!r} "
                f"({record.get('kind')}:{record.get('name')}) "
                "never closed before end of trace",
                span=record.get("span"),
            )
