"""Differential replay oracle: re-execute a recorded trace and diff it.

A trace recorded with its :class:`~repro.runner.spec.RunSpec` embedded in
the ``trace.meta`` header is *self-describing*: the oracle rebuilds the
run from the spec's seed/plan/faults via
:func:`~repro.scenarios.factory.compose_run`, re-runs it with an
in-memory tracer, and compares the fresh record stream against the file
record by record (canonical JSON, so "equal" means byte-equal on disk).
Any divergence — a changed field, a missing record, extra records — is
reported with the index where the histories split.

:func:`check_trace` is the CLI entry point (``repro-worksite check``):
it folds the offline invariant sweep and the differential replay into
one structured, JSON-serialisable violation report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Mapping, Optional

from repro.invariants.engine import InvariantEngine
from repro.telemetry.writer import canonical_line, read_trace

#: report schema version (bumped when the report shape changes)
REPORT_SCHEMA = 1

#: how many record-level divergences a replay diff carries in full
DIVERGENCE_CAP = 5

#: how many violation dicts a report carries in full
VIOLATION_CAP = 100


def spec_from_meta(records: List[dict]) -> Optional[dict]:
    """The embedded RunSpec dict, if the trace header carries one."""
    if not records:
        return None
    meta = records[0]
    if meta.get("type") != "trace.meta":
        return None
    spec = meta.get("spec")
    return dict(spec) if isinstance(spec, Mapping) else None


def replay_records(records: List[dict]) -> List[dict]:
    """Re-execute the run described by the trace header, in memory.

    Reconstructs the scenario from the embedded spec, re-emits the header
    verbatim (minus the tracer-stamped ``v``/``i``/``t``/``type`` fields,
    which the fresh tracer stamps itself), and runs to the recorded
    horizon.  Raises :class:`ValueError` when the trace is not
    self-describing.
    """
    # imported lazily: the oracle sits under the tracer in the import
    # graph, and pool workers never need the composition stack
    from repro.runner.spec import RunSpec
    from repro.scenarios.factory import compose_run
    from repro.telemetry import tracer as trace

    spec_dict = spec_from_meta(records)
    if spec_dict is None:
        raise ValueError(
            "trace is not self-describing: no RunSpec embedded in "
            "trace.meta (record it with a current `repro-worksite trace`)"
        )
    spec = RunSpec.from_dict(spec_dict)
    prepared = compose_run(
        seed=spec.seed,
        horizon_s=spec.horizon_s,
        profile=spec.profile,
        plan=spec.plan,
        ids_family=spec.ids_family,
        overrides=dict(spec.overrides),
        faults=spec.faults,
    )
    # a span-augmented trace must replay with the span layer armed (and
    # closed at the horizon), or the diff would flag every span line
    spans = any(
        r.get("type") in ("span.start", "span.end") for r in records
    )
    tracer = trace.Tracer(
        prepared.scenario.sim, keep_records=True, spans=spans
    )
    meta_fields = {
        key: value for key, value in records[0].items()
        if key not in ("v", "i", "t", "type", "schema")
    }
    tracer.meta(**meta_fields)
    with trace.installed(tracer):
        prepared.scenario.run(spec.horizon_s)
        if prepared.scenario.groundstation is not None:
            # the recorded run closed its audit chain inside the traced
            # window; replay must do the same or the diff flags the tail
            prepared.scenario.groundstation.finalize()
    tracer.close()
    return tracer.records


def diff_records(
    recorded: List[dict],
    replayed: List[dict],
    *,
    cap: int = DIVERGENCE_CAP,
) -> dict:
    """Record-by-record canonical-JSON diff of two record streams."""
    divergences: List[dict] = []
    total = 0
    for index in range(max(len(recorded), len(replayed))):
        old = recorded[index] if index < len(recorded) else None
        new = replayed[index] if index < len(replayed) else None
        old_line = canonical_line(old) if old is not None else None
        new_line = canonical_line(new) if new is not None else None
        if old_line == new_line:
            continue
        total += 1
        if len(divergences) < cap:
            divergences.append({
                "i": index,
                "recorded": old_line,
                "replayed": new_line,
            })
    return {
        "recorded": len(recorded),
        "replayed": len(replayed),
        "divergences": total,
        "first_divergences": divergences,
        "ok": total == 0,
    }


def check_trace(
    path,
    *,
    replay: bool = True,
    invariants: Optional[List] = None,
) -> dict:
    """Full oracle pass over a trace file: invariants, then replay diff.

    Returns the violation report (see ``docs/testing.md`` for the shape);
    ``report["ok"]`` is the overall verdict.
    """
    records = read_trace(path)
    engine = InvariantEngine(invariants)
    engine.check(records)
    violations = [v.to_dict() for v in engine.violations]
    report = {
        "schema": REPORT_SCHEMA,
        "trace": str(path),
        "records": len(records),
        "invariants": {
            "checked": len(engine.invariants),
            "violations": len(violations),
            "by_invariant": engine.by_invariant(),
            "details": violations[:VIOLATION_CAP],
        },
    }
    if len(violations) > VIOLATION_CAP:
        report["invariants"]["truncated"] = len(violations) - VIOLATION_CAP
    if replay:
        if spec_from_meta(records) is None:
            report["replay"] = {
                "performed": False,
                "reason": "no RunSpec embedded in trace.meta",
                "ok": True,
            }
        else:
            fresh = replay_records(records)
            diff = diff_records(records, fresh)
            diff["performed"] = True
            report["replay"] = diff
    else:
        report["replay"] = {
            "performed": False, "reason": "disabled", "ok": True,
        }
    report["ok"] = engine.ok and report["replay"]["ok"]
    return report


def write_report(report: Mapping, path) -> str:
    """Write a violation report as stable, human-diffable JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(report, indent=2, sort_keys=True, allow_nan=False)
        + "\n",
        encoding="utf-8",
    )
    return str(target)
