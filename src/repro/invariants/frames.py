"""Frame-lifecycle invariants: causality and conservation of the
seal → tx → medium verdict → rx/drop pipeline.

The medium gives every transmitted frame exactly one verdict —
``frame.delivered`` or a ``frame.drop`` with a medium cause — and a frame
can only be received (``frame.rx``) after it was delivered.  So, per
``(src, dst, seq)`` flight key:

* a delivery or medium drop without a preceding ``frame.tx`` is a forged
  frame materialising out of thin air (causality);
* more verdicts than transmissions means a frame was counted twice
  (conservation; retransmissions raise the tx count, so a legitimate
  duplicate delivery never trips this);
* every drop cause must come from the declared taxonomy
  (:data:`repro.telemetry.schema.DROP_CAUSES`).

Link-layer drops are exempt from the tx-precedes rule where the lifecycle
says so: ``unassociated_tx`` frames were never aired at all.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.invariants.base import Invariant, Violation
from repro.telemetry.schema import DROP_CAUSES

FlightKey = Tuple[str, str, object]

#: drop causes emitted by the medium — the frame *was* transmitted
MEDIUM_CAUSES = frozenset({
    "dst_unknown", "dst_unpowered", "link_budget", "corrupted",
})

#: drop causes for frames that never reached the medium
_NEVER_AIRED = frozenset({"unassociated_tx"})


class FrameCausalityInvariant(Invariant):
    """Deliveries, receptions and medium drops trace back to a tx."""

    name = "frames.causality"
    subsystem = "comms"

    def __init__(self) -> None:
        self._tx: Dict[FlightKey, int] = {}
        self._verdicts: Dict[FlightKey, int] = {}
        self._delivered: Dict[FlightKey, int] = {}
        self._rx: Dict[FlightKey, int] = {}

    def observe(self, record: dict) -> Iterator[Violation]:
        rtype = record.get("type")
        if rtype == "frame.tx":
            key = (record.get("src"), record.get("dst"), record.get("seq"))
            self._tx[key] = self._tx.get(key, 0) + 1
            return
        if rtype == "frame.delivered":
            key = (record.get("src"), record.get("dst"), record.get("seq"))
            yield from self._verdict(record, key, "delivered")
            self._delivered[key] = self._delivered.get(key, 0) + 1
            return
        if rtype == "frame.drop":
            cause = record.get("cause")
            if cause in _NEVER_AIRED:
                return
            key = (record.get("src"), record.get("dst"), record.get("seq"))
            if cause in MEDIUM_CAUSES:
                yield from self._verdict(record, key, f"drop({cause})")
            elif key not in self._tx:
                # link-layer drops (duplicate, unassociated_rx,
                # retry_exhausted) still concern a frame that was sent
                yield self.violation(
                    record,
                    f"frame.drop({cause}) for never-transmitted frame "
                    f"{key[0]}->{key[1]} seq={key[2]}",
                    src=key[0], dst=key[1], seq=key[2], cause=cause,
                )
            return
        if rtype == "frame.rx":
            # rx names the receiving node; the flight key is src -> node
            key = (record.get("src"), record.get("node"), record.get("seq"))
            count = self._rx.get(key, 0) + 1
            self._rx[key] = count
            if count > self._delivered.get(key, 0):
                yield self.violation(
                    record,
                    f"frame.rx without delivery: {key[0]}->{key[1]} "
                    f"seq={key[2]} received {count}x, "
                    f"delivered {self._delivered.get(key, 0)}x",
                    src=key[0], dst=key[1], seq=key[2],
                )

    def _verdict(
        self, record: dict, key: FlightKey, what: str
    ) -> Iterator[Violation]:
        transmitted = self._tx.get(key, 0)
        count = self._verdicts.get(key, 0) + 1
        self._verdicts[key] = count
        if transmitted == 0:
            yield self.violation(
                record,
                f"forged frame: {what} of {key[0]}->{key[1]} seq={key[2]} "
                f"with no frame.tx",
                src=key[0], dst=key[1], seq=key[2],
            )
        elif count > transmitted:
            yield self.violation(
                record,
                f"conservation: {count} medium verdicts for "
                f"{transmitted} transmission(s) of {key[0]}->{key[1]} "
                f"seq={key[2]}",
                src=key[0], dst=key[1], seq=key[2],
                verdicts=count, transmitted=transmitted,
            )


class DropTaxonomyInvariant(Invariant):
    """Every drop cause belongs to the declared 10-cause taxonomy."""

    name = "frames.drop_taxonomy"
    subsystem = "comms"

    def observe(self, record: dict) -> Iterator[Violation]:
        if record.get("type") not in ("frame.drop", "record.drop"):
            return
        cause = record.get("cause")
        if cause not in DROP_CAUSES:
            yield self.violation(
                record,
                f"{record['type']} with unknown cause {cause!r}",
                cause=cause,
            )
