"""Runtime invariant engine: typed, per-subsystem contract checks.

Every invariant watches the structured trace record stream
(:mod:`repro.telemetry.schema`), which makes one engine serve both
modes:

* **online** — installed behind the ``REPRO_CHECK=1`` guard, fed each
  record as the tracer emits it (zero perturbation: records are checked
  after they are written, and the guard is one attribute load when off);
* **offline** — run over a recorded JSONL trace by the differential
  replay oracle (``repro-worksite check``).

The registry lives in :func:`repro.invariants.engine.default_invariants`;
see ``docs/testing.md`` for how to author a new invariant.
"""

from repro.invariants.base import Invariant, Violation, observe_all
from repro.invariants.engine import InvariantEngine, default_invariants

__all__ = [
    "Invariant",
    "InvariantEngine",
    "Violation",
    "default_invariants",
    "observe_all",
]
