"""SecureChannel record-layer invariants: nonce uniqueness, replay window.

Both invariants watch the ``record.seal`` / ``record.open`` stream per
channel *direction* (``node -> peer``).  The record nonce is a pure
function of the sequence number (:func:`nonce_from_sequence`), so nonce
uniqueness under one key is exactly sequence-number discipline:

* the sealer's sequence increments by exactly one per record — a gap is a
  skipped nonce, a repeat or regression is nonce reuse;
* the opener never accepts a sequence number twice, nor one that fell
  below the sliding replay window.

A rejoin (recovery re-handshake) replaces the channel and restarts its
sequence at 1 under fresh keys; both invariants treat ``seq == 1`` as an
epoch reset.  Plaintext records carry no nonce at all — the sealer-side
check skips them, and the opener-side check skips directions whose
reverse seal stream was observed as plaintext.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from repro.comms.crypto.secure_channel import SecureChannel
from repro.invariants.base import Invariant, Violation

Direction = Tuple[str, str]


class NonceSequenceInvariant(Invariant):
    """Sealed record sequence numbers increment by exactly one.

    Checked per ``(node, peer)`` direction over non-plaintext
    ``record.seal`` records; ``seq == 1`` starts a new epoch (rekey).
    """

    name = "crypto.nonce_sequence"
    subsystem = "comms.crypto"

    def __init__(self) -> None:
        self._last: Dict[Direction, int] = {}

    def observe(self, record: dict) -> Iterator[Violation]:
        if record.get("type") != "record.seal":
            return
        if record.get("profile") == "plaintext":
            return
        direction = (record.get("node"), record.get("peer"))
        seq = record.get("seq")
        if not isinstance(seq, int):
            yield self.violation(
                record, f"seal seq {seq!r} is not an integer",
                node=direction[0], peer=direction[1],
            )
            return
        last = self._last.get(direction)
        if seq == 1 or last is None:
            # first record of a channel epoch (fresh keys, fresh nonces)
            self._last[direction] = seq
            return
        if seq == last + 1:
            self._last[direction] = seq
            return
        if seq > last + 1:
            message = (
                f"skipped nonce: seal seq jumped {last} -> {seq} "
                f"on {direction[0]}->{direction[1]}"
            )
        else:
            message = (
                f"nonce reuse: seal seq regressed {last} -> {seq} "
                f"on {direction[0]}->{direction[1]}"
            )
        self._last[direction] = seq
        yield self.violation(
            record, message,
            node=direction[0], peer=direction[1],
            expected=last + 1, observed=seq,
        )


class ReplayWindowInvariant(Invariant):
    """Opened record sequence numbers are unique and above the window.

    A ``record.open`` whose seq was already accepted in the current epoch
    means a replayed record got through; one at or below
    ``max_seen - REPLAY_WINDOW`` means the sliding window stopped being
    enforced.  Directions whose reverse ``record.seal`` stream is
    plaintext are exempt (no replay protection is promised there).
    """

    name = "crypto.replay_window"
    subsystem = "comms.crypto"

    def __init__(self, window: int = SecureChannel.REPLAY_WINDOW) -> None:
        self.window = window
        self._seen: Dict[Direction, Set[int]] = {}
        self._max: Dict[Direction, int] = {}
        self._plaintext: Set[Direction] = set()

    def observe(self, record: dict) -> Iterator[Violation]:
        rtype = record.get("type")
        if rtype == "record.seal":
            if record.get("profile") == "plaintext":
                # the opener of this direction sees unprotected records
                self._plaintext.add((record.get("node"), record.get("peer")))
            elif record.get("seq") == 1:
                # a rejoin re-handshake restarted the sealer's epoch; the
                # opener's state resets too, even if this first record is
                # lost in transit (seal causally precedes any open)
                reverse = (record.get("peer"), record.get("node"))
                self._seen.pop(reverse, None)
                self._max.pop(reverse, None)
            return
        if rtype != "record.open":
            return
        node, peer = record.get("node"), record.get("peer")
        if (peer, node) in self._plaintext:
            return
        direction = (node, peer)
        seq = record.get("seq")
        if not isinstance(seq, int):
            yield self.violation(
                record, f"open seq {seq!r} is not an integer",
                node=node, peer=peer,
            )
            return
        if seq == 1:
            # epoch reset: rejoin re-handshake replaced the channel
            self._seen[direction] = {1}
            self._max[direction] = 1
            return
        seen = self._seen.setdefault(direction, set())
        top = self._max.get(direction, 0)
        if seq in seen:
            yield self.violation(
                record,
                f"replayed record accepted: seq {seq} opened twice "
                f"on {node}<-{peer}",
                node=node, peer=peer, seq=seq,
            )
            return
        if seq <= top - self.window:
            yield self.violation(
                record,
                f"record seq {seq} accepted below the replay window "
                f"(max seen {top}, window {self.window}) on {node}<-{peer}",
                node=node, peer=peer, seq=seq, max_seen=top,
            )
            return
        seen.add(seq)
        if seq > top:
            self._max[direction] = seq
        floor = self._max[direction] - self.window
        if len(seen) > 2 * self.window:
            self._seen[direction] = {s for s in seen if s > floor}
