"""Invariant and violation primitives.

An :class:`Invariant` is a stateful checker over the structured trace
record stream (:mod:`repro.telemetry.schema`).  Feeding it records one at
a time — online as the tracer emits them, or offline from a recorded
JSONL file — yields :class:`Violation` objects whenever the stream breaks
one of the system's own contracts.

Design constraints, shared with the tracer the engine rides on:

* **read-only** — an invariant may never mutate a record or touch the
  simulation; checking a run must leave its trace byte-identical
  (pinned by the golden-trace regression under ``REPRO_CHECK=1``);
* **deterministic** — violations carry simulated time and record index
  only, no wall clock, so a violation report is a pure function of the
  trace;
* **attributable** — every violation names its invariant, subsystem and
  the simulated time it was detected at, which is what the mutation
  self-test asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class Violation:
    """One detected contract breach, attributed to its invariant.

    ``t`` and ``index`` point at the record the breach was detected on
    (for end-of-trace checks, the last record seen).  ``context`` carries
    invariant-specific evidence — sequence numbers, link keys, mode names
    — and must stay JSON-serialisable.
    """

    invariant: str
    subsystem: str
    message: str
    t: float = 0.0
    index: Optional[int] = None
    context: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "subsystem": self.subsystem,
            "message": self.message,
            "t": self.t,
            "i": self.index,
            "context": dict(self.context),
        }


class Invariant:
    """Base class for one runtime invariant over the trace record stream.

    Subclasses set :attr:`name` (globally unique, ``subsystem.property``
    style) and :attr:`subsystem`, and implement :meth:`observe`; checks
    that only conclude at end-of-trace override :meth:`finish`.
    """

    #: unique invariant identifier, e.g. ``"crypto.nonce_sequence"``
    name: str = "invariant"
    #: the subsystem whose contract this checks, e.g. ``"comms.crypto"``
    subsystem: str = "sim"

    def observe(self, record: dict) -> Iterator[Violation]:
        """Check one record; yield violations detected at this record."""
        return iter(())

    def finish(self) -> Iterator[Violation]:
        """Conclude end-of-trace checks (conservation, open windows)."""
        return iter(())

    # -- helpers for subclasses ---------------------------------------------
    def violation(
        self, record: Optional[dict], message: str, **context
    ) -> Violation:
        """A violation attributed to ``record``'s sim time and index."""
        return Violation(
            invariant=self.name,
            subsystem=self.subsystem,
            message=message,
            t=float(record.get("t", 0.0)) if record else 0.0,
            index=record.get("i") if record else None,
            context=context,
        )


def observe_all(
    invariants: Iterable[Invariant], records: Iterable[dict]
) -> List[Violation]:
    """Run ``invariants`` over a full record stream, then finish them."""
    invariants = list(invariants)
    violations: List[Violation] = []
    for record in records:
        for invariant in invariants:
            violations.extend(invariant.observe(record))
    for invariant in invariants:
        violations.extend(invariant.finish())
    return violations
