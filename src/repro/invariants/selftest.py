"""Mutation-style self-test of the invariant engine.

An oracle that never fires is indistinguishable from one that works, so
the engine is tested the same way a test suite is mutation-tested: take
one known-clean trace, seed it with known violations — a skipped nonce,
an illegal mode jump, a forged delivery — and assert the engine flags
*every* seeded mutation with the correct invariant and sim-time
attribution.  One mutation per registered invariant keeps the registry
honestly covered: adding an invariant without a mutation here fails
``test_selftest_covers_registry``.

The base trace is deterministic (fixed seed, attack + fault campaign for
full record-type coverage), so mutation sites are stable across runs.
"""

from __future__ import annotations

import copy
from typing import Callable, List, Optional, Tuple

from repro.invariants.engine import InvariantEngine
from repro.invariants.modes import ALLOWED_TRANSITIONS

#: base-trace recipe: attack + fault campaign, so the trace carries seals,
#: opens, drops, mode transitions, service outages and in-window alerts
BASE_SEED = 11
BASE_HORIZON_S = 90.0

#: |mutated - expected| tolerance on the violation's sim-time attribution
ATTRIBUTION_TOL_S = 1e-6

MutationResult = Tuple[List[dict], float]
Mutator = Callable[[List[dict]], MutationResult]


def build_base_records() -> List[dict]:
    """One clean, fully featured record stream to mutate."""
    from repro.faults.campaigns import build_fault_campaign
    from repro.runner.spec import RunSpec
    from repro.scenarios.factory import compose_run
    from repro.telemetry import tracer as trace

    schedule = build_fault_campaign(
        "crash_brownout", start=15.0, duration=20.0
    )
    faults = tuple(fault.to_primitives() for fault in schedule.faults)
    spec = RunSpec.single(
        "rf_jamming", seed=BASE_SEED, horizon_s=BASE_HORIZON_S,
        start=10.0, duration=20.0, faults=faults,
        overrides={"groundstation_enabled": True},
    )
    prepared = compose_run(
        seed=spec.seed, horizon_s=spec.horizon_s, profile=spec.profile,
        plan=spec.plan, faults=spec.faults,
        overrides=dict(spec.overrides),
    )
    tracer = trace.Tracer(prepared.scenario.sim, keep_records=True)
    tracer.meta(
        seed=spec.seed, profile=spec.profile, horizon_s=spec.horizon_s,
        campaign=spec.campaign, spec=spec.to_dict(),
    )
    with trace.installed(tracer):
        prepared.scenario.run(spec.horizon_s)
        # close the audit chain inside the traced window so the gs.audit
        # stream (and its close entry) is part of the base records
        prepared.scenario.groundstation.finalize()
    return tracer.records


# -- mutation helpers ---------------------------------------------------------
def _renumber(records: List[dict]) -> List[dict]:
    """Restore contiguous record indices after inserts/deletes, so only
    the intended invariant fires."""
    for index, record in enumerate(records):
        record["i"] = index
    return records


def _find(
    records: List[dict], predicate: Callable[[dict], bool],
    what: str, start: int = 0,
) -> int:
    for index in range(start, len(records)):
        if predicate(records[index]):
            return index
    raise AssertionError(
        f"self-test base trace has no mutation site for {what}; "
        f"re-tune the base recipe in repro.invariants.selftest"
    )


# -- the mutations ------------------------------------------------------------
def _skipped_nonce(records: List[dict]) -> MutationResult:
    index = _find(
        records,
        lambda r: (r.get("type") == "record.seal"
                   and r.get("profile") != "plaintext"
                   and isinstance(r.get("seq"), int) and r["seq"] >= 2),
        "a protected record.seal with seq >= 2",
    )
    records[index]["seq"] += 5
    return records, records[index]["t"]


def _replayed_record(records: List[dict]) -> MutationResult:
    index = _find(
        records,
        lambda r: (r.get("type") == "record.open"
                   and isinstance(r.get("seq"), int) and r["seq"] >= 2),
        "a record.open with seq >= 2",
    )
    records.insert(index + 1, dict(records[index]))
    return _renumber(records), records[index]["t"]


def _illegal_mode_jump(records: List[dict]) -> MutationResult:
    index = _find(
        records, lambda r: r.get("type") == "mode.transition",
        "a mode.transition",
    )
    prev = records[index]["prev"]
    records[index]["mode"] = next(
        mode for mode in ("recovering", "nominal", "degraded")
        if mode not in ALLOWED_TRANSITIONS[prev]
    )
    return records, records[index]["t"]


def _rto_without_outage(records: List[dict]) -> MutationResult:
    last = records[-1]
    records.append({
        "v": last["v"], "i": len(records), "t": last["t"],
        "type": "mode.transition", "machine": "ghost",
        "mode": "safe_stop", "prev": "nominal",
        "reason": "lidar:rto_exceeded",
    })
    return records, last["t"]


def _forged_delivery(records: List[dict]) -> MutationResult:
    index = _find(
        records, lambda r: r.get("type") == "frame.delivered",
        "a frame.delivered",
    )
    forged = dict(records[index])
    forged["src"] = "ghost"
    records.insert(index + 1, forged)
    return _renumber(records), forged["t"]


def _double_delivery(records: List[dict]) -> MutationResult:
    tx_counts = {}
    for record in records:
        if record.get("type") == "frame.tx":
            key = (record["src"], record["dst"], record["seq"])
            tx_counts[key] = tx_counts.get(key, 0) + 1
    index = _find(
        records,
        lambda r: (r.get("type") == "frame.delivered"
                   and tx_counts.get((r["src"], r["dst"], r["seq"])) == 1),
        "a singly-transmitted frame.delivered",
    )
    records.insert(index + 1, dict(records[index]))
    return _renumber(records), records[index]["t"]


def _unknown_drop_cause(records: List[dict]) -> MutationResult:
    index = _find(
        records, lambda r: r.get("type") == "frame.drop", "a frame.drop",
    )
    records[index]["cause"] = "gremlins"
    return records, records[index]["t"]


def _clock_regression(records: List[dict]) -> MutationResult:
    index = _find(
        records,
        lambda r: r.get("type") == "frame.tx" and r.get("t", 0.0) > 50.0,
        "a frame.tx past t=50",
    )
    records[index]["t"] = round(records[index]["t"] - 50.0, 6)
    return records, records[index]["t"]


def _dropped_record(records: List[dict]) -> MutationResult:
    index = _find(
        records,
        lambda r: r.get("type") in ("mission.phase", "safety.intervention"),
        "an untracked record type to excise",
        start=2,
    )
    del records[index]
    # indices NOT renumbered: the gap is the point
    return records, records[index]["t"]


def _orphan_alert(records: List[dict]) -> MutationResult:
    # before the first attack window (t=0 keeps the clock monotone)
    records.insert(1, {
        "v": records[0]["v"], "i": 1, "t": 0.0, "type": "ids.alert",
        "detector": "sig", "alert_type": "jamming_suspected",
        "confidence": 0.9, "in_window": True, "latency_s": 1.0,
        "window": "rf_jamming",
    })
    return _renumber(records), 0.0


# -- mutations discovered through fuzzer shrink output ------------------------
# These three came out of delta-debugging seeded failures with
# ``repro.fuzz.shrink``: each is the minimal record-stream edit the
# shrinker converged on for its invariant.  They are shared with
# :mod:`repro.fuzz.selftest`, which re-injects them through the fuzzer's
# evaluator and proves shrinking a failing spec preserves the triggering
# invariant end-to-end.

def _nonce_regression(records: List[dict]) -> MutationResult:
    index = _find(
        records,
        lambda r: (r.get("type") == "record.seal"
                   and r.get("profile") != "plaintext"
                   and isinstance(r.get("seq"), int) and r["seq"] >= 3),
        "a protected record.seal with seq >= 3",
    )
    # seq-1 was the previous seal on this direction: an exact re-seal of
    # an already-used nonce, the sharpest form of reuse
    records[index]["seq"] -= 1
    return records, records[index]["t"]


def _broken_mode_chain(records: List[dict]) -> MutationResult:
    index = _find(
        records,
        lambda r: (r.get("type") == "mode.transition"
                   and r.get("prev") != "recovering"),
        "a mode.transition whose prev is not 'recovering'",
    )
    # the claimed prev no longer chains onto the machine's observed mode
    records[index]["prev"] = "recovering"
    return records, records[index]["t"]


def _unclosed_span(records: List[dict]) -> MutationResult:
    # a span.start with the correct deterministic id (so only the
    # balance check fires) that no span.end ever closes
    from repro.telemetry.spans import run_prefix, span_id

    last = records[-1]
    records.append({
        "v": last["v"], "si": 0, "t": last["t"], "type": "span.start",
        "span": span_id(run_prefix(BASE_SEED), 0),
        "kind": "fault", "name": "ghost-window",
    })
    return records, last["t"]


def _overlapping_span(records: List[dict]) -> MutationResult:
    # parent closes while its child is still open: the one ordering the
    # strict-nesting rule forbids (ids and si stay consistent so only
    # the nesting check fires)
    from repro.telemetry.spans import run_prefix, span_id

    last = records[-1]
    t = last["t"]
    prefix = run_prefix(BASE_SEED)
    parent, child = span_id(prefix, 0), span_id(prefix, 1)
    records.extend([
        {"v": last["v"], "si": 0, "t": t, "type": "span.start",
         "span": parent, "kind": "attack", "name": "outer"},
        {"v": last["v"], "si": 1, "t": t, "type": "span.start",
         "span": child, "parent": parent, "kind": "frame", "name": "inner"},
        {"v": last["v"], "si": 2, "t": t, "type": "span.end",
         "span": parent, "kind": "attack", "dur_s": 0.0},
        {"v": last["v"], "si": 3, "t": t, "type": "span.end",
         "span": child, "kind": "frame", "dur_s": 0.0},
    ])
    return records, t


def _latency_mismatch(records: List[dict]) -> MutationResult:
    index = _find(
        records,
        lambda r: (r.get("type") == "ids.alert" and r.get("in_window")
                   and r.get("latency_s") is not None),
        "an in-window ids.alert with a latency",
    )
    records[index]["latency_s"] = round(records[index]["latency_s"] + 7.0, 6)
    return records, records[index]["t"]


def _broken_audit_chain(records: List[dict]) -> MutationResult:
    index = _find(
        records,
        lambda r: (r.get("type") == "gs.audit"
                   and isinstance(r.get("seq"), int) and r["seq"] >= 1),
        "a gs.audit record with seq >= 1",
    )
    # the entry no longer chains onto its predecessor's hash
    records[index]["prev"] = "0" * 64
    return records, records[index]["t"]


def _replayed_command_executed(records: List[dict]) -> MutationResult:
    first = _find(
        records,
        lambda r: (r.get("type") == "gs.command"
                   and r.get("verdict") == "executed"),
        "an executed gs.command",
    )
    second = _find(
        records,
        lambda r: (r.get("type") == "gs.command"
                   and r.get("verdict") == "executed"
                   and r.get("vehicle") == records[first]["vehicle"]
                   and r.get("sender") == records[first]["sender"]),
        "a second executed gs.command from the same sender",
        start=first + 1,
    )
    # the replay window somehow let an old counter execute again
    records[second]["counter"] = records[first]["counter"]
    return records, records[second]["t"]


#: (name, expected invariant, mutator) — at least one per registered invariant
MUTATIONS: List[Tuple[str, str, Mutator]] = [
    ("skipped_nonce", "crypto.nonce_sequence", _skipped_nonce),
    ("replayed_record", "crypto.replay_window", _replayed_record),
    ("illegal_mode_jump", "modes.transition_legality", _illegal_mode_jump),
    ("rto_without_outage", "modes.rto_ordering", _rto_without_outage),
    ("forged_delivery", "frames.causality", _forged_delivery),
    ("double_delivery", "frames.causality", _double_delivery),
    ("unknown_drop_cause", "frames.drop_taxonomy", _unknown_drop_cause),
    ("clock_regression", "clock.monotonic", _clock_regression),
    ("dropped_record", "clock.record_index", _dropped_record),
    ("orphan_alert", "ids.alert_attribution", _orphan_alert),
    ("nonce_regression", "crypto.nonce_sequence", _nonce_regression),
    ("broken_mode_chain", "modes.transition_legality", _broken_mode_chain),
    ("latency_mismatch", "ids.alert_attribution", _latency_mismatch),
    ("unclosed_span", "telemetry.spans", _unclosed_span),
    ("overlapping_span", "telemetry.spans", _overlapping_span),
    ("broken_audit_chain", "gs.audit_chain", _broken_audit_chain),
    ("replayed_command_executed", "gs.command_causality",
     _replayed_command_executed),
]


def run_selftest(records: Optional[List[dict]] = None) -> dict:
    """Seed every known violation; assert the engine flags each one.

    Returns a JSON-serialisable report.  ``ok`` requires the base trace
    to be clean *and* every mutation to be detected by its expected
    invariant at the mutated record's sim time.
    """
    base = records if records is not None else build_base_records()
    baseline = InvariantEngine()
    baseline.check(base)
    results = []
    for name, expected, mutate in MUTATIONS:
        mutated, expected_t = mutate(copy.deepcopy(base))
        engine = InvariantEngine()
        engine.check(mutated)
        hits = [v for v in engine.violations if v.invariant == expected]
        attributed = [
            v for v in hits if abs(v.t - expected_t) <= ATTRIBUTION_TOL_S
        ]
        results.append({
            "mutation": name,
            "expected_invariant": expected,
            "expected_t": expected_t,
            "detected": bool(hits),
            "attributed": bool(attributed),
            "violations": len(engine.violations),
            "flagged": sorted({v.invariant for v in engine.violations}),
        })
    detected = sum(1 for r in results if r["detected"] and r["attributed"])
    return {
        "schema": 1,
        "base_records": len(base),
        "base_violations": len(baseline.violations),
        "mutations": len(results),
        "detected": detected,
        "results": results,
        "ok": not baseline.violations and detected == len(results),
    }
