"""Env-gated counters and timers for the per-frame hot path.

Design constraints:

* **near-zero overhead when off** — instrumented sites guard with a single
  module-attribute check (``if counters.ACTIVE:``), no function call, no
  allocation;
* **deterministic** — counters observe the simulation, they never feed back
  into it, so enabling them cannot change RNG draws, event ordering or any
  metric (the byte-identical determinism guarantee is unaffected);
* **process-local** — the registry is a module singleton; sweep workers in
  other processes carry their own.

Enable with ``REPRO_PERF=1`` in the environment (read once at import) or
programmatically with :func:`enable`.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

#: instrumented sites guard on this module attribute; flipped by enable()
ACTIVE: bool = os.environ.get("REPRO_PERF", "") not in ("", "0")

_counts: Dict[str, int] = {}
_timings: Dict[str, Tuple[int, float]] = {}


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return ACTIVE


def enable(on: bool = True) -> None:
    """Turn instrumentation on/off at runtime (overrides ``REPRO_PERF``)."""
    global ACTIVE
    ACTIVE = bool(on)


def reset() -> None:
    """Drop all recorded counters and timings."""
    _counts.clear()
    _timings.clear()


def incr(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` (call only under an ``ACTIVE`` guard)."""
    _counts[name] = _counts.get(name, 0) + n


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Accumulate wall-clock time under ``name``; no-op when disabled."""
    if not ACTIVE:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        calls, total = _timings.get(name, (0, 0.0))
        _timings[name] = (calls + 1, total + (time.perf_counter() - t0))


def snapshot() -> dict:
    """Counters, timings and crypto-cache statistics as a plain dict."""
    from repro.comms.crypto.primitives import _cached_keystream

    info = _cached_keystream.cache_info()
    return {
        "counters": dict(_counts),
        "timers": {
            name: {"calls": calls, "total_s": round(total, 6)}
            for name, (calls, total) in _timings.items()
        },
        "keystream_cache": {
            "hits": info.hits,
            "misses": info.misses,
            "size": info.currsize,
        },
    }


def batch_summary() -> Dict[str, float]:
    """Derived statistics of the batched/vectorised kernels.

    Ratios are computed from the raw counters (average live transmissions
    per vectorised interference sweep, average candidate trees per numpy
    canopy sweep, average records per AEAD batch, cache hit rates) so a
    profile run shows at a glance whether the batch paths actually engage
    and how large their batches are.  Returns an empty dict when none of
    the batch counters fired.
    """
    c = _counts
    out: Dict[str, float] = {}

    def ratio(key: str, num: str, den: str) -> None:
        d = c.get(den, 0)
        if d:
            out[key] = round(c.get(num, 0) / d, 2)

    ratio("interference.live_per_batch_sweep",
          "medium.interference_batch_live", "medium.interference_batch_queries")
    ratio("canopy.trees_per_batch_sweep",
          "world.canopy_batch_trees", "world.canopy_batch_sweeps")
    ratio("crypto.records_per_seal_batch",
          "crypto.seal_batch_frames", "crypto.seal_batches")
    ratio("crypto.records_per_open_batch",
          "crypto.open_batch_frames", "crypto.open_batches")
    hits = c.get("medium.query_cache_hit", 0)
    queries = c.get("medium.interference_queries", 0)
    if queries:
        out["interference.query_cache_hit_rate"] = round(hits / queries, 3)
    canopy_hits = c.get("world.canopy_cache_hit", 0)
    canopy_total = canopy_hits + c.get("world.canopy_cache_miss", 0)
    if canopy_total:
        out["canopy.memo_hit_rate"] = round(canopy_hits / canopy_total, 3)
    reuse = c.get("engine.timer_slot_reuse", 0)
    if reuse:
        out["engine.timer_slot_reuse"] = reuse
    return out


def report() -> str:
    """Human-readable one-line-per-metric report."""
    snap = snapshot()
    lines = []
    for name in sorted(snap["counters"]):
        lines.append(f"{name:<40} {snap['counters'][name]}")
    for name in sorted(snap["timers"]):
        entry = snap["timers"][name]
        per_call_us = (
            entry["total_s"] / entry["calls"] * 1e6 if entry["calls"] else 0.0
        )
        lines.append(
            f"{name:<40} {entry['calls']} calls, "
            f"{entry['total_s'] * 1e3:.2f} ms total, {per_call_us:.2f} us/call"
        )
    cache = snap["keystream_cache"]
    lines.append(
        f"{'crypto.keystream_cache':<40} {cache['hits']} hits, "
        f"{cache['misses']} misses, {cache['size']} entries"
    )
    return "\n".join(lines)
