"""Near-zero-overhead performance instrumentation.

The hot per-frame pipeline (medium → link budget → AEAD) carries optional
counters and timers that cost one module-attribute check when disabled.
Enable them with the ``REPRO_PERF=1`` environment variable or
:func:`repro.perf.counters.enable`; read them with
:func:`repro.perf.counters.snapshot` or the ``repro-worksite profile``
subcommand.
"""

from repro.perf.counters import (
    enable,
    enabled,
    incr,
    report,
    reset,
    snapshot,
    timed,
)

__all__ = [
    "enable",
    "enabled",
    "incr",
    "report",
    "reset",
    "snapshot",
    "timed",
]
