"""Distribution-divergence metrics for simulation validation.

Built on scipy where it helps (two-sample KS with p-value) and implemented
directly where the construction matters (histogram KL with smoothing,
empirical Wasserstein-1).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


def ks_statistic(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Two-sample Kolmogorov-Smirnov statistic and p-value."""
    if len(a) == 0 or len(b) == 0:
        raise ValueError("KS requires non-empty samples")
    result = scipy_stats.ks_2samp(np.asarray(a), np.asarray(b))
    return float(result.statistic), float(result.pvalue)


def wasserstein(a: Sequence[float], b: Sequence[float]) -> float:
    """Empirical Wasserstein-1 (earth mover's) distance."""
    if len(a) == 0 or len(b) == 0:
        raise ValueError("Wasserstein requires non-empty samples")
    return float(scipy_stats.wasserstein_distance(np.asarray(a), np.asarray(b)))


def kl_divergence(
    a: Sequence[float],
    b: Sequence[float],
    *,
    bins: int = 32,
    smoothing: float = 1e-6,
) -> float:
    """KL(P_a || P_b) over a shared histogram with Laplace smoothing.

    Symmetric treatment of support: bins span the union of both samples.
    """
    a_arr, b_arr = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    if a_arr.size == 0 or b_arr.size == 0:
        raise ValueError("KL requires non-empty samples")
    lo = min(a_arr.min(), b_arr.min())
    hi = max(a_arr.max(), b_arr.max())
    if lo == hi:
        return 0.0
    edges = np.linspace(lo, hi, bins + 1)
    p, _ = np.histogram(a_arr, bins=edges)
    q, _ = np.histogram(b_arr, bins=edges)
    p = p.astype(float) + smoothing
    q = q.astype(float) + smoothing
    p /= p.sum()
    q /= q.sum()
    return float(np.sum(p * np.log(p / q)))
