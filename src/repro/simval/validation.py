"""The validation procedure: observables, tolerances, verdicts.

Per observable, the procedure compares the simulation's sample against the
reference sample with all three divergences and checks declared tolerances.
A simulation is *valid for purpose* when every observable passes — the
systematic component-wise validation Section III-D calls for (virtual
sensor, environmental factors, movement patterns, each separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.simval.metrics import kl_divergence, ks_statistic, wasserstein


@dataclass(frozen=True)
class ObservableSpec:
    """Declared tolerance for one observable.

    Attributes
    ----------
    name:
        Observable name (e.g. ``"detection_range_m"``).
    max_ks:
        Maximum accepted KS statistic.
    max_wasserstein:
        Maximum accepted Wasserstein-1 distance (observable units).
    max_kl:
        Maximum accepted histogram KL divergence.
    """

    name: str
    max_ks: float = 0.25
    max_wasserstein: float = 8.0
    max_kl: float = 1.0


@dataclass(frozen=True)
class ValidationResult:
    """Verdict for one observable."""

    name: str
    ks: float
    ks_pvalue: float
    wasserstein: float
    kl: float
    passed: bool
    reasons: tuple = ()


@dataclass
class ValidationReport:
    """The full validation report."""

    results: List[ValidationResult] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return all(r.passed for r in self.results)

    def failed(self) -> List[ValidationResult]:
        return [r for r in self.results if not r.passed]

    def worst_observable(self) -> Optional[ValidationResult]:
        if not self.results:
            return None
        return max(self.results, key=lambda r: r.ks)


def validate_observables(
    sim_samples: Dict[str, Sequence[float]],
    reference_samples: Dict[str, Sequence[float]],
    specs: Sequence[ObservableSpec],
) -> ValidationReport:
    """Run the comparison for every declared observable.

    Raises
    ------
    KeyError
        When a spec names an observable missing from either sample set.
    """
    report = ValidationReport()
    for spec in specs:
        sim = list(sim_samples[spec.name])
        ref = list(reference_samples[spec.name])
        ks, p = ks_statistic(sim, ref)
        w = wasserstein(sim, ref)
        kl = kl_divergence(sim, ref)
        reasons = []
        if ks > spec.max_ks:
            reasons.append(f"KS {ks:.3f} > {spec.max_ks}")
        if w > spec.max_wasserstein:
            reasons.append(f"W1 {w:.2f} > {spec.max_wasserstein}")
        if kl > spec.max_kl:
            reasons.append(f"KL {kl:.2f} > {spec.max_kl}")
        report.results.append(
            ValidationResult(
                name=spec.name,
                ks=ks,
                ks_pvalue=p,
                wasserstein=w,
                kl=kl,
                passed=not reasons,
                reasons=tuple(reasons),
            )
        )
    return report
