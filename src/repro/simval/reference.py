"""The reference model standing in for field measurements.

The paper notes real forestry datasets do not exist, so validation must
bootstrap from surrogates.  The reference model generates the same
observables as the simulator's sensor stack — detection range at first
confirm, camera quality vs range, GNSS error — from *independent*
parameterisations (different falloff shape, heavier noise tails), playing
the role of the field campaign the simulation must match within tolerance.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class ReferenceModel:
    """Parameterisation of the surrogate field data.

    Attributes
    ----------
    detection_range_mean / detection_range_std:
        First-detection range of a walking person, metres (lognormal-ish).
    gnss_error_sigma:
        Horizontal GNSS error, metres (with occasional multipath outliers).
    quality_falloff_range:
        Range at which image quality halves in the field data.
    """

    detection_range_mean: float = 32.0
    detection_range_std: float = 9.0
    gnss_error_sigma: float = 0.9
    multipath_rate: float = 0.05
    quality_falloff_range: float = 38.0


def reference_detection_samples(
    model: ReferenceModel, n: int, seed: int = 0
) -> List[float]:
    """First-detection ranges from the reference model."""
    rng = random.Random(seed)
    samples = []
    mu = math.log(
        model.detection_range_mean**2
        / math.sqrt(model.detection_range_mean**2 + model.detection_range_std**2)
    )
    sigma = math.sqrt(
        math.log(1.0 + (model.detection_range_std / model.detection_range_mean) ** 2)
    )
    for _ in range(n):
        samples.append(rng.lognormvariate(mu, sigma))
    return samples


def reference_gnss_errors(model: ReferenceModel, n: int, seed: int = 1) -> List[float]:
    """Horizontal GNSS errors with multipath outliers."""
    rng = random.Random(seed)
    samples = []
    for _ in range(n):
        if rng.random() < model.multipath_rate:
            samples.append(abs(rng.gauss(0.0, 5.0 * model.gnss_error_sigma)))
        else:
            samples.append(abs(rng.gauss(0.0, model.gnss_error_sigma)))
    return samples


def reference_quality_curve(
    model: ReferenceModel, ranges: Sequence[float], seed: int = 2
) -> List[float]:
    """Image-quality observations at given ranges (field curve + noise)."""
    rng = random.Random(seed)
    out = []
    for r in ranges:
        base = 1.0 / (1.0 + (r / model.quality_falloff_range) ** 1.8)
        out.append(max(0.0, min(1.0, base + rng.gauss(0.0, 0.06))))
    return out
