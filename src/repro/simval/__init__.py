"""Simulation-validity tooling (Section III-D).

"One of the crucial challenges we are targeting is ensuring the validity and
representativeness of the simulation data compared to the real world."

The toolchain: a *reference model* stands in for field measurements (a
differently-parameterised, noisier generator of the same observables); the
*validation procedure* compares distributions of sim observables against the
reference with KS / Wasserstein / histogram-KL statistics per observable and
issues a pass/fail verdict against declared tolerances.
"""

from repro.simval.metrics import ks_statistic, wasserstein, kl_divergence
from repro.simval.reference import ReferenceModel, reference_detection_samples
from repro.simval.validation import (
    ObservableSpec,
    ValidationReport,
    ValidationResult,
    validate_observables,
)

__all__ = [
    "ks_statistic",
    "wasserstein",
    "kl_divergence",
    "ReferenceModel",
    "reference_detection_samples",
    "ObservableSpec",
    "ValidationReport",
    "ValidationResult",
    "validate_observables",
]
