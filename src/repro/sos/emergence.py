"""Emergent-interaction detection over the simulation event log.

Waller & Craddock's "emergent behavior" dimension: "after deployment, SoS
behave and function in a non-localized manner".  The detector finds
*cross-system event cascades* — windows where events from different source
systems cluster far above their independent base rates — and flags cascades
touching safety events as emergent safety-relevant interactions.

This is deliberately a black-box log analysis: emergence is what the
designers did not model, so it must be found from behaviour, not structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.sim.events import EventCategory, EventLog, SimEvent


@dataclass(frozen=True)
class EmergentInteraction:
    """One detected cross-system cascade."""

    start: float
    end: float
    sources: Sequence[str]
    kinds: Sequence[str]
    event_count: int
    safety_relevant: bool
    density_ratio: float  # cascade rate over base rate


class EmergenceDetector:
    """Sliding-window cascade detection.

    Parameters
    ----------
    window_s:
        Cascade window length.
    min_sources:
        Minimum distinct source systems for a window to count as
        cross-system.
    density_threshold:
        Event rate in-window must exceed this multiple of the log's overall
        rate.
    system_of:
        Maps an event source string to its owning system (default: prefix
        before the first ``.`` or ``-``).
    """

    SAFETY_KINDS = {
        "safe_stop", "safety_violation", "near_miss", "geofence_breach",
        "estop_triggered",
    }

    def __init__(
        self,
        *,
        window_s: float = 10.0,
        min_sources: int = 3,
        density_threshold: float = 3.0,
        system_of=None,
    ) -> None:
        self.window_s = window_s
        self.min_sources = min_sources
        self.density_threshold = density_threshold
        self.system_of = system_of or self._default_system_of

    @staticmethod
    def _default_system_of(source: str) -> str:
        for sep in (".", "-"):
            if sep in source:
                return source.split(sep, 1)[0]
        return source

    def detect(self, log: EventLog, horizon_s: float) -> List[EmergentInteraction]:
        """Scan the log for emergent cross-system cascades."""
        events = [e for e in log if e.category is not EventCategory.MOVEMENT]
        if not events or horizon_s <= 0.0:
            return []
        base_rate = len(events) / horizon_s
        interactions: List[EmergentInteraction] = []
        i = 0
        n = len(events)
        last_end = -1.0
        while i < n:
            start_time = events[i].time
            if start_time < last_end:
                i += 1
                continue
            window: List[SimEvent] = []
            j = i
            while j < n and events[j].time <= start_time + self.window_s:
                window.append(events[j])
                j += 1
            systems = {self.system_of(e.source) for e in window}
            rate = len(window) / self.window_s
            if (
                len(systems) >= self.min_sources
                and base_rate > 0.0
                and rate / base_rate >= self.density_threshold
            ):
                kinds = sorted({e.kind for e in window})
                interactions.append(
                    EmergentInteraction(
                        start=start_time,
                        end=window[-1].time,
                        sources=sorted(systems),
                        kinds=kinds,
                        event_count=len(window),
                        safety_relevant=bool(set(kinds) & self.SAFETY_KINDS),
                        density_ratio=rate / base_rate,
                    )
                )
                last_end = start_time + self.window_s
                i = j
            else:
                i += 1
        return interactions

    def safety_relevant(
        self, log: EventLog, horizon_s: float
    ) -> List[EmergentInteraction]:
        return [x for x in self.detect(log, horizon_s) if x.safety_relevant]
