"""SoS composition: constituent systems and their interfaces.

A constituent system carries its own operator (management authority),
technology stack, security policy and update cadence — the attributes whose
*differences* make SoS security hard (Waller & Craddock).  Interfaces are the
dependency edges along which compromise and failure propagate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx


@dataclass(frozen=True)
class ConstituentSystem:
    """One constituent system of the worksite SoS.

    Attributes
    ----------
    name:
        System name (matches item-model system names).
    operator:
        Managing organisation (management independence dimension).
    vendor:
        Technology supplier (heterogeneity).
    security_policy:
        Named policy regime the system follows.
    update_cadence_days:
        How often the operator patches (evolutionary development).
    location:
        Deployment location tag (geographic distribution).
    autonomy:
        "autonomous", "remote", or "manual" (operational independence).
    safety_critical:
        Hosts safety functions.
    """

    name: str
    operator: str
    vendor: str
    security_policy: str
    update_cadence_days: float
    location: str
    autonomy: str
    safety_critical: bool = False


@dataclass(frozen=True)
class Interface:
    """A dependency interface between two constituent systems."""

    name: str
    provider: str
    consumer: str
    service: str  # e.g. "detection_relay", "command", "telemetry"
    criticality: str = "medium"  # low / medium / high / safety


class SystemOfSystems:
    """The composed SoS with dependency analysis."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.systems: Dict[str, ConstituentSystem] = {}
        self.interfaces: List[Interface] = []
        self._graph = nx.DiGraph()

    def add_system(self, system: ConstituentSystem) -> ConstituentSystem:
        if system.name in self.systems:
            raise ValueError(f"duplicate system {system.name!r}")
        self.systems[system.name] = system
        self._graph.add_node(system.name)
        return system

    def add_interface(self, interface: Interface) -> Interface:
        for endpoint in (interface.provider, interface.consumer):
            if endpoint not in self.systems:
                raise ValueError(f"interface references unknown system {endpoint!r}")
        self.interfaces.append(interface)
        # edge direction: provider -> consumer (failure flows downstream)
        self._graph.add_edge(
            interface.provider, interface.consumer,
            service=interface.service, criticality=interface.criticality,
        )
        return interface

    # -- analysis ----------------------------------------------------------
    def dependents_of(self, system: str) -> Set[str]:
        """Systems (transitively) depending on ``system``."""
        if system not in self._graph:
            return set()
        return set(nx.descendants(self._graph, system))

    def single_points_of_failure(self) -> List[str]:
        """Systems whose loss cuts off a safety-critical consumer.

        A provider is an SPOF when some safety-critical system transitively
        depends on it through a chain of high- or safety-criticality
        interfaces (telemetry-grade links do not make their provider an SPOF).
        """
        critical = nx.DiGraph()
        critical.add_nodes_from(self._graph.nodes)
        for a, b, data in self._graph.edges(data=True):
            if data.get("criticality") in ("high", "safety"):
                critical.add_edge(a, b)
        safety_systems = {
            name for name, system in self.systems.items() if system.safety_critical
        }
        spofs = []
        for name in self.systems:
            downstream = set(nx.descendants(critical, name))
            if downstream & safety_systems:
                spofs.append(name)
        return spofs

    def safety_interfaces(self) -> List[Interface]:
        return [i for i in self.interfaces if i.criticality == "safety"]

    def cross_operator_interfaces(self) -> List[Interface]:
        """Interfaces crossing a management boundary."""
        crossing = []
        for interface in self.interfaces:
            provider = self.systems[interface.provider]
            consumer = self.systems[interface.consumer]
            if provider.operator != consumer.operator:
                crossing.append(interface)
        return crossing

    def compromise_reach(self, entry_system: str) -> Set[str]:
        """Systems reachable (hence at risk) from a compromised entry."""
        return self.dependents_of(entry_system) | {entry_system}


def worksite_sos() -> SystemOfSystems:
    """The Figure 1 worksite as an SoS (default composition)."""
    sos = SystemOfSystems("agrarsense-worksite")
    sos.add_system(ConstituentSystem(
        "forwarder", operator="forestry-contractor", vendor="komatsu",
        security_policy="machine-oem", update_cadence_days=90, location="site",
        autonomy="autonomous", safety_critical=True,
    ))
    sos.add_system(ConstituentSystem(
        "drone", operator="drone-service-provider", vendor="dji-like",
        security_policy="consumer-fw", update_cadence_days=30, location="site",
        autonomy="autonomous", safety_critical=True,
    ))
    sos.add_system(ConstituentSystem(
        "harvester", operator="forestry-contractor", vendor="komatsu",
        security_policy="machine-oem", update_cadence_days=180, location="site",
        autonomy="manual", safety_critical=False,
    ))
    sos.add_system(ConstituentSystem(
        "control_station", operator="forestry-contractor", vendor="integrator",
        security_policy="it-corporate", update_cadence_days=14, location="site-edge",
        autonomy="remote", safety_critical=True,
    ))
    sos.add_system(ConstituentSystem(
        "fleet_cloud", operator="oem-cloud", vendor="komatsu",
        security_policy="cloud-provider", update_cadence_days=7, location="remote-dc",
        autonomy="remote", safety_critical=False,
    ))
    sos.add_interface(Interface(
        "drone-detections", provider="drone", consumer="forwarder",
        service="detection_relay", criticality="safety",
    ))
    sos.add_interface(Interface(
        "fwd-command", provider="control_station", consumer="forwarder",
        service="command", criticality="safety",
    ))
    sos.add_interface(Interface(
        "fwd-telemetry", provider="forwarder", consumer="control_station",
        service="telemetry", criticality="medium",
    ))
    sos.add_interface(Interface(
        "drone-telemetry", provider="drone", consumer="control_station",
        service="telemetry", criticality="low",
    ))
    sos.add_interface(Interface(
        "harvester-telemetry", provider="harvester", consumer="control_station",
        service="telemetry", criticality="low",
    ))
    sos.add_interface(Interface(
        "cloud-sync", provider="control_station", consumer="fleet_cloud",
        service="fleet_data", criticality="low",
    ))
    sos.add_interface(Interface(
        "cloud-config", provider="fleet_cloud", consumer="control_station",
        service="configuration", criticality="medium",
    ))
    return sos
