"""System-of-systems layer.

Section IV-E summarises Waller & Craddock's five SoS cybersecurity problem
dimensions: operational independence, management independence, evolutionary
development, emergent behavior, geographic distribution.  This package makes
them measurable over a composed worksite:

* :mod:`repro.sos.composition` — constituent systems, interfaces, the SoS;
* :mod:`repro.sos.independence` — independence/heterogeneity indices;
* :mod:`repro.sos.emergence` — emergent cross-system interaction detection
  over the event log;
* :mod:`repro.sos.zones` — mapping the SoS onto an IEC 62443 zone model.
"""

from repro.sos.composition import ConstituentSystem, Interface, SystemOfSystems
from repro.sos.independence import IndependenceReport, independence_report
from repro.sos.emergence import EmergenceDetector, EmergentInteraction
from repro.sos.zones import worksite_zone_model

__all__ = [
    "ConstituentSystem",
    "Interface",
    "SystemOfSystems",
    "IndependenceReport",
    "independence_report",
    "EmergenceDetector",
    "EmergentInteraction",
    "worksite_zone_model",
]
