"""Mapping the worksite SoS onto an IEC 62443 zone/conduit model.

The partition follows IEC 62443-3-2 practice: group by common security
requirements and management authority.  Safety-related control (forwarder,
drone safety path) gets its own zone with elevated SL-T on FR3/FR6 per
IEC TS 63074; the operator's control station forms the supervision zone;
the OEM cloud is outside the site perimeter and connects via a conduit
with confidentiality requirements (Table I: confidentiality of operations).
"""

from __future__ import annotations

from typing import Optional

from repro.defense.countermeasures import CountermeasureCatalog
from repro.risk.iec62443 import Conduit, SecurityLevel, Zone, ZoneModel, sl_vector
from repro.sos.composition import SystemOfSystems


def worksite_zone_model(
    sos: Optional[SystemOfSystems] = None,
    *,
    catalog: Optional[CountermeasureCatalog] = None,
    deployed_safety_zone: Optional[list] = None,
    deployed_supervision_zone: Optional[list] = None,
    deployed_conduits: Optional[list] = None,
) -> ZoneModel:
    """Build the worksite zone model.

    Parameters
    ----------
    sos:
        The SoS (for membership checks); default worksite composition.
    deployed_*:
        Countermeasure names deployed per zone/conduit; defaults model the
        *initial* (under-protected) state so the gap analysis has work to do.
    """
    from repro.sos.composition import worksite_sos

    sos = sos or worksite_sos()
    model = ZoneModel(catalog=catalog)

    safety_zone = Zone(
        name="safety-control",
        systems=["forwarder", "drone"],
        sl_target=sl_vector(FR1=3, FR2=3, FR3=3, FR4=2, FR5=2, FR6=3, FR7=3),
        deployed_measures=list(deployed_safety_zone or []),
        safety_related=True,
    )
    supervision_zone = Zone(
        name="supervision",
        systems=["control_station", "harvester"],
        sl_target=sl_vector(FR1=2, FR2=2, FR3=2, FR4=2, FR5=1, FR6=2, FR7=2),
        deployed_measures=list(deployed_supervision_zone or []),
    )
    enterprise_zone = Zone(
        name="enterprise-cloud",
        systems=["fleet_cloud"],
        sl_target=sl_vector(FR1=2, FR2=2, FR3=2, FR4=3, FR5=2, FR6=1, FR7=1),
        deployed_measures=["data_encryption", "pki_mutual_auth", "session_lockout"],
    )
    model.add_zone(safety_zone)
    model.add_zone(supervision_zone)
    model.add_zone(enterprise_zone)

    deployed_conduits = list(deployed_conduits or [])
    model.add_conduit(Conduit(
        name="site-radio",
        zone_a="safety-control",
        zone_b="supervision",
        channels=["fwd-command", "fwd-telemetry", "drone-detections",
                  "drone-telemetry"],
        sl_target=sl_vector(FR1=3, FR3=3, FR4=2, FR5=2, FR7=2),
        deployed_measures=deployed_conduits,
    ))
    model.add_conduit(Conduit(
        name="uplink",
        zone_a="supervision",
        zone_b="enterprise-cloud",
        channels=["cloud-sync", "cloud-config"],
        sl_target=sl_vector(FR1=2, FR3=2, FR4=3, FR5=2),
        deployed_measures=["data_encryption", "pki_mutual_auth"],
    ))

    # membership sanity: every zone system must exist in the SoS
    for zone in model.zones.values():
        for system in zone.systems:
            if system not in sos.systems:
                raise ValueError(
                    f"zone {zone.name!r} lists system {system!r} missing from the SoS"
                )
    return model
