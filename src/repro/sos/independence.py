"""Independence and heterogeneity indices for the SoS.

Quantifies four of Waller & Craddock's five dimensions directly from the
composition (the fifth, emergent behavior, is measured at runtime by
:mod:`repro.sos.emergence`):

* **management independence** — probability two random systems have
  different operators (Gini-Simpson diversity of the operator distribution);
* **operational independence** — share of systems able to act autonomously;
* **evolutionary divergence** — spread of update cadences (systems patched
  at very different rhythms drift apart in security posture);
* **geographic distribution** — diversity of deployment locations.

Each index lies in [0, 1]; higher means the dimension contributes more
complexity to securing the SoS.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.sos.composition import SystemOfSystems


def _gini_simpson(values: Sequence[str]) -> float:
    """Probability two independent draws differ (0 = homogeneous)."""
    n = len(values)
    if n <= 1:
        return 0.0
    counts = Counter(values)
    same = sum(c * (c - 1) for c in counts.values())
    return 1.0 - same / (n * (n - 1))


@dataclass(frozen=True)
class IndependenceReport:
    """The four structural indices plus derived aggregates."""

    management_independence: float
    operational_independence: float
    evolutionary_divergence: float
    geographic_distribution: float
    policy_heterogeneity: float
    cross_operator_interface_share: float

    def complexity_index(self) -> float:
        """Mean of the dimensions: a single SoS-complexity number."""
        dims = (
            self.management_independence,
            self.operational_independence,
            self.evolutionary_divergence,
            self.geographic_distribution,
        )
        return sum(dims) / len(dims)


def independence_report(sos: SystemOfSystems) -> IndependenceReport:
    """Compute the structural independence indices of an SoS."""
    systems = list(sos.systems.values())
    if not systems:
        raise ValueError("empty SoS")
    operators = [s.operator for s in systems]
    policies = [s.security_policy for s in systems]
    locations = [s.location for s in systems]

    autonomous = sum(1 for s in systems if s.autonomy in ("autonomous", "remote"))
    operational = autonomous / len(systems)

    cadences = [s.update_cadence_days for s in systems]
    mean_cadence = sum(cadences) / len(cadences)
    if mean_cadence > 0.0:
        spread = math.sqrt(
            sum((c - mean_cadence) ** 2 for c in cadences) / len(cadences)
        ) / mean_cadence
    else:
        spread = 0.0
    evolutionary = min(1.0, spread)

    interfaces = sos.interfaces
    if interfaces:
        crossing = len(sos.cross_operator_interfaces()) / len(interfaces)
    else:
        crossing = 0.0

    return IndependenceReport(
        management_independence=_gini_simpson(operators),
        operational_independence=operational,
        evolutionary_divergence=evolutionary,
        geographic_distribution=_gini_simpson(locations),
        policy_heterogeneity=_gini_simpson(policies),
        cross_operator_interface_share=crossing,
    )
