"""Sensor substrate: camera, LiDAR, GNSS, ultrasonic, detection AI, fusion.

The paper's threat survey (Section IV-C) and SOTIF discussion (Section III-C)
both revolve around sensor behaviour: occlusion by terrain and canopy, weather
degradation, and attacks on GNSS and cameras.  The models here expose exactly
those failure modes through a small common interface
(:class:`repro.sensors.base.Sensor`).
"""

from repro.sensors.base import Observation, Sensor
from repro.sensors.occlusion import OcclusionModel, SightLine
from repro.sensors.degradation import DegradationModel
from repro.sensors.camera import Camera
from repro.sensors.lidar import Lidar
from repro.sensors.gnss import GnssReceiver, GnssFix
from repro.sensors.ultrasonic import UltrasonicArray
from repro.sensors.detection import PeopleDetector, Detection
from repro.sensors.fusion import TrackFusion, FusedTrack

__all__ = [
    "Observation",
    "Sensor",
    "OcclusionModel",
    "SightLine",
    "DegradationModel",
    "Camera",
    "Lidar",
    "GnssReceiver",
    "GnssFix",
    "UltrasonicArray",
    "PeopleDetector",
    "Detection",
    "TrackFusion",
    "FusedTrack",
]
