"""Short-range ultrasonic array.

Ultrasonic sensing is the last line of proximity detection: very short range,
immune to light and largely immune to optical attacks, degraded by wind.  It
backs up the optical stack in the fused safety function — the redundancy
defence Petit et al. recommend.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sensors.base import Observation, Sensor
from repro.sensors.degradation import DegradationModel
from repro.sim.entities import Entity
from repro.sim.rng import RngStreams


class UltrasonicArray(Sensor):
    """A ring of ultrasonic transducers around the carrier.

    Parameters
    ----------
    max_range:
        Detection range in metres (typically 5–8 m).
    base_prob:
        Detection probability for a target at half range in still air.
    """

    def __init__(
        self,
        name: str,
        carrier: Entity,
        streams: RngStreams,
        degradation: Optional[DegradationModel] = None,
        *,
        max_range: float = 6.0,
        base_prob: float = 0.95,
    ) -> None:
        super().__init__(name, carrier)
        self._rng = streams.stream(f"ultrasonic.{name}")
        self.degradation = degradation
        self.max_range = max_range
        self.base_prob = base_prob
        # last computed probability per target, replayed while fault-frozen
        self._stale_prob: Dict[str, float] = {}

    def detection_probability(self, now: float, target: Entity) -> float:
        if self.fault_frozen:
            return self._stale_prob.get(target.name, 0.0)
        if not self.operational(now):
            return 0.0
        distance = self.position.distance_to(target.position)
        if distance > self.max_range:
            return 0.0
        p = self.base_prob * (1.0 - (distance / self.max_range) ** 2)
        if self.degradation is not None:
            p *= self.degradation.factors().ultrasonic
        if self.fault_gain != 1.0:
            p = min(1.0, p * self.fault_gain)
        p = max(0.0, p)
        self._stale_prob[target.name] = p
        return p

    def observe(self, now: float, targets: List[Entity]) -> List[Observation]:
        observations = []
        for target in targets:
            if target is self.carrier:
                continue
            p = self.detection_probability(now, target)
            detected = self._rng.random() < p
            distance = self.position.distance_to(target.position)
            observations.append(
                Observation(
                    time=now,
                    sensor=self.name,
                    target=target.name,
                    distance=distance,
                    detected=detected,
                    confidence=p if detected else 0.0,
                )
            )
            self.observations_made += 1
        return observations
