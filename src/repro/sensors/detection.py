"""Synthetic people-detection AI.

Section III-D: autonomous forestry machines rely on AI for "interpreting
their surroundings using sensor data, performing object detection".  Training
a real detector is out of scope (and the paper itself notes the data does not
exist); what the safety and SOTIF analyses need is the detector's *operating
characteristic* — how true/false positive rates move with image quality.

The model: given an image quality ``q`` in [0, 1] from the camera,

* the true-positive probability follows a calibrated logistic in ``q``;
* false positives arise per frame at a quality-dependent rate (clutter looks
  more like people in bad conditions);
* a hijacked camera feed produces *no* detections reaching the safety
  function (the attacker consumes or suppresses the stream).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sensors.camera import Camera
from repro.sim.entities import Entity
from repro.sim.geometry import Vec2
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class Detection:
    """A people-detection output.

    ``target`` is None for false positives.  ``estimated_position`` carries
    camera-frame localisation noise.
    """

    time: float
    sensor: str
    target: Optional[str]
    confidence: float
    estimated_position: Vec2
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_false_positive(self) -> bool:
        return self.target is None


class PeopleDetector:
    """Quality-conditioned detection model over a camera.

    Parameters
    ----------
    camera:
        The camera supplying image quality.
    q50:
        Image quality at which the true-positive rate is 50 %.
    slope:
        Steepness of the logistic TPR curve.
    max_tpr:
        Asymptotic true-positive rate (model ceiling).
    fp_rate_clear / fp_rate_degraded:
        Per-frame false-positive probabilities at quality 1 and 0.
    localization_sigma:
        Position noise of detections, metres.
    """

    def __init__(
        self,
        camera: Camera,
        streams: RngStreams,
        *,
        q50: float = 0.18,
        slope: float = 14.0,
        max_tpr: float = 0.985,
        fp_rate_clear: float = 0.002,
        fp_rate_degraded: float = 0.03,
        localization_sigma: float = 1.0,
    ) -> None:
        self.camera = camera
        self._rng = streams.stream(f"detector.{camera.name}")
        self.q50 = q50
        self.slope = slope
        self.max_tpr = max_tpr
        # the logistic's value at quality 0, subtracted so the curve is
        # exactly zero there; constant per detector, hoisted out of tpr()
        self._tpr_floor = 1.0 / (1.0 + math.exp(slope * q50))
        self.fp_rate_clear = fp_rate_clear
        self.fp_rate_degraded = fp_rate_degraded
        self.localization_sigma = localization_sigma
        self.true_positives = 0
        self.false_positives = 0
        self.misses = 0

    def tpr(self, quality: float) -> float:
        """True-positive rate at image quality ``quality``.

        A shifted logistic: exactly zero at quality 0 (no fat floor for
        specks at extreme range), ``max_tpr`` asymptotically.
        """
        if quality <= 0.0:
            return 0.0
        raw = 1.0 / (1.0 + math.exp(-self.slope * (quality - self.q50)))
        floor = self._tpr_floor
        return self.max_tpr * max(0.0, raw - floor) / (1.0 - floor)

    def fp_probability(self, quality_context: float) -> float:
        """Per-frame false-positive probability given scene quality."""
        return self.fp_rate_degraded + (self.fp_rate_clear - self.fp_rate_degraded) * quality_context

    def process_frame(self, now: float, people: List[Entity]) -> List[Detection]:
        """Run the detector on the current frame.

        Returns detections of real people plus possible false positives.
        A hijacked or blinded camera yields nothing.
        """
        camera = self.camera
        if camera.hijacked_by is not None or not camera.operational(now):
            return []
        detections: List[Detection] = []
        scene_quality = 1.0
        image_quality = camera.image_quality
        rng_random = self._rng.random
        tpr = self.tpr
        for person in people:
            quality = image_quality(now, person)
            scene_quality = min(scene_quality, max(quality, 0.05))
            p = tpr(quality)
            if rng_random() < p:
                self.true_positives += 1
                jitter = Vec2(
                    self._rng.gauss(0.0, self.localization_sigma),
                    self._rng.gauss(0.0, self.localization_sigma),
                )
                detections.append(
                    Detection(
                        time=now,
                        sensor=self.camera.name,
                        target=person.name,
                        confidence=min(1.0, 0.5 + 0.5 * quality + self._rng.gauss(0.0, 0.05)),
                        estimated_position=person.position + jitter,
                        data={"quality": quality},
                    )
                )
            elif quality > 0.0:
                self.misses += 1
        if self._rng.random() < self.fp_probability(scene_quality):
            self.false_positives += 1
            ghost = self.camera.position + Vec2.from_polar(
                self._rng.uniform(3.0, self.camera.nominal_range),
                self._rng.uniform(-math.pi, math.pi),
            )
            detections.append(
                Detection(
                    time=now,
                    sensor=self.camera.name,
                    target=None,
                    confidence=self._rng.uniform(0.4, 0.75),
                    estimated_position=ghost,
                    data={"false_positive": True},
                )
            )
        return detections
