"""Weather and lighting degradation of sensors.

Section III-D: "assessing the validity of an AI model for people detection
... would require validating the virtual sensor, simulated environmental
factors such as lighting conditions or precipitation".  These curves are that
virtual environmental model: multiplicative factors on detection performance
per sensor modality, derived from the weather state.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from repro.sim.weather import Weather, WeatherConditions


@dataclass(frozen=True)
class DegradationFactors:
    """Multiplicative performance factors in [0, 1] per modality."""

    camera: float
    lidar: float
    ultrasonic: float
    gnss: float


class DegradationModel:
    """Maps weather conditions to per-modality degradation factors.

    The shapes follow the qualitative literature the paper cites (rain
    attenuates LiDAR returns and blurs cameras; fog hits optics hardest;
    GNSS is nearly weather-immune at these scales; ultrasonic degrades in
    wind).
    """

    def __init__(self, weather: Weather) -> None:
        self.weather = weather
        # fault-injection multipliers per modality; empty in nominal runs,
        # so factors() returns the pure weather curves unchanged
        self._fault_factors: Dict[str, float] = {}

    def set_fault_factor(self, modality: str, factor: float) -> None:
        """Fault hook: degrade ``modality`` by an extra multiplier."""
        self._fault_factors[modality] = float(factor)

    def clear_fault_factor(self, modality: str) -> None:
        """Remove a fault multiplier.  Idempotent."""
        self._fault_factors.pop(modality, None)

    def factors(self) -> DegradationFactors:
        base = self.factors_for(self.weather.conditions())
        if not self._fault_factors:
            return base
        f = self._fault_factors
        clamp = lambda v: max(0.0, min(1.0, v))
        return DegradationFactors(
            camera=clamp(base.camera * f.get("camera", 1.0)),
            lidar=clamp(base.lidar * f.get("lidar", 1.0)),
            ultrasonic=clamp(base.ultrasonic * f.get("ultrasonic", 1.0)),
            gnss=clamp(base.gnss * f.get("gnss", 1.0)),
        )

    @staticmethod
    @lru_cache(maxsize=64)
    def factors_for(c: WeatherConditions) -> DegradationFactors:
        # pure in the (frozen, hashable) conditions and returns a frozen
        # result, so the per-state factors are computed once per regime
        camera = c.visibility * (0.55 + 0.45 * c.light_level)
        camera *= 1.0 - 0.35 * c.precipitation
        lidar = 1.0 - 0.5 * c.precipitation
        lidar *= 0.6 + 0.4 * c.visibility  # fog scatters returns too
        ultrasonic = max(0.2, 1.0 - 0.04 * c.wind_speed)
        gnss = 1.0 - 0.05 * c.precipitation
        clamp = lambda v: max(0.0, min(1.0, v))
        return DegradationFactors(
            camera=clamp(camera),
            lidar=clamp(lidar),
            ultrasonic=clamp(ultrasonic),
            gnss=clamp(gnss),
        )
