"""GNSS receiver model with jamming and spoofing responses.

The mining-domain survey the paper leans on (Gaber et al.) names GNSS
spoofing/jamming as a principal AHS attack class.  The receiver here produces
position fixes with carrier-to-noise density (C/N0) metadata — the signal
characteristic that Ren et al.'s defence strategies check — and reacts to
attack state injected by :mod:`repro.attacks.gnss_attacks`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.entities import Entity
from repro.sim.geometry import Vec2
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class GnssFix:
    """A position fix.

    Attributes
    ----------
    time:
        Fix timestamp.
    position:
        Estimated position (None when no fix is available).
    cn0_dbhz:
        Mean carrier-to-noise density across tracked satellites.
    n_satellites:
        Number of satellites used.
    hdop:
        Horizontal dilution of precision.
    """

    time: float
    position: Optional[Vec2]
    cn0_dbhz: float
    n_satellites: int
    hdop: float

    @property
    def valid(self) -> bool:
        return self.position is not None


class GnssReceiver:
    """A GNSS receiver mounted on a carrier.

    Nominal behaviour: fixes at the true position plus Gaussian noise, C/N0
    around 44 dB-Hz with small variance.  Under jamming the effective C/N0
    drops with jammer power; below the tracking threshold the receiver loses
    fix.  Under spoofing the reported position is the attacker's choice and —
    realistically — the spoofer's signal is slightly *stronger* than the
    authentic one, which is what power-monitoring defences key on.
    """

    TRACKING_THRESHOLD_DBHZ = 28.0

    def __init__(
        self,
        name: str,
        carrier: Entity,
        streams: RngStreams,
        *,
        noise_sigma_m: float = 0.8,
        nominal_cn0: float = 44.0,
    ) -> None:
        self.name = name
        self.carrier = carrier
        self._rng = streams.stream(f"gnss.{name}")
        self.noise_sigma_m = noise_sigma_m
        self.nominal_cn0 = nominal_cn0
        # attack state, driven by repro.attacks.gnss_attacks
        self.jammer_power_db: float = 0.0
        self.spoof_offset: Optional[Vec2] = None
        self.spoof_power_advantage_db: float = 3.0
        # fault state, driven by repro.faults.injector (component failures,
        # not attacks: receiver hang, constellation outage, survey bias)
        self.fault_dropout = False
        self.fault_frozen = False
        self.fault_bias: Optional[Vec2] = None
        self._last_fix: Optional[GnssFix] = None
        self.fixes_produced = 0
        self.fixes_lost = 0

    def clear_attacks(self) -> None:
        self.jammer_power_db = 0.0
        self.spoof_offset = None

    # -- fault injection hooks ------------------------------------------------
    def inject_dropout(self) -> None:
        self.fault_dropout = True

    def clear_dropout(self) -> None:
        self.fault_dropout = False

    def inject_freeze(self) -> None:
        self.fault_frozen = True

    def clear_freeze(self) -> None:
        self.fault_frozen = False

    def healthy(self) -> bool:
        """Sensor-health vote input for the degraded-mode machines."""
        return not self.fault_dropout and not self.fault_frozen

    def fix(self, now: float) -> GnssFix:
        """Produce the current fix, honouring attack and fault state."""
        self.fixes_produced += 1
        if self.fault_dropout:
            # receiver hang / constellation outage: no fix, no RNG draws
            # (the gnss stream resumes exactly where it paused on recovery)
            self.fixes_lost += 1
            return GnssFix(now, None, 0.0, n_satellites=0, hdop=99.0)
        if self.fault_frozen and self._last_fix is not None:
            stale = self._last_fix
            return GnssFix(
                now, stale.position, stale.cn0_dbhz, stale.n_satellites,
                stale.hdop,
            )
        if self.spoof_offset is not None:
            # Spoofed: position is true + attacker offset; C/N0 slightly high.
            cn0 = self.nominal_cn0 + self.spoof_power_advantage_db + self._rng.gauss(0.0, 0.7)
            noisy = self._noisy(self.carrier.position + self.spoof_offset)
            return self._produce(GnssFix(now, noisy, cn0, n_satellites=9, hdop=0.9))
        cn0 = self.nominal_cn0 - self.jammer_power_db + self._rng.gauss(0.0, 1.0)
        if cn0 < self.TRACKING_THRESHOLD_DBHZ:
            self.fixes_lost += 1
            return GnssFix(now, None, cn0, n_satellites=0, hdop=99.0)
        # Partial jamming degrades geometry and noise.
        degradation = max(0.0, self.jammer_power_db) / 20.0
        sigma = self.noise_sigma_m * (1.0 + 4.0 * degradation)
        n_sats = max(4, int(10 - 5 * degradation))
        hdop = 0.8 + 3.0 * degradation
        noisy = self._noisy(self.carrier.position, sigma)
        return self._produce(GnssFix(now, noisy, cn0, n_satellites=n_sats, hdop=hdop))

    def _produce(self, fix: GnssFix) -> GnssFix:
        """Apply the survey-bias fault and remember the fix for freeze."""
        if self.fault_bias is not None and fix.position is not None:
            fix = GnssFix(
                fix.time, fix.position + self.fault_bias, fix.cn0_dbhz,
                fix.n_satellites, fix.hdop,
            )
        self._last_fix = fix
        return fix

    def _noisy(self, p: Vec2, sigma: Optional[float] = None) -> Vec2:
        s = self.noise_sigma_m if sigma is None else sigma
        return Vec2(p.x + self._rng.gauss(0.0, s), p.y + self._rng.gauss(0.0, s))
