"""Multi-viewpoint track fusion.

The collaborative safety function of Figure 2 fuses people detections from
the forwarder's own sensors with the drone's camera.  Fusion is per-target
track maintenance: detections within a gating distance associate to a track;
track confidence combines independent sources as ``1 - prod(1 - c_i)`` and
decays exponentially between updates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sensors.detection import Detection
from repro.sim.geometry import Vec2


@dataclass
class FusedTrack:
    """A fused track of a (possible) person.

    Attributes
    ----------
    track_id:
        Stable identifier.
    position:
        Latest fused position estimate.
    confidence:
        Fused confidence in [0, 1].
    last_update:
        Time of last associated detection.
    sources:
        Sensor names that have contributed.
    target:
        Ground-truth identity when any contributing detection had one
        (evaluation only; the safety function does not read it).
    """

    track_id: int
    position: Vec2
    confidence: float
    last_update: float
    sources: List[str] = field(default_factory=list)
    target: Optional[str] = None
    updates: int = 0


class TrackFusion:
    """Gated nearest-neighbour fusion with confidence decay.

    Parameters
    ----------
    gate_m:
        Association gate: detections within this distance of a track update it.
    decay_halflife_s:
        Track confidence halves after this long without updates.
    confirm_threshold:
        Confidence above which a track is *confirmed* (drives safety action).
    drop_threshold:
        Confidence below which a stale track is dropped.
    """

    def __init__(
        self,
        *,
        gate_m: float = 5.0,
        decay_halflife_s: float = 3.0,
        confirm_threshold: float = 0.7,
        drop_threshold: float = 0.05,
    ) -> None:
        self.gate_m = gate_m
        self.decay_halflife_s = decay_halflife_s
        self.confirm_threshold = confirm_threshold
        self.drop_threshold = drop_threshold
        self.tracks: Dict[int, FusedTrack] = {}
        self._next_id = 1

    def update(self, now: float, detections: List[Detection]) -> List[FusedTrack]:
        """Fold a batch of detections into the track set; returns live tracks."""
        self._decay(now)
        for det in detections:
            track = self._associate(det)
            if track is None:
                track = FusedTrack(
                    track_id=self._next_id,
                    position=det.estimated_position,
                    confidence=det.confidence,
                    last_update=now,
                    sources=[det.sensor],
                    target=det.target,
                )
                self._next_id += 1
                self.tracks[track.track_id] = track
            else:
                # independent-evidence combination
                track.confidence = 1.0 - (1.0 - track.confidence) * (1.0 - det.confidence)
                track.position = track.position.lerp(det.estimated_position, 0.5)
                track.last_update = now
                if det.sensor not in track.sources:
                    track.sources.append(det.sensor)
                if track.target is None and det.target is not None:
                    track.target = det.target
            track.updates += 1
        self._prune()
        return list(self.tracks.values())

    def confirmed_tracks(self) -> List[FusedTrack]:
        return [t for t in self.tracks.values() if t.confidence >= self.confirm_threshold]

    def _associate(self, det: Detection) -> Optional[FusedTrack]:
        best, best_dist = None, self.gate_m
        for track in self.tracks.values():
            d = track.position.distance_to(det.estimated_position)
            if d <= best_dist:
                best, best_dist = track, d
        return best

    def _decay(self, now: float) -> None:
        for track in self.tracks.values():
            dt = now - track.last_update
            if dt > 0.0:
                track.confidence *= math.pow(0.5, dt / self.decay_halflife_s)
                track.last_update = now

    def _prune(self) -> None:
        stale = [tid for tid, t in self.tracks.items() if t.confidence < self.drop_threshold]
        for tid in stale:
            del self.tracks[tid]
