"""Camera sensor model.

The camera is the modality the paper's survey worries most about (blinding,
feed theft, remote control — Petit et al., Kyrkou et al.).  Its output here is
an *image quality* per target, combining range falloff, occlusion visibility
and weather/light degradation; the synthetic people-detection AI
(:mod:`repro.sensors.detection`) turns quality into detections.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.sensors.base import Observation, Sensor
from repro.sensors.degradation import DegradationModel
from repro.sensors.occlusion import OcclusionModel
from repro.sim.entities import Entity
from repro.sim.geometry import angle_difference


class Camera(Sensor):
    """A mounted camera with field of view, range falloff and attack state.

    Parameters
    ----------
    name, carrier:
        See :class:`repro.sensors.base.Sensor`.
    occlusion:
        Shared occlusion model for the worksite.
    degradation:
        Weather degradation model (None = always clear conditions).
    fov_deg:
        Horizontal field of view; 360 models a gimbal or camera ring.
    nominal_range:
        Range at which image quality halves.
    heading_offset:
        Mounting angle relative to the carrier heading, radians.
    """

    def __init__(
        self,
        name: str,
        carrier: Entity,
        occlusion: OcclusionModel,
        degradation: Optional[DegradationModel] = None,
        *,
        fov_deg: float = 360.0,
        nominal_range: float = 40.0,
        heading_offset: float = 0.0,
    ) -> None:
        super().__init__(name, carrier)
        self.occlusion = occlusion
        self.degradation = degradation
        self.fov = math.radians(fov_deg)
        self.nominal_range = nominal_range
        self.heading_offset = heading_offset
        # last computed quality per target, replayed while fault-frozen
        self._stale_quality: Dict[str, float] = {}

    def in_fov(self, target: Entity) -> bool:
        if self.fov >= 2.0 * math.pi - 1e-9:
            return True
        bearing = (target.position - self.position).heading()
        boresight = self.carrier.state.heading + self.heading_offset
        return abs(angle_difference(bearing, boresight)) <= self.fov / 2.0

    def _range_factor(self, distance: float) -> float:
        """Smooth falloff: 1 near the camera, 0.5 at nominal range."""
        return 1.0 / (1.0 + (distance / self.nominal_range) ** 2)

    def image_quality(self, now: float, target: Entity) -> float:
        """Quality of the target's image in [0, 1]; 0 if unseeable."""
        if self.fault_frozen:
            # frozen feed: the detector keeps seeing the stale image
            return self._stale_quality.get(target.name, 0.0)
        if not self.operational(now):
            return 0.0
        if not self.in_fov(target):
            return 0.0
        line = self.occlusion.sight_line(
            self.position, self.mount_height, target.position, target.body_height
        )
        quality = line.visibility * self._range_factor(line.distance)
        if self.degradation is not None:
            quality *= self.degradation.factors().camera
        if self.fault_gain != 1.0:
            quality = max(0.0, min(1.0, quality * self.fault_gain))
        self._stale_quality[target.name] = quality
        return quality

    def observe(self, now: float, targets: List[Entity]) -> List[Observation]:
        """Raw quality observations — detection is the AI layer's job."""
        observations = []
        for target in targets:
            if target is self.carrier:
                continue
            quality = self.image_quality(now, target)
            distance = self.position.distance_to(target.position)
            observations.append(
                Observation(
                    time=now,
                    sensor=self.name,
                    target=target.name,
                    distance=distance,
                    detected=quality > 0.0,
                    confidence=quality,
                    data={"quality": quality, "hijacked": self.hijacked_by is not None},
                )
            )
            self.observations_made += 1
        return observations
