"""LiDAR sensor model.

LiDAR is range-limited but light-independent; rain and fog scatter returns.
It detects *obstacles* (anything with a body) rather than classifying people,
so it contributes range gating and redundancy to the fused safety function.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sensors.base import Observation, Sensor
from repro.sensors.degradation import DegradationModel
from repro.sensors.occlusion import OcclusionModel
from repro.sim.entities import Entity
from repro.sim.rng import RngStreams


class Lidar(Sensor):
    """Scanning LiDAR with probabilistic returns.

    Parameters
    ----------
    max_range:
        Hard range limit in metres.
    base_return_prob:
        Return probability for an unoccluded target at close range.
    """

    def __init__(
        self,
        name: str,
        carrier: Entity,
        occlusion: OcclusionModel,
        streams: RngStreams,
        degradation: Optional[DegradationModel] = None,
        *,
        max_range: float = 60.0,
        base_return_prob: float = 0.97,
        range_sigma: float = 0.05,
    ) -> None:
        super().__init__(name, carrier)
        self.occlusion = occlusion
        self.degradation = degradation
        self._rng = streams.stream(f"lidar.{name}")
        self.max_range = max_range
        self.base_return_prob = base_return_prob
        self.range_sigma = range_sigma

    def return_probability(self, now: float, target: Entity) -> float:
        if not self.operational(now):
            return 0.0
        line = self.occlusion.sight_line(
            self.position, self.mount_height, target.position, target.body_height
        )
        if line.distance > self.max_range:
            return 0.0
        p = self.base_return_prob * line.visibility
        p *= max(0.0, 1.0 - (line.distance / self.max_range) ** 3)
        if self.degradation is not None:
            p *= self.degradation.factors().lidar
        return p

    def observe(self, now: float, targets: List[Entity]) -> List[Observation]:
        observations = []
        for target in targets:
            if target is self.carrier:
                continue
            p = self.return_probability(now, target)
            detected = self._rng.random() < p
            distance = self.position.distance_to(target.position)
            measured = distance
            if detected:
                measured = max(0.0, self._rng.gauss(distance, self.range_sigma))
            observations.append(
                Observation(
                    time=now,
                    sensor=self.name,
                    target=target.name,
                    distance=distance,
                    detected=detected,
                    confidence=p if detected else 0.0,
                    data={"measured_range": measured},
                )
            )
            self.observations_made += 1
        return observations
