"""Common sensor interface.

A sensor is mounted on a carrier entity, samples the world at its own rate,
and produces :class:`Observation` records.  Attack hooks (blinding, spoofing,
hijack) are part of the interface because the paper's survey treats sensors
primarily as attack surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.entities import Entity
from repro.sim.events import EventCategory


@dataclass(frozen=True)
class Observation:
    """A single sensor observation of a target entity.

    Attributes
    ----------
    time:
        Simulated time of the observation.
    sensor:
        Name of the producing sensor.
    target:
        Name of the observed entity (ground truth identity; consumers that
        should not know ground truth must not read it).
    distance:
        True range to the target at observation time.
    detected:
        Whether the sensor actually registered the target.
    confidence:
        Detection confidence in [0, 1] (0 when not detected).
    data:
        Sensor-specific extras (bearing, estimated position, ...).
    """

    time: float
    sensor: str
    target: str
    distance: float
    detected: bool
    confidence: float = 0.0
    data: Dict[str, Any] = field(default_factory=dict)


class Sensor:
    """Base sensor: identity, carrier, health and attack state.

    Subclasses implement :meth:`observe` against a list of candidate targets.
    """

    def __init__(self, name: str, carrier: Entity) -> None:
        self.name = name
        self.carrier = carrier
        self.enabled = True
        self.blinded_until: float = -1.0
        self.hijacked_by: Optional[str] = None
        self.observations_made = 0
        # fault-injection state (distinct from attack state: dropout and
        # freeze model component failures, not adversarial action)
        self.fault_dropout = False
        self.fault_frozen = False
        self.fault_gain = 1.0

    @property
    def position(self):
        return self.carrier.position

    @property
    def mount_height(self) -> float:
        """Height of the sensor above local terrain."""
        return self.carrier.body_height + self.carrier.state.altitude

    def is_blinded(self, now: float) -> bool:
        """True while a blinding attack is in effect."""
        return now < self.blinded_until

    def blind(self, now: float, duration: float, attacker: str = "?") -> None:
        """Apply a blinding attack for ``duration`` seconds."""
        self.blinded_until = max(self.blinded_until, now + duration)
        self.carrier.log.emit(
            now, EventCategory.ATTACK, "sensor_blinded", self.name,
            attacker=attacker, duration=duration,
        )

    def hijack(self, attacker: str) -> None:
        """Mark the sensor feed as hijacked (camera feed theft / control)."""
        self.hijacked_by = attacker

    def release(self) -> None:
        self.hijacked_by = None

    # -- fault injection hooks ------------------------------------------------
    def inject_dropout(self) -> None:
        """Fault: the sensor produces nothing until cleared."""
        self.fault_dropout = True

    def clear_dropout(self) -> None:
        self.fault_dropout = False

    def inject_freeze(self) -> None:
        """Fault: the sensor repeats its last pre-freeze output."""
        self.fault_frozen = True

    def clear_freeze(self) -> None:
        self.fault_frozen = False

    def set_fault_gain(self, gain: float) -> None:
        """Fault: systematic output bias as a multiplicative gain."""
        self.fault_gain = float(gain)

    def clear_faults(self) -> None:
        self.fault_dropout = False
        self.fault_frozen = False
        self.fault_gain = 1.0

    def healthy(self, now: float) -> bool:
        """Sensor-health vote input: operational and not faulted."""
        return self.operational(now) and not self.fault_frozen

    def operational(self, now: float) -> bool:
        return self.enabled and not self.fault_dropout and not self.is_blinded(now)

    def observe(self, now: float, targets: List[Entity]) -> List[Observation]:
        """Produce observations of ``targets``.  Subclasses override."""
        raise NotImplementedError
