"""Line-of-sight occlusion against terrain and canopy.

This module quantifies the central geometric fact of the paper's Figure 2:
a ground-level observer behind a terrain ridge or a dense stand cannot see an
approaching person, while an elevated observer (the drone) can.

The model distinguishes three contributions:

* **terrain blockage** — the 3-D sight line intersects the ground (binary);
* **trunk blockage** — a trunk lies exactly on the ground-level line (binary);
* **canopy attenuation** — metres of canopy crossed; each metre multiplies
  visibility by ``exp(-k)`` with ``k`` the canopy extinction coefficient.

A near-vertical sight line (drone high above the target) passes under the
canopy for only a short horizontal distance, which the model captures by
scaling the canopy crossing with the elevation angle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.geometry import Vec2
from repro.sim.world import World

#: sight lines steeper than this pass over trunk height within metres of
#: the target, so the trunk query is skipped (see SightLine analysis)
_TRUNK_ELEVATION_LIMIT = math.radians(35.0)


@dataclass(frozen=True, slots=True)
class SightLine:
    """The occlusion analysis of one observer→target sight line.

    Attributes
    ----------
    distance:
        Horizontal range in metres.
    terrain_blocked / trunk_blocked:
        Binary blockages.
    canopy_metres:
        Effective metres of canopy crossed.
    visibility:
        Combined visibility factor in [0, 1]: zero when hard-blocked,
        otherwise the canopy attenuation factor.
    elevation_angle:
        Angle of the sight line above the horizontal, radians.
    """

    distance: float
    terrain_blocked: bool
    trunk_blocked: bool
    canopy_metres: float
    visibility: float
    elevation_angle: float

    @property
    def clear(self) -> bool:
        return not self.terrain_blocked and not self.trunk_blocked


class OcclusionModel:
    """Occlusion computations over a :class:`repro.sim.world.World`.

    Parameters
    ----------
    world:
        The worksite.
    canopy_extinction:
        Per-metre visibility extinction inside canopy (0.12 ≈ thinned stand).
    canopy_base_height:
        Height of the canopy bottom; sight lines steeper than the angle that
        clears the canopy at half range suffer reduced canopy crossing.
    """

    def __init__(
        self,
        world: World,
        *,
        canopy_extinction: float = 0.12,
        canopy_base_height: float = 4.0,
    ) -> None:
        self.world = world
        self.canopy_extinction = canopy_extinction
        self.canopy_base_height = canopy_base_height

    def sight_line(
        self,
        observer: Vec2,
        observer_height: float,
        target: Vec2,
        target_height: float = 1.5,
    ) -> SightLine:
        """Analyse the sight line between observer and target."""
        world = self.world
        terrain = world.terrain
        distance = math.hypot(observer.x - target.x, observer.y - target.y)
        observer_ground = terrain.height_at(observer)
        target_ground = terrain.height_at(target)
        dz = observer_height + observer_ground - (target_height + target_ground)
        elevation = math.atan2(abs(dz), max(distance, 1e-6))

        # forward the ground elevations so the terrain sweep does not pay
        # the two endpoint ridge sums a second time
        terrain_blocked = world.terrain_blocks(
            observer, observer_height, target, target_height,
            observer_ground=observer_ground, target_ground=target_ground,
        )
        # Trunks only matter for near-horizontal sight lines; above ~35° the
        # line passes over trunk height within metres of the target.
        trunk_blocked = False
        if elevation < _TRUNK_ELEVATION_LIMIT:
            trunk_blocked = world.trunk_blocks(observer, target)

        canopy = world.canopy_blockage(observer, target)
        # A steep line crosses the canopy layer only near the target: scale
        # the effective crossing by the fraction of the path below canopy top.
        if elevation > 0.0 and observer_height > self.canopy_base_height:
            mean_tree_height = 18.0
            below_frac = min(
                1.0, mean_tree_height / max(observer_height + abs(dz) * 0.0, 1e-6)
            )
            steepness_relief = max(0.1, math.cos(elevation)) * below_frac
            canopy *= steepness_relief

        visibility = 0.0
        if not terrain_blocked and not trunk_blocked:
            visibility = math.exp(-self.canopy_extinction * canopy)
        return SightLine(
            distance=distance,
            terrain_blocked=terrain_blocked,
            trunk_blocked=trunk_blocked,
            canopy_metres=canopy,
            visibility=visibility,
            elevation_angle=elevation,
        )
