"""Fixed-width table rendering for benchmark output.

Each benchmark prints paper-style rows through a :class:`Table`, so
EXPERIMENTS.md can quote the harness output verbatim.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


class Table:
    """A simple fixed-width text table."""

    def __init__(self, columns: Sequence[str], *, title: Optional[str] = None) -> None:
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell: Any) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            if abs(cell) >= 10:
                return f"{cell:.1f}"
            return f"{cell:.3f}".rstrip("0").rstrip(".") or "0"
        return str(cell)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(header))
        lines.append(header)
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - mirrors the common API
        print()
        print(self.render())
        print()
