"""Result analysis: statistics and table rendering for the harness."""

from repro.analysis.stats import bootstrap_ci, mean, summarize
from repro.analysis.tables import Table

__all__ = ["bootstrap_ci", "mean", "summarize", "Table"]
