"""Summary statistics and bootstrap confidence intervals."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def std(values: Sequence[float]) -> float:
    """Population standard deviation."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
    statistic=mean,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for ``statistic``."""
    values = list(values)
    if not values:
        return (0.0, 0.0)
    if len(values) == 1:
        return (values[0], values[0])
    rng = random.Random(seed)
    stats = []
    n = len(values)
    for _ in range(resamples):
        resample = [values[rng.randrange(n)] for _ in range(n)]
        stats.append(statistic(resample))
    alpha = (1.0 - confidence) / 2.0
    return (percentile(stats, alpha * 100.0), percentile(stats, (1.0 - alpha) * 100.0))


@dataclass(frozen=True)
class Summary:
    """Summary of a sample."""

    n: int
    mean: float
    std: float
    median: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float


def summarize(values: Sequence[float], *, seed: int = 0) -> Summary:
    """Full summary with a bootstrap 95 % CI on the mean."""
    values = list(values)
    if not values:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    low, high = bootstrap_ci(values, seed=seed)
    return Summary(
        n=len(values),
        mean=mean(values),
        std=std(values),
        median=median(values),
        minimum=min(values),
        maximum=max(values),
        ci_low=low,
        ci_high=high,
    )
