"""Experiment report generation.

Collects named experiment results (tables plus shape-check verdicts) and
renders a Markdown report in the EXPERIMENTS.md format — experiment id,
paper anchor, the regenerated rows, and the claim-vs-measured verdict.
Used by the harness to keep the documentation mechanically in sync with
what the code actually measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.tables import Table


@dataclass
class ShapeCheck:
    """One expected-shape statement and whether the run satisfied it."""

    statement: str
    held: bool


@dataclass
class ExperimentRecord:
    """One experiment's reproduced artefact."""

    experiment_id: str
    paper_anchor: str
    claim: str
    tables: List[Table] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    checks: List[ShapeCheck] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        if not self.checks:
            return "NOT EVALUATED"
        return "REPRODUCED" if all(c.held for c in self.checks) else "DIVERGED"

    def check(self, statement: str, held: bool) -> "ExperimentRecord":
        """Record one shape check; returns self for chaining."""
        self.checks.append(ShapeCheck(statement=statement, held=bool(held)))
        return self

    def note(self, text: str) -> "ExperimentRecord":
        self.notes.append(text)
        return self

    def to_markdown(self) -> str:
        lines = [
            f"### {self.experiment_id} — {self.paper_anchor}",
            "",
            f"**Claim.** {self.claim}",
            "",
        ]
        for table in self.tables:
            lines.append("```")
            lines.append(table.render())
            lines.append("```")
            lines.append("")
        if self.notes:
            for note in self.notes:
                lines.append(f"- {note}")
            lines.append("")
        lines.append("**Shape checks.**")
        lines.append("")
        for check in self.checks:
            mark = "x" if check.held else " "
            lines.append(f"- [{mark}] {check.statement}")
        lines.append("")
        lines.append(f"**Verdict: {self.verdict}**")
        lines.append("")
        return "\n".join(lines)


class ExperimentReport:
    """The full experiment report: ordered records, one per artefact."""

    def __init__(self, title: str, preamble: str = "") -> None:
        self.title = title
        self.preamble = preamble
        self._records: Dict[str, ExperimentRecord] = {}

    def record(
        self, experiment_id: str, paper_anchor: str, claim: str
    ) -> ExperimentRecord:
        """Create (or fetch) the record for ``experiment_id``."""
        existing = self._records.get(experiment_id)
        if existing is not None:
            return existing
        record = ExperimentRecord(
            experiment_id=experiment_id, paper_anchor=paper_anchor, claim=claim
        )
        self._records[experiment_id] = record
        return record

    @property
    def records(self) -> List[ExperimentRecord]:
        return list(self._records.values())

    def summary_table(self) -> Table:
        table = Table(["experiment", "paper anchor", "verdict"],
                      title="Reproduction summary")
        for record in self.records:
            table.add_row(record.experiment_id, record.paper_anchor,
                          record.verdict)
        return table

    def to_markdown(self) -> str:
        lines = [f"# {self.title}", ""]
        if self.preamble:
            lines.append(self.preamble)
            lines.append("")
        lines.append("```")
        lines.append(self.summary_table().render())
        lines.append("```")
        lines.append("")
        for record in self.records:
            lines.append(record.to_markdown())
        return "\n".join(lines)

    def write(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_markdown())
        return path
