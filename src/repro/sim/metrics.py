"""Time-series metric collection for simulation runs.

Components record named counters and sampled series through a single
:class:`MetricsCollector`; the experiment harness summarises them afterwards.
Two bounded-memory aggregates back the observability plane:
:class:`Histogram` (fixed log-spaced buckets, quantile estimates, the
shape the Prometheus text exposition expects) and :class:`RateWindow`
(a fixed-slot ring buffer yielding trailing-window event rates).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


def percentile(sorted_values: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of pre-sorted values, linearly interpolated.

    Matches numpy's default ``linear`` method; an empty input returns 0.0
    so summaries of missing series stay all-zero rather than raising.
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (len(sorted_values) - 1) * q
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return sorted_values[lo]
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class SeriesSummary:
    """Summary statistics of a sampled series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    std: float
    p50: float = 0.0
    p95: float = 0.0

    @staticmethod
    def of(values: List[float]) -> "SeriesSummary":
        if not values:
            return SeriesSummary(0, 0.0, 0.0, 0.0, 0.0)
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        ordered = sorted(values)
        return SeriesSummary(
            n, mean, ordered[0], ordered[-1], math.sqrt(var),
            p50=percentile(ordered, 0.50), p95=percentile(ordered, 0.95),
        )

    def as_dict(self) -> dict:
        """Plain-dict form for JSON export (used by the telemetry hub)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
            "p50": self.p50,
            "p95": self.p95,
        }


class Histogram:
    """Bounded-memory histogram over fixed log-spaced buckets.

    Memory is O(buckets) regardless of observation count: one count per
    bucket plus scalar aggregates.  Bucket boundaries are geometric —
    ``buckets_per_decade`` per power of ten between ``lower`` and
    ``upper`` — so the same relative resolution covers microseconds and
    kiloseconds.  Quantiles interpolate linearly inside the bucket, the
    same estimate Prometheus's ``histogram_quantile`` computes from the
    exported cumulative buckets.
    """

    __slots__ = (
        "bounds", "counts", "count", "total", "minimum", "maximum",
    )

    def __init__(
        self,
        lower: float = 1e-6,
        upper: float = 1e4,
        buckets_per_decade: int = 5,
    ) -> None:
        if lower <= 0 or upper <= lower or buckets_per_decade < 1:
            raise ValueError(
                f"invalid histogram bounds: lower={lower}, upper={upper}, "
                f"buckets_per_decade={buckets_per_decade}"
            )
        decades = math.log10(upper / lower)
        n = int(round(decades * buckets_per_decade))
        # upper inclusive; the exponent grid keeps boundaries identical
        # across histograms with the same configuration
        self.bounds: List[float] = [
            lower * 10.0 ** (i / buckets_per_decade) for i in range(n + 1)
        ]
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation (values <= 0 land in the first bucket)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1); 0.0 when empty.

        Exact at the recorded extremes (the min/max scalars), linear
        within the containing bucket elsewhere.
        """
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative < rank or not bucket_count:
                continue
            lo = self.bounds[index - 1] if index >= 1 else 0.0
            hi = (
                self.bounds[index] if index < len(self.bounds)
                else self.maximum
            )
            lo = max(lo, self.minimum) if index == 0 or lo < self.minimum \
                else lo
            hi = min(hi, self.maximum)
            if hi <= lo:
                return hi
            frac = (rank - (cumulative - bucket_count)) / bucket_count
            return lo + (hi - lo) * frac
        return self.maximum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style
        (the final ``+Inf`` bucket is the total count)."""
        out: List[Tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
        out.append((math.inf, self.count))
        return out

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical buckets into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def as_dict(self) -> dict:
        """Compact JSON form (what hub snapshots and span reports carry)."""
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "p50": round(self.quantile(0.50), 9),
            "p95": round(self.quantile(0.95), 9),
            "p99": round(self.quantile(0.99), 9),
        }


class RateWindow:
    """Trailing-window event rate over a fixed-slot ring buffer.

    ``add`` assigns each event to a time slot; memory is O(slots)
    forever.  Events are assumed to arrive in non-decreasing time order
    (the simulator clock guarantees it); a slot is lazily reset when its
    ring position is reused by a later epoch.
    """

    __slots__ = ("slot_s", "_counts", "_epochs")

    def __init__(self, window_s: float = 60.0, slots: int = 60) -> None:
        if window_s <= 0 or slots < 1:
            raise ValueError(
                f"invalid rate window: window_s={window_s}, slots={slots}"
            )
        self.slot_s = window_s / slots
        self._counts: List[float] = [0.0] * slots
        self._epochs: List[Optional[int]] = [None] * slots

    @property
    def window_s(self) -> float:
        return self.slot_s * len(self._counts)

    def add(self, t: float, amount: float = 1.0) -> None:
        epoch = int(t // self.slot_s)
        position = epoch % len(self._counts)
        if self._epochs[position] != epoch:
            self._epochs[position] = epoch
            self._counts[position] = 0.0
        self._counts[position] += amount

    def rate(self, now: float) -> float:
        """Events per second over the window ending at ``now``."""
        now_epoch = int(now // self.slot_s)
        slots = len(self._counts)
        total = sum(
            self._counts[i] for i in range(slots)
            if self._epochs[i] is not None
            and 0 <= now_epoch - self._epochs[i] < slots
        )
        # a window that has not fully elapsed yet normalises over the
        # elapsed portion, so early rates are not diluted by empty slots
        effective = min(self.window_s, max(self.slot_s, now))
        return total / effective


class MetricsCollector:
    """Named counters, gauges, timestamped series and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._series: Dict[str, List[Tuple[float, float]]] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- counters ---------------------------------------------------------
    def increment(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    # -- gauges -----------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    # -- series -----------------------------------------------------------
    def sample(self, name: str, time: float, value: float) -> None:
        self._series.setdefault(name, []).append((time, value))

    def series(self, name: str) -> List[Tuple[float, float]]:
        return list(self._series.get(name, ()))

    def series_values(self, name: str) -> List[float]:
        return [v for _, v in self._series.get(name, ())]

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def summarize(self, name: str) -> SeriesSummary:
        return SeriesSummary.of(self.series_values(name))

    # -- histograms -------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation in the named histogram (auto-created)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def histogram_names(self) -> List[str]:
        return sorted(self._histograms)

    def ratio(self, numerator: str, denominator: str) -> Optional[float]:
        """Counter ratio, or None when the denominator is zero."""
        denom = self.counter(denominator)
        if denom == 0.0:
            return None
        return self.counter(numerator) / denom

    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector's counters, series and histograms in."""
        for name, value in other._counters.items():
            self.increment(name, value)
        for name, points in other._series.items():
            self._series.setdefault(name, []).extend(points)
        self._gauges.update(other._gauges)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram(
                    lower=histogram.bounds[0],
                    upper=histogram.bounds[-1],
                )
                mine.bounds = list(histogram.bounds)
                mine.counts = [0] * len(histogram.counts)
            mine.merge(histogram)
