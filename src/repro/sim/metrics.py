"""Time-series metric collection for simulation runs.

Components record named counters and sampled series through a single
:class:`MetricsCollector`; the experiment harness summarises them afterwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


def percentile(sorted_values: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of pre-sorted values, linearly interpolated.

    Matches numpy's default ``linear`` method; an empty input returns 0.0
    so summaries of missing series stay all-zero rather than raising.
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (len(sorted_values) - 1) * q
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return sorted_values[lo]
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class SeriesSummary:
    """Summary statistics of a sampled series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    std: float
    p50: float = 0.0
    p95: float = 0.0

    @staticmethod
    def of(values: List[float]) -> "SeriesSummary":
        if not values:
            return SeriesSummary(0, 0.0, 0.0, 0.0, 0.0)
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        ordered = sorted(values)
        return SeriesSummary(
            n, mean, ordered[0], ordered[-1], math.sqrt(var),
            p50=percentile(ordered, 0.50), p95=percentile(ordered, 0.95),
        )

    def as_dict(self) -> dict:
        """Plain-dict form for JSON export (used by the telemetry hub)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
            "p50": self.p50,
            "p95": self.p95,
        }


class MetricsCollector:
    """Named counters, gauges and timestamped series."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._series: Dict[str, List[Tuple[float, float]]] = {}
        self._gauges: Dict[str, float] = {}

    # -- counters ---------------------------------------------------------
    def increment(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    # -- gauges -----------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    # -- series -----------------------------------------------------------
    def sample(self, name: str, time: float, value: float) -> None:
        self._series.setdefault(name, []).append((time, value))

    def series(self, name: str) -> List[Tuple[float, float]]:
        return list(self._series.get(name, ()))

    def series_values(self, name: str) -> List[float]:
        return [v for _, v in self._series.get(name, ())]

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def summarize(self, name: str) -> SeriesSummary:
        return SeriesSummary.of(self.series_values(name))

    def ratio(self, numerator: str, denominator: str) -> Optional[float]:
        """Counter ratio, or None when the denominator is zero."""
        denom = self.counter(denominator)
        if denom == 0.0:
            return None
        return self.counter(numerator) / denom

    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector's counters and series into this one."""
        for name, value in other._counters.items():
            self.increment(name, value)
        for name, points in other._series.items():
            self._series.setdefault(name, []).extend(points)
        self._gauges.update(other._gauges)
