"""Typed event records and the worksite event log.

Every noteworthy occurrence in a run — detections, safety stops, attacks,
IDS alerts, message drops — is appended to a single :class:`EventLog` with a
timestamp, a category and structured data.  The log is the raw material for
the safety monitor, the emergence detector (:mod:`repro.sos.emergence`), the
continuous risk assessment and the experiment harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


class EventCategory(enum.Enum):
    """Top-level classification of simulation events."""

    MOVEMENT = "movement"
    MISSION = "mission"
    DETECTION = "detection"
    SAFETY = "safety"
    COMMS = "comms"
    SECURITY = "security"
    ATTACK = "attack"
    DEFENSE = "defense"
    WEATHER = "weather"
    SYSTEM = "system"


@dataclass(frozen=True, slots=True)
class SimEvent:
    """A single event record.

    Attributes
    ----------
    time:
        Simulated time of the event.
    category:
        Coarse classification used by monitors and filters.
    kind:
        Fine event type (e.g. ``"person_detected"``, ``"estop_triggered"``).
    source:
        Identifier of the emitting entity/component.
    data:
        Structured payload; keys are event-kind specific.
    """

    time: float
    category: EventCategory
    kind: str
    source: str
    data: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only event log with category subscriptions and queries."""

    def __init__(self) -> None:
        self._events: List[SimEvent] = []
        self._subscribers: Dict[
            Optional[EventCategory], List[Callable[[SimEvent], None]]
        ] = {}

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self._events)

    def emit(
        self,
        time: float,
        category: EventCategory,
        kind: str,
        source: str,
        **data: Any,
    ) -> SimEvent:
        """Record an event and notify subscribers."""
        event = SimEvent(time=time, category=category, kind=kind, source=source, data=data)
        self._events.append(event)
        for listener in self._subscribers.get(category, ()):
            listener(event)
        for listener in self._subscribers.get(None, ()):
            listener(event)
        return event

    def subscribe(
        self,
        listener: Callable[[SimEvent], None],
        category: Optional[EventCategory] = None,
    ) -> None:
        """Call ``listener`` for every event of ``category`` (None = all)."""
        self._subscribers.setdefault(category, []).append(listener)

    def of_category(self, category: EventCategory) -> List[SimEvent]:
        return [e for e in self._events if e.category is category]

    def of_kind(self, kind: str) -> List[SimEvent]:
        return [e for e in self._events if e.kind == kind]

    def between(self, start: float, end: float) -> List[SimEvent]:
        return [e for e in self._events if start <= e.time <= end]

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def last(self, kind: str) -> Optional[SimEvent]:
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None
