"""The manually-operated harvester.

The paper assumes harvesting itself stays manual, making the worksite
*partially* autonomous.  The harvester works through a sequence of cutting
positions at the harvest site, producing log piles the forwarder collects.
Its operator is a protected human who occasionally dismounts (adding a worker
to the worksite's hazard picture).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.engine import Simulator
from repro.sim.entities import Entity
from repro.sim.events import EventCategory, EventLog
from repro.sim.geometry import Vec2
from repro.sim.missions import LogPile
from repro.sim.rng import RngStreams


class Harvester(Entity):
    """Manually-operated harvester working through cutting positions.

    Parameters
    ----------
    cutting_positions:
        Positions worked in order; a log pile is produced at each.
    work_time_s:
        Time spent cutting at each position.
    pile_volume_m3:
        Volume of the pile produced per position.
    """

    body_height = 3.5

    def __init__(
        self,
        name: str,
        sim: Simulator,
        log: EventLog,
        streams: RngStreams,
        position: Vec2,
        cutting_positions: Optional[List[Vec2]] = None,
        *,
        work_time_s: float = 900.0,
        pile_volume_m3: float = 15.0,
        tick_s: float = 0.5,
    ) -> None:
        super().__init__(
            name, sim, log, position, max_speed=1.2, max_accel=0.5, tick_s=tick_s
        )
        self._rng = streams.stream(f"harvester.{name}")
        self._queue: List[Vec2] = list(cutting_positions or [])
        self.work_time_s = work_time_s
        self.pile_volume_m3 = pile_volume_m3
        self.piles_produced: List[LogPile] = []
        self.working = False
        if self._queue:
            sim.schedule(1.0, self._next_position)

    def _next_position(self) -> None:
        if not self.alive or not self._queue:
            self.emit(EventCategory.MISSION, "harvest_complete",
                      piles=len(self.piles_produced))
            return
        destination = self._queue.pop(0)
        self.set_route([destination], speed=self.max_speed)

    def on_route_complete(self) -> None:
        if self.working:
            return
        self.working = True
        self.emit(EventCategory.MISSION, "cutting_started")
        jitter = self._rng.uniform(0.9, 1.1)
        self.sim.schedule(self.work_time_s * jitter, self._finish_cutting)

    def _finish_cutting(self) -> None:
        if not self.alive:
            return
        self.working = False
        pile = LogPile(position=self.position, volume_m3=self.pile_volume_m3)
        self.piles_produced.append(pile)
        self.emit(EventCategory.MISSION, "pile_produced",
                  volume_m3=pile.volume_m3,
                  position=(self.position.x, self.position.y))
        self._next_position()
