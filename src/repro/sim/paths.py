"""Grid-based path planning for ground vehicles.

The planner rasterises the world into a coarse occupancy grid (trunks and
steep slopes block cells) and runs A* with octile distance.  Resulting cell
paths are smoothed by greedy line-of-sight shortcutting against
:meth:`repro.sim.world.World.is_traversable`.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

from repro.sim.geometry import Vec2
from repro.sim.world import World


class PathNotFound(RuntimeError):
    """Raised when no traversable path exists between the endpoints."""


_NEIGHBOURS = [
    (1, 0, 1.0),
    (-1, 0, 1.0),
    (0, 1, 1.0),
    (0, -1, 1.0),
    (1, 1, math.sqrt(2.0)),
    (1, -1, math.sqrt(2.0)),
    (-1, 1, math.sqrt(2.0)),
    (-1, -1, math.sqrt(2.0)),
]


class GridPlanner:
    """A* planner over a lazily-evaluated occupancy grid.

    Parameters
    ----------
    world:
        The worksite; traversability queries are delegated to it.
    cell_size:
        Grid resolution in metres.
    clearance:
        Required clearance from trunks in metres (vehicle half-width).
    """

    def __init__(self, world: World, *, cell_size: float = 3.0, clearance: float = 1.5) -> None:
        self.world = world
        self.cell_size = cell_size
        self.clearance = clearance
        self._free_cache: Dict[Tuple[int, int], bool] = {}

    # -- grid helpers -----------------------------------------------------
    def _to_cell(self, p: Vec2) -> Tuple[int, int]:
        return (int(p.x // self.cell_size), int(p.y // self.cell_size))

    def _cell_center(self, cell: Tuple[int, int]) -> Vec2:
        return Vec2(
            (cell[0] + 0.5) * self.cell_size, (cell[1] + 0.5) * self.cell_size
        )

    def _is_free(self, cell: Tuple[int, int]) -> bool:
        cached = self._free_cache.get(cell)
        if cached is not None:
            return cached
        center = self._cell_center(cell)
        free = self.world.is_traversable(center, clearance=self.clearance)
        self._free_cache[cell] = free
        return free

    @staticmethod
    def _octile(a: Tuple[int, int], b: Tuple[int, int]) -> float:
        dx, dy = abs(a[0] - b[0]), abs(a[1] - b[1])
        return max(dx, dy) + (math.sqrt(2.0) - 1.0) * min(dx, dy)

    def _nearest_free(self, cell: Tuple[int, int], radius: int = 4) -> Optional[Tuple[int, int]]:
        """Closest free cell within a small search radius (endpoint snapping)."""
        if self._is_free(cell):
            return cell
        for r in range(1, radius + 1):
            for dx in range(-r, r + 1):
                for dy in range(-r, r + 1):
                    if max(abs(dx), abs(dy)) != r:
                        continue
                    candidate = (cell[0] + dx, cell[1] + dy)
                    if self._is_free(candidate):
                        return candidate
        return None

    # -- planning ---------------------------------------------------------
    def plan(self, start: Vec2, goal: Vec2, *, max_expansions: int = 200_000) -> List[Vec2]:
        """Plan a smoothed waypoint path from ``start`` to ``goal``.

        Raises
        ------
        PathNotFound
            If the endpoints cannot be snapped to free cells or A* exhausts
            the expansion budget without reaching the goal.
        """
        start_cell = self._nearest_free(self._to_cell(start))
        goal_cell = self._nearest_free(self._to_cell(goal))
        if start_cell is None or goal_cell is None:
            raise PathNotFound("endpoint lies in blocked terrain")
        if start_cell == goal_cell:
            return [goal]

        open_heap: List[Tuple[float, int, Tuple[int, int]]] = []
        counter = 0
        heapq.heappush(open_heap, (0.0, counter, start_cell))
        came_from: Dict[Tuple[int, int], Tuple[int, int]] = {}
        g_score: Dict[Tuple[int, int], float] = {start_cell: 0.0}
        closed = set()
        expansions = 0

        while open_heap:
            _, __, current = heapq.heappop(open_heap)
            if current in closed:
                continue
            if current == goal_cell:
                return self._reconstruct(came_from, current, start, goal)
            closed.add(current)
            expansions += 1
            if expansions > max_expansions:
                break
            for dx, dy, cost in _NEIGHBOURS:
                neighbour = (current[0] + dx, current[1] + dy)
                if neighbour in closed or not self._is_free(neighbour):
                    continue
                tentative = g_score[current] + cost
                if tentative < g_score.get(neighbour, math.inf):
                    g_score[neighbour] = tentative
                    came_from[neighbour] = current
                    counter += 1
                    f = tentative + self._octile(neighbour, goal_cell)
                    heapq.heappush(open_heap, (f, counter, neighbour))
        raise PathNotFound(f"no path from {start} to {goal}")

    def _reconstruct(
        self,
        came_from: Dict[Tuple[int, int], Tuple[int, int]],
        current: Tuple[int, int],
        start: Vec2,
        goal: Vec2,
    ) -> List[Vec2]:
        cells = [current]
        while current in came_from:
            current = came_from[current]
            cells.append(current)
        cells.reverse()
        points = [start] + [self._cell_center(c) for c in cells[1:-1]] + [goal]
        return self._smooth(points)

    def _smooth(self, points: List[Vec2]) -> List[Vec2]:
        """Greedy shortcutting: skip intermediate points with a clear corridor."""
        if len(points) <= 2:
            return points[1:] if len(points) == 2 else points
        smoothed = [points[0]]
        i = 0
        while i < len(points) - 1:
            j = len(points) - 1
            while j > i + 1:
                if self._corridor_free(points[i], points[j]):
                    break
                j -= 1
            smoothed.append(points[j])
            i = j
        return smoothed[1:]  # the entity starts at points[0]

    def _corridor_free(self, a: Vec2, b: Vec2) -> bool:
        dist = a.distance_to(b)
        steps = max(2, int(dist / (self.cell_size / 2.0)))
        for k in range(1, steps):
            p = a.lerp(b, k / steps)
            if not self.world.is_traversable(p, clearance=self.clearance):
                return False
        return True
