"""Discrete-event simulation kernel and the forestry worksite world.

The kernel (:mod:`repro.sim.engine`) is a classic event-heap discrete-event
simulator with deterministic tie-breaking.  On top of it the subpackage builds
the partially-autonomous forestry worksite of the paper's Figure 1: terrain
with tree occluders (:mod:`repro.sim.world`), weather dynamics
(:mod:`repro.sim.weather`), and kinematic agents — the autonomous forwarder,
the observation drone, the manually-operated harvester and human workers.
"""

from repro.sim.engine import Event, Process, Simulator
from repro.sim.rng import RngStreams
from repro.sim.geometry import Vec2, Segment
from repro.sim.world import World, Tree, Zone
from repro.sim.weather import Weather, WeatherState
from repro.sim.entities import Entity, KinematicState
from repro.sim.events import EventLog, SimEvent
from repro.sim.metrics import MetricsCollector

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "RngStreams",
    "Vec2",
    "Segment",
    "World",
    "Tree",
    "Zone",
    "Weather",
    "WeatherState",
    "Entity",
    "KinematicState",
    "EventLog",
    "SimEvent",
    "MetricsCollector",
]
