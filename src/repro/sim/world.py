"""The forestry worksite world: trees, zones, obstacles, line of sight.

This is the substrate for the paper's Figure 1: an area of forest containing a
harvesting site, a landing area connected by an extraction route, standing
trees that occlude sensors and block paths, and named operational zones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.perf import counters as perf
from repro.sim.geometry import Segment, Vec2
from repro.sim.rng import RngStreams
from repro.sim.terrain import Terrain, generate_terrain


@dataclass(frozen=True, slots=True)
class Tree:
    """A standing tree: a vertical cylinder that occludes and obstructs."""

    position: Vec2
    canopy_radius: float = 2.0
    trunk_radius: float = 0.3
    height: float = 18.0


@dataclass(frozen=True, slots=True)
class Zone:
    """A named rectangular operational zone (harvest site, landing area, ...)."""

    name: str
    min_corner: Vec2
    max_corner: Vec2

    def contains(self, p: Vec2) -> bool:
        return (
            self.min_corner.x <= p.x <= self.max_corner.x
            and self.min_corner.y <= p.y <= self.max_corner.y
        )

    def center(self) -> Vec2:
        return Vec2(
            (self.min_corner.x + self.max_corner.x) / 2.0,
            (self.min_corner.y + self.max_corner.y) / 2.0,
        )

    def area(self) -> float:
        return (self.max_corner.x - self.min_corner.x) * (
            self.max_corner.y - self.min_corner.y
        )


class World:
    """The worksite: terrain + trees + zones, with spatial queries.

    Trees are indexed in a coarse uniform hash grid so line-of-sight and
    obstruction queries stay fast for thousands of trees.
    """

    _CELL = 10.0  # metres; coarse grid cell for the tree index

    #: canopy-cache key resolution: positions are quantised to millimetres,
    #: so endpoints within 0.5 mm share an entry (static machines re-query
    #: bit-identical positions every frame; anything moving changes key)
    _CANOPY_QUANTUM = 1000.0
    _CANOPY_CACHE_MAX = 65536

    def __init__(
        self,
        terrain: Terrain,
        trees: Optional[Sequence[Tree]] = None,
        zones: Optional[Sequence[Zone]] = None,
    ) -> None:
        self.terrain = terrain
        self.trees: List[Tree] = []
        self.zones: Dict[str, Zone] = {}
        self._grid: Dict[Tuple[int, int], List[Tree]] = {}
        self._canopy_cache: Dict[Tuple[int, int, int, int], float] = {}
        for tree in trees or []:
            self.add_tree(tree)
        for zone in zones or []:
            self.add_zone(zone)

    @property
    def width(self) -> float:
        return self.terrain.width

    @property
    def height(self) -> float:
        return self.terrain.height

    def add_tree(self, tree: Tree) -> None:
        self.trees.append(tree)
        self._grid.setdefault(self._cell(tree.position), []).append(tree)
        # the forest changed: every memoised sight line is stale
        self._canopy_cache.clear()

    def add_zone(self, zone: Zone) -> None:
        if zone.name in self.zones:
            raise ValueError(f"duplicate zone name: {zone.name!r}")
        self.zones[zone.name] = zone

    def zone(self, name: str) -> Zone:
        return self.zones[name]

    def _cell(self, p: Vec2) -> Tuple[int, int]:
        return (int(p.x // self._CELL), int(p.y // self._CELL))

    def _trees_near(
        self, ax: float, ay: float, bx: float, by: float, pad: float
    ) -> List[Tree]:
        """Trees whose cells overlap the padded bounding box of ``a``–``b``.

        Each tree lives in exactly one grid cell, so the concatenated cell
        buckets are already duplicate-free, in cell-scan order.
        """
        cell = self._CELL
        grid = self._grid
        min_x = (ax if ax < bx else bx) - pad
        max_x = (ax if ax > bx else bx) + pad
        min_y = (ay if ay < by else by) - pad
        max_y = (ay if ay > by else by) + pad
        found: List[Tree] = []
        cy_lo = int(min_y // cell)
        cy_hi = int(max_y // cell) + 1
        for cx in range(int(min_x // cell), int(max_x // cell) + 1):
            for cy in range(cy_lo, cy_hi):
                bucket = grid.get((cx, cy))
                if bucket:
                    found.extend(bucket)
        return found

    def trees_near_segment(self, seg: Segment, pad: float = 5.0) -> List[Tree]:
        """Candidate trees whose cells overlap the segment's bounding box."""
        return self._trees_near(seg.a.x, seg.a.y, seg.b.x, seg.b.y, pad)

    def trees_within(self, center: Vec2, radius: float) -> List[Tree]:
        """Trees whose position lies within ``radius`` of ``center``."""
        found = []
        cells_x = range(
            int((center.x - radius) // self._CELL),
            int((center.x + radius) // self._CELL) + 1,
        )
        cells_y = range(
            int((center.y - radius) // self._CELL),
            int((center.y + radius) // self._CELL) + 1,
        )
        for cx in cells_x:
            for cy in cells_y:
                for tree in self._grid.get((cx, cy), ()):
                    if tree.position.distance_to(center) <= radius:
                        found.append(tree)
        return found

    def canopy_blockage(self, observer: Vec2, target: Vec2) -> float:
        """Total canopy path length (metres) intersected by the sight line.

        Used by ground-level sensors: each metre of canopy attenuates
        detection probability.  A drone looking down suffers far less canopy
        blockage, which is modelled by the occlusion layer in
        :mod:`repro.sensors.occlusion`.

        Results are memoised per millimetre-quantised endpoint pair: links
        between static machines re-query the identical sight line every
        frame.  The cache is cleared whenever a tree is added.
        """
        q = self._CANOPY_QUANTUM
        key = (
            round(observer.x * q), round(observer.y * q),
            round(target.x * q), round(target.y * q),
        )
        cache = self._canopy_cache
        cached = cache.get(key)
        if cached is not None:
            if perf.ACTIVE:
                perf.incr("world.canopy_cache_hit")
            return cached
        if perf.ACTIVE:
            perf.incr("world.canopy_cache_miss")
        total = self._canopy_blockage_uncached(observer, target)
        if len(cache) >= self._CANOPY_CACHE_MAX:
            cache.clear()
        cache[key] = total
        return total

    def _canopy_blockage_uncached(self, observer: Vec2, target: Vec2) -> float:
        # raw-float inline of Segment.circle_intersection_params over the
        # candidate trees — identical arithmetic, no per-tree allocations
        ax, ay = observer.x, observer.y
        bx, by = target.x, target.y
        length = math.hypot(ax - bx, ay - by)
        if length == 0.0:
            return 0.0
        dx = bx - ax
        dy = by - ay
        seg_norm_sq = dx * dx + dy * dy
        sqrt = math.sqrt
        total = 0.0
        if seg_norm_sq == 0.0:
            # denormal endpoint separation: length is nonzero but the squared
            # direction underflows.  Mirror Segment.circle_intersection_params,
            # which treats a == 0.0 as a point segment covered by any canopy
            # the point sits inside.
            for tree in self._trees_near(ax, ay, bx, by, 5.0):
                center = tree.position
                if math.hypot(ax - center.x, ay - center.y) <= tree.canopy_radius:
                    total += length
            return total
        for tree in self._trees_near(ax, ay, bx, by, 5.0):
            center = tree.position
            radius = tree.canopy_radius
            fx = ax - center.x
            fy = ay - center.y
            b_coef = 2.0 * (fx * dx + fy * dy)
            c = (fx * fx + fy * fy) - radius * radius
            disc = b_coef * b_coef - 4.0 * seg_norm_sq * c
            if disc < 0.0:
                continue
            sqrt_disc = sqrt(disc)
            t0 = (-b_coef - sqrt_disc) / (2.0 * seg_norm_sq)
            t1 = (-b_coef + sqrt_disc) / (2.0 * seg_norm_sq)
            lo = t0 if t0 > 0.0 else 0.0
            hi = t1 if t1 < 1.0 else 1.0
            if lo > hi:
                continue
            total += (hi - lo) * length
        return total

    def trunk_blocks(self, observer: Vec2, target: Vec2) -> bool:
        """True if a trunk lies directly on the sight line."""
        # raw-float inline of Segment.distance_to_point over the candidates
        ax, ay = observer.x, observer.y
        bx, by = target.x, target.y
        dx = bx - ax
        dy = by - ay
        denom = dx * dx + dy * dy
        hypot = math.hypot
        for tree in self._trees_near(ax, ay, bx, by, 1.0):
            center = tree.position
            tx, ty = center.x, center.y
            trunk = tree.trunk_radius
            # Do not let the endpoints' own immediate surroundings count.
            if hypot(tx - ax, ty - ay) < trunk + 0.1:
                continue
            if hypot(tx - bx, ty - by) < trunk + 0.1:
                continue
            if denom == 0.0:
                dist = hypot(ax - tx, ay - ty)
            else:
                t = ((tx - ax) * dx + (ty - ay) * dy) / denom
                if t < 0.0:
                    t = 0.0
                elif t > 1.0:
                    t = 1.0
                dist = hypot(ax + dx * t - tx, ay + dy * t - ty)
            if dist <= trunk:
                return True
        return False

    def terrain_blocks(
        self,
        observer: Vec2,
        observer_height: float,
        target: Vec2,
        target_height: float,
    ) -> bool:
        """True if terrain blocks the 3-D sight line."""
        return self.terrain.blocks_line_of_sight(
            observer, observer_height, target, target_height
        )

    def is_traversable(self, p: Vec2, clearance: float = 1.5) -> bool:
        """True if a ground vehicle can occupy ``p``.

        A position is blocked by nearby trunks or by excessive slope.
        """
        if not self.terrain.contains(p):
            return False
        if self.terrain.slope_at(p) > 0.45:
            return False
        for tree in self.trees_within(p, clearance + 1.0):
            if tree.position.distance_to(p) < tree.trunk_radius + clearance:
                return False
        return True


def generate_forest(
    streams: RngStreams,
    *,
    width: float = 300.0,
    height: float = 300.0,
    tree_density: float = 0.02,
    clearings: Optional[Sequence[Zone]] = None,
    n_ridges: int = 4,
    ridge_height: float = 6.0,
) -> World:
    """Generate a deterministic forest worksite.

    Parameters
    ----------
    tree_density:
        Trees per square metre outside clearings (0.02 ≈ managed boreal stand).
    clearings:
        Zones kept free of trees (harvest site, landing area, routes).
    """
    terrain = generate_terrain(
        width, height, streams, n_ridges=n_ridges, ridge_height=ridge_height
    )
    rng = streams.stream("forest")
    clearings = list(clearings or [])
    n_trees = int(width * height * tree_density)
    trees = []
    attempts = 0
    while len(trees) < n_trees and attempts < n_trees * 10:
        attempts += 1
        p = Vec2(rng.uniform(0.0, width), rng.uniform(0.0, height))
        if any(zone.contains(p) for zone in clearings):
            continue
        canopy = rng.uniform(1.5, 3.5)
        trunk = rng.uniform(0.15, 0.45)
        tall = rng.uniform(12.0, 26.0)
        trees.append(
            Tree(position=p, canopy_radius=canopy, trunk_radius=trunk, height=tall)
        )
    world = World(terrain, trees=trees, zones=clearings)
    return world
