"""The forestry worksite world: trees, zones, obstacles, line of sight.

This is the substrate for the paper's Figure 1: an area of forest containing a
harvesting site, a landing area connected by an extraction route, standing
trees that occlude sensors and block paths, and named operational zones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.geometry import Segment, Vec2
from repro.sim.rng import RngStreams
from repro.sim.terrain import Terrain, generate_terrain


@dataclass(frozen=True)
class Tree:
    """A standing tree: a vertical cylinder that occludes and obstructs."""

    position: Vec2
    canopy_radius: float = 2.0
    trunk_radius: float = 0.3
    height: float = 18.0


@dataclass(frozen=True)
class Zone:
    """A named rectangular operational zone (harvest site, landing area, ...)."""

    name: str
    min_corner: Vec2
    max_corner: Vec2

    def contains(self, p: Vec2) -> bool:
        return (
            self.min_corner.x <= p.x <= self.max_corner.x
            and self.min_corner.y <= p.y <= self.max_corner.y
        )

    def center(self) -> Vec2:
        return Vec2(
            (self.min_corner.x + self.max_corner.x) / 2.0,
            (self.min_corner.y + self.max_corner.y) / 2.0,
        )

    def area(self) -> float:
        return (self.max_corner.x - self.min_corner.x) * (
            self.max_corner.y - self.min_corner.y
        )


class World:
    """The worksite: terrain + trees + zones, with spatial queries.

    Trees are indexed in a coarse uniform hash grid so line-of-sight and
    obstruction queries stay fast for thousands of trees.
    """

    _CELL = 10.0  # metres; coarse grid cell for the tree index

    def __init__(
        self,
        terrain: Terrain,
        trees: Optional[Sequence[Tree]] = None,
        zones: Optional[Sequence[Zone]] = None,
    ) -> None:
        self.terrain = terrain
        self.trees: List[Tree] = []
        self.zones: Dict[str, Zone] = {}
        self._grid: Dict[Tuple[int, int], List[Tree]] = {}
        for tree in trees or []:
            self.add_tree(tree)
        for zone in zones or []:
            self.add_zone(zone)

    @property
    def width(self) -> float:
        return self.terrain.width

    @property
    def height(self) -> float:
        return self.terrain.height

    def add_tree(self, tree: Tree) -> None:
        self.trees.append(tree)
        self._grid.setdefault(self._cell(tree.position), []).append(tree)

    def add_zone(self, zone: Zone) -> None:
        if zone.name in self.zones:
            raise ValueError(f"duplicate zone name: {zone.name!r}")
        self.zones[zone.name] = zone

    def zone(self, name: str) -> Zone:
        return self.zones[name]

    def _cell(self, p: Vec2) -> Tuple[int, int]:
        return (int(p.x // self._CELL), int(p.y // self._CELL))

    def _cells_along(self, seg: Segment, pad: float) -> Iterable[Tuple[int, int]]:
        """Grid cells overlapping the segment's padded bounding box."""
        min_x = min(seg.a.x, seg.b.x) - pad
        max_x = max(seg.a.x, seg.b.x) + pad
        min_y = min(seg.a.y, seg.b.y) - pad
        max_y = max(seg.a.y, seg.b.y) + pad
        for cx in range(int(min_x // self._CELL), int(max_x // self._CELL) + 1):
            for cy in range(int(min_y // self._CELL), int(max_y // self._CELL) + 1):
                yield (cx, cy)

    def trees_near_segment(self, seg: Segment, pad: float = 5.0) -> List[Tree]:
        """Candidate trees whose cells overlap the segment's bounding box."""
        found: List[Tree] = []
        seen = set()
        for cell in self._cells_along(seg, pad):
            for tree in self._grid.get(cell, ()):
                key = id(tree)
                if key not in seen:
                    seen.add(key)
                    found.append(tree)
        return found

    def trees_within(self, center: Vec2, radius: float) -> List[Tree]:
        """Trees whose position lies within ``radius`` of ``center``."""
        found = []
        cells_x = range(
            int((center.x - radius) // self._CELL),
            int((center.x + radius) // self._CELL) + 1,
        )
        cells_y = range(
            int((center.y - radius) // self._CELL),
            int((center.y + radius) // self._CELL) + 1,
        )
        for cx in cells_x:
            for cy in cells_y:
                for tree in self._grid.get((cx, cy), ()):
                    if tree.position.distance_to(center) <= radius:
                        found.append(tree)
        return found

    def canopy_blockage(self, observer: Vec2, target: Vec2) -> float:
        """Total canopy path length (metres) intersected by the sight line.

        Used by ground-level sensors: each metre of canopy attenuates
        detection probability.  A drone looking down suffers far less canopy
        blockage, which is modelled by the occlusion layer in
        :mod:`repro.sensors.occlusion`.
        """
        seg = Segment(observer, target)
        total = 0.0
        length = seg.length()
        if length == 0.0:
            return 0.0
        for tree in self.trees_near_segment(seg):
            params = seg.circle_intersection_params(tree.position, tree.canopy_radius)
            if params is not None:
                total += (params[1] - params[0]) * length
        return total

    def trunk_blocks(self, observer: Vec2, target: Vec2) -> bool:
        """True if a trunk lies directly on the sight line."""
        seg = Segment(observer, target)
        for tree in self.trees_near_segment(seg, pad=1.0):
            # Do not let the endpoints' own immediate surroundings count.
            if tree.position.distance_to(observer) < tree.trunk_radius + 0.1:
                continue
            if tree.position.distance_to(target) < tree.trunk_radius + 0.1:
                continue
            if seg.intersects_circle(tree.position, tree.trunk_radius):
                return True
        return False

    def terrain_blocks(
        self,
        observer: Vec2,
        observer_height: float,
        target: Vec2,
        target_height: float,
    ) -> bool:
        """True if terrain blocks the 3-D sight line."""
        return self.terrain.blocks_line_of_sight(
            observer, observer_height, target, target_height
        )

    def is_traversable(self, p: Vec2, clearance: float = 1.5) -> bool:
        """True if a ground vehicle can occupy ``p``.

        A position is blocked by nearby trunks or by excessive slope.
        """
        if not self.terrain.contains(p):
            return False
        if self.terrain.slope_at(p) > 0.45:
            return False
        for tree in self.trees_within(p, clearance + 1.0):
            if tree.position.distance_to(p) < tree.trunk_radius + clearance:
                return False
        return True


def generate_forest(
    streams: RngStreams,
    *,
    width: float = 300.0,
    height: float = 300.0,
    tree_density: float = 0.02,
    clearings: Optional[Sequence[Zone]] = None,
    n_ridges: int = 4,
    ridge_height: float = 6.0,
) -> World:
    """Generate a deterministic forest worksite.

    Parameters
    ----------
    tree_density:
        Trees per square metre outside clearings (0.02 ≈ managed boreal stand).
    clearings:
        Zones kept free of trees (harvest site, landing area, routes).
    """
    terrain = generate_terrain(
        width, height, streams, n_ridges=n_ridges, ridge_height=ridge_height
    )
    rng = streams.stream("forest")
    clearings = list(clearings or [])
    n_trees = int(width * height * tree_density)
    trees = []
    attempts = 0
    while len(trees) < n_trees and attempts < n_trees * 10:
        attempts += 1
        p = Vec2(rng.uniform(0.0, width), rng.uniform(0.0, height))
        if any(zone.contains(p) for zone in clearings):
            continue
        canopy = rng.uniform(1.5, 3.5)
        trunk = rng.uniform(0.15, 0.45)
        tall = rng.uniform(12.0, 26.0)
        trees.append(
            Tree(position=p, canopy_radius=canopy, trunk_radius=trunk, height=tall)
        )
    world = World(terrain, trees=trees, zones=clearings)
    return world
