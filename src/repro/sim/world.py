"""The forestry worksite world: trees, zones, obstacles, line of sight.

This is the substrate for the paper's Figure 1: an area of forest containing a
harvesting site, a landing area connected by an extraction route, standing
trees that occlude sensors and block paths, and named operational zones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.perf import counters as perf
from repro.sim.geometry import Segment, Vec2
from repro.sim.rng import RngStreams
from repro.sim.terrain import Terrain, generate_terrain

try:  # numpy accelerates bulk canopy-intersection sweeps; scalar path remains
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional accelerator
    _np = None


@dataclass(frozen=True, slots=True)
class Tree:
    """A standing tree: a vertical cylinder that occludes and obstructs."""

    position: Vec2
    canopy_radius: float = 2.0
    trunk_radius: float = 0.3
    height: float = 18.0


@dataclass(frozen=True, slots=True)
class Zone:
    """A named rectangular operational zone (harvest site, landing area, ...)."""

    name: str
    min_corner: Vec2
    max_corner: Vec2

    def contains(self, p: Vec2) -> bool:
        return (
            self.min_corner.x <= p.x <= self.max_corner.x
            and self.min_corner.y <= p.y <= self.max_corner.y
        )

    def center(self) -> Vec2:
        return Vec2(
            (self.min_corner.x + self.max_corner.x) / 2.0,
            (self.min_corner.y + self.max_corner.y) / 2.0,
        )

    def area(self) -> float:
        return (self.max_corner.x - self.min_corner.x) * (
            self.max_corner.y - self.min_corner.y
        )


class World:
    """The worksite: terrain + trees + zones, with spatial queries.

    Trees are indexed in a coarse uniform hash grid so line-of-sight and
    obstruction queries stay fast for thousands of trees.
    """

    _CELL = 10.0  # metres; coarse grid cell for the tree index

    #: canopy-cache key resolution: positions are quantised to millimetres,
    #: so endpoints within 0.5 mm share an entry (static machines re-query
    #: bit-identical positions every frame; anything moving changes key)
    _CANOPY_QUANTUM = 1000.0
    #: LRU capacity of the canopy memo: long fuzz sessions with moving
    #: endpoints would otherwise grow the mm-quantised key space without
    #: bound.  Hot static-link keys are touched every frame, so eviction
    #: only sheds one-shot keys from moving endpoints.
    _CANOPY_CACHE_MAX = 65536
    #: minimum candidate-tree count for the vectorised canopy sweep; below
    #: this the numpy call overhead beats the plain loop (measured breakeven
    #: on a single-vCPU host is ~150 candidates — numpy ufunc dispatch costs
    #: several microseconds per op, so short sweeps stay scalar)
    _CANOPY_BATCH_MIN = 160

    def __init__(
        self,
        terrain: Terrain,
        trees: Optional[Sequence[Tree]] = None,
        zones: Optional[Sequence[Zone]] = None,
    ) -> None:
        self.terrain = terrain
        self.trees: List[Tree] = []
        self.zones: Dict[str, Zone] = {}
        self._grid: Dict[Tuple[int, int], List[Tree]] = {}
        self._canopy_cache: Dict[Tuple[int, int, int, int], float] = {}
        # lazily-built per-cell (x, y, canopy_radius) numpy arrays for the
        # vectorised canopy sweep; invalidated whenever the forest changes
        self._cell_arrays: Dict[Tuple[int, int], tuple] = {}
        # lazily-built per-cell flat tuple lists for the scalar sweeps:
        # (x, y, canopy_radius) and (x, y, trunk_radius) — iterating plain
        # floats beats touching Tree attributes per query
        self._cell_canopy: Dict[Tuple[int, int], List[Tuple[float, float, float]]] = {}
        self._cell_trunk: Dict[Tuple[int, int], List[Tuple[float, float, float]]] = {}
        # memo of concatenated candidate columns per scanned cell set —
        # consecutive queries from a moving observer scan the same cells
        self._concat_cache: Dict[tuple, tuple] = {}
        # memo of combined candidate lists per scanned cell *rectangle*:
        # a moving endpoint shifts its bbox by centimetres per tick, so the
        # 10 m cell rectangle — and therefore the candidate set, in scan
        # order — is identical across many consecutive queries
        self._rect_canopy: Dict[Tuple[int, int, int, int], tuple] = {}
        self._rect_trunk: Dict[Tuple[int, int, int, int], List[Tuple[float, float, float]]] = {}
        for tree in trees or []:
            self.add_tree(tree)
        for zone in zones or []:
            self.add_zone(zone)

    @property
    def width(self) -> float:
        return self.terrain.width

    @property
    def height(self) -> float:
        return self.terrain.height

    def add_tree(self, tree: Tree) -> None:
        self.trees.append(tree)
        self._grid.setdefault(self._cell(tree.position), []).append(tree)
        # the forest changed: every memoised sight line is stale
        self._canopy_cache.clear()
        self._cell_arrays.clear()
        self._cell_canopy.clear()
        self._cell_trunk.clear()
        self._concat_cache.clear()
        self._rect_canopy.clear()
        self._rect_trunk.clear()

    def add_zone(self, zone: Zone) -> None:
        if zone.name in self.zones:
            raise ValueError(f"duplicate zone name: {zone.name!r}")
        self.zones[zone.name] = zone

    def zone(self, name: str) -> Zone:
        return self.zones[name]

    def _cell(self, p: Vec2) -> Tuple[int, int]:
        return (int(p.x // self._CELL), int(p.y // self._CELL))

    def _trees_near(
        self, ax: float, ay: float, bx: float, by: float, pad: float
    ) -> List[Tree]:
        """Trees whose cells overlap the padded bounding box of ``a``–``b``.

        Each tree lives in exactly one grid cell, so the concatenated cell
        buckets are already duplicate-free, in cell-scan order.
        """
        cell = self._CELL
        grid = self._grid
        min_x = (ax if ax < bx else bx) - pad
        max_x = (ax if ax > bx else bx) + pad
        min_y = (ay if ay < by else by) - pad
        max_y = (ay if ay > by else by) + pad
        found: List[Tree] = []
        cy_lo = int(min_y // cell)
        cy_hi = int(max_y // cell) + 1
        for cx in range(int(min_x // cell), int(max_x // cell) + 1):
            for cy in range(cy_lo, cy_hi):
                bucket = grid.get((cx, cy))
                if bucket:
                    found.extend(bucket)
        return found

    def trees_near_segment(self, seg: Segment, pad: float = 5.0) -> List[Tree]:
        """Candidate trees whose cells overlap the segment's bounding box."""
        return self._trees_near(seg.a.x, seg.a.y, seg.b.x, seg.b.y, pad)

    def trees_within(self, center: Vec2, radius: float) -> List[Tree]:
        """Trees whose position lies within ``radius`` of ``center``."""
        found = []
        cells_x = range(
            int((center.x - radius) // self._CELL),
            int((center.x + radius) // self._CELL) + 1,
        )
        cells_y = range(
            int((center.y - radius) // self._CELL),
            int((center.y + radius) // self._CELL) + 1,
        )
        for cx in cells_x:
            for cy in cells_y:
                for tree in self._grid.get((cx, cy), ()):
                    if tree.position.distance_to(center) <= radius:
                        found.append(tree)
        return found

    def canopy_blockage(self, observer: Vec2, target: Vec2) -> float:
        """Total canopy path length (metres) intersected by the sight line.

        Used by ground-level sensors: each metre of canopy attenuates
        detection probability.  A drone looking down suffers far less canopy
        blockage, which is modelled by the occlusion layer in
        :mod:`repro.sensors.occlusion`.

        Results are memoised per millimetre-quantised endpoint pair: links
        between static machines re-query the identical sight line every
        frame.  The memo is an LRU bounded at :attr:`_CANOPY_CACHE_MAX`
        entries (dict insertion order doubles as recency order: hits are
        re-inserted at the end, the oldest entry is evicted at capacity),
        and is cleared whenever a tree is added.
        """
        q = self._CANOPY_QUANTUM
        key = (
            round(observer.x * q), round(observer.y * q),
            round(target.x * q), round(target.y * q),
        )
        cache = self._canopy_cache
        cached = cache.get(key)
        if cached is not None:
            # refresh recency: move the key to the end of the dict
            del cache[key]
            cache[key] = cached
            if perf.ACTIVE:
                perf.incr("world.canopy_cache_hit")
            return cached
        if perf.ACTIVE:
            perf.incr("world.canopy_cache_miss")
        total = self._canopy_blockage_uncached(observer, target)
        if len(cache) >= self._CANOPY_CACHE_MAX:
            del cache[next(iter(cache))]
            if perf.ACTIVE:
                perf.incr("world.canopy_cache_evict")
        cache[key] = total
        return total

    def _cell_array(self, key: Tuple[int, int]):
        """Cached (x, y, canopy_radius) numpy columns for one grid cell."""
        arrays = self._cell_arrays.get(key)
        if arrays is None:
            bucket = self._grid[key]
            arrays = (
                _np.array([t.position.x for t in bucket]),
                _np.array([t.position.y for t in bucket]),
                _np.array([t.canopy_radius for t in bucket]),
            )
            self._cell_arrays[key] = arrays
        return arrays

    def _canopy_blockage_uncached(self, observer: Vec2, target: Vec2) -> float:
        # raw-float inline of Segment.circle_intersection_params over the
        # candidate trees — identical arithmetic, no per-tree allocations
        ax, ay = observer.x, observer.y
        bx, by = target.x, target.y
        length = math.hypot(ax - bx, ay - by)
        if length == 0.0:
            return 0.0
        dx = bx - ax
        dy = by - ay
        seg_norm_sq = dx * dx + dy * dy
        sqrt = math.sqrt
        total = 0.0
        if seg_norm_sq == 0.0:
            # denormal endpoint separation: length is nonzero but the squared
            # direction underflows.  Mirror Segment.circle_intersection_params,
            # which treats a == 0.0 as a point segment covered by any canopy
            # the point sits inside.
            for tree in self._trees_near(ax, ay, bx, by, 5.0):
                center = tree.position
                if math.hypot(ax - center.x, ay - center.y) <= tree.canopy_radius:
                    total += length
            return total
        # candidate lookup through the cell-rectangle memo: the bbox only
        # crosses a 10 m cell boundary every few hundred ticks of movement,
        # so the combined candidate list (in _trees_near x-major scan order)
        # is reused without touching the grid at all
        cell = self._CELL
        min_x = (ax if ax < bx else bx) - 5.0
        max_x = (ax if ax > bx else bx) + 5.0
        min_y = (ay if ay < by else by) - 5.0
        max_y = (ay if ay > by else by) + 5.0
        rect = (
            int(min_x // cell), int(max_x // cell),
            int(min_y // cell), int(max_y // cell),
        )
        cached = self._rect_canopy.get(rect)
        if cached is None:
            grid = self._grid
            tuples_map = self._cell_canopy
            keys: List[Tuple[int, int]] = []
            combined: List[Tuple[float, float, float]] = []
            for gx in range(rect[0], rect[1] + 1):
                for gy in range(rect[2], rect[3] + 1):
                    key = (gx, gy)
                    flat = tuples_map.get(key)
                    if flat is None:
                        bucket = grid.get(key)
                        if not bucket:
                            continue
                        flat = tuples_map[key] = [
                            (t.position.x, t.position.y, t.canopy_radius)
                            for t in bucket
                        ]
                    keys.append(key)
                    combined.extend(flat)
            if len(self._rect_canopy) >= self._RECT_CACHE_MAX:
                self._rect_canopy.clear()
            cached = self._rect_canopy[rect] = (combined, keys)
        combined, keys = cached
        if _np is not None and len(combined) >= self._CANOPY_BATCH_MIN:
            return self._canopy_blockage_batch(
                keys, ax, ay, dx, dy, seg_norm_sq, length
            )
        for cx, cy, radius in combined:
            fx = ax - cx
            fy = ay - cy
            b_coef = 2.0 * (fx * dx + fy * dy)
            c = (fx * fx + fy * fy) - radius * radius
            disc = b_coef * b_coef - 4.0 * seg_norm_sq * c
            if disc < 0.0:
                continue
            sqrt_disc = sqrt(disc)
            t0 = (-b_coef - sqrt_disc) / (2.0 * seg_norm_sq)
            t1 = (-b_coef + sqrt_disc) / (2.0 * seg_norm_sq)
            lo = t0 if t0 > 0.0 else 0.0
            hi = t1 if t1 < 1.0 else 1.0
            if lo > hi:
                continue
            total += (hi - lo) * length
        return total

    #: capacity of the concatenated-candidate-columns memo
    _CONCAT_CACHE_MAX = 256

    #: capacity of each cell-rectangle candidate memo (canopy and trunk);
    #: keys only change when an endpoint crosses a 10 m cell boundary, so
    #: even fleet-scale scenarios stay far below this
    _RECT_CACHE_MAX = 4096

    def _canopy_blockage_batch(
        self,
        keys: List[Tuple[int, int]],
        ax: float,
        ay: float,
        dx: float,
        dy: float,
        seg_norm_sq: float,
        length: float,
    ) -> float:
        """Vectorised canopy sweep, bit-identical to the scalar loop.

        Candidate cells arrive in :meth:`_trees_near` scan order and their
        cached numpy columns are concatenated (memoised per cell set), so
        candidates appear in the identical sequence.  Only exact IEEE-754
        elementwise ops (``+ - * / sqrt`` and comparisons) are used, skipped
        candidates contribute an exact ``+0.0``, and the final accumulation
        folds sequentially — every float matches the scalar path bit for bit.
        """
        if perf.ACTIVE:
            perf.incr("world.canopy_batch_sweeps")
        concat_key = tuple(keys)
        arrays = self._concat_cache.get(concat_key)
        if arrays is None:
            if len(keys) == 1:
                arrays = self._cell_array(keys[0])
            else:
                parts = [self._cell_array(k) for k in keys]
                arrays = (
                    _np.concatenate([p[0] for p in parts]),
                    _np.concatenate([p[1] for p in parts]),
                    _np.concatenate([p[2] for p in parts]),
                )
            if len(self._concat_cache) >= self._CONCAT_CACHE_MAX:
                self._concat_cache.clear()
            self._concat_cache[concat_key] = arrays
        xs, ys, rs = arrays
        if perf.ACTIVE:
            perf.incr("world.canopy_batch_trees", len(xs))
        fx = ax - xs
        fy = ay - ys
        b_coef = 2.0 * (fx * dx + fy * dy)
        c = (fx * fx + fy * fy) - rs * rs
        disc = b_coef * b_coef - 4.0 * seg_norm_sq * c
        valid = disc >= 0.0
        sqrt_disc = _np.sqrt(_np.where(valid, disc, 0.0))
        t0 = (-b_coef - sqrt_disc) / (2.0 * seg_norm_sq)
        t1 = (-b_coef + sqrt_disc) / (2.0 * seg_norm_sq)
        lo = _np.where(t0 > 0.0, t0, 0.0)
        hi = _np.where(t1 < 1.0, t1, 1.0)
        valid &= lo <= hi
        terms = _np.where(valid, (hi - lo) * length, 0.0)
        total = 0.0
        for v in terms.tolist():
            total += v
        return total

    def trunk_blocks(self, observer: Vec2, target: Vec2) -> bool:
        """True if a trunk lies directly on the sight line."""
        # raw-float inline of Segment.distance_to_point over the candidates,
        # iterating cached per-cell flat tuples in _trees_near scan order
        ax, ay = observer.x, observer.y
        bx, by = target.x, target.y
        dx = bx - ax
        dy = by - ay
        denom = dx * dx + dy * dy
        hypot = math.hypot
        cell = self._CELL
        min_x = (ax if ax < bx else bx) - 1.0
        max_x = (ax if ax > bx else bx) + 1.0
        min_y = (ay if ay < by else by) - 1.0
        max_y = (ay if ay > by else by) + 1.0
        rect = (
            int(min_x // cell), int(max_x // cell),
            int(min_y // cell), int(max_y // cell),
        )
        combined = self._rect_trunk.get(rect)
        if combined is None:
            grid = self._grid
            tuples_map = self._cell_trunk
            combined = []
            for gx in range(rect[0], rect[1] + 1):
                for gy in range(rect[2], rect[3] + 1):
                    key = (gx, gy)
                    flat = tuples_map.get(key)
                    if flat is None:
                        bucket = grid.get(key)
                        if not bucket:
                            continue
                        flat = tuples_map[key] = [
                            (t.position.x, t.position.y, t.trunk_radius)
                            for t in bucket
                        ]
                    combined.extend(flat)
            if len(self._rect_trunk) >= self._RECT_CACHE_MAX:
                self._rect_trunk.clear()
            self._rect_trunk[rect] = combined
        for tx, ty, trunk in combined:
            # Do not let the endpoints' own immediate surroundings count.
            if hypot(tx - ax, ty - ay) < trunk + 0.1:
                continue
            if hypot(tx - bx, ty - by) < trunk + 0.1:
                continue
            if denom == 0.0:
                dist = hypot(ax - tx, ay - ty)
            else:
                t = ((tx - ax) * dx + (ty - ay) * dy) / denom
                if t < 0.0:
                    t = 0.0
                elif t > 1.0:
                    t = 1.0
                dist = hypot(ax + dx * t - tx, ay + dy * t - ty)
            if dist <= trunk:
                return True
        return False

    def terrain_blocks(
        self,
        observer: Vec2,
        observer_height: float,
        target: Vec2,
        target_height: float,
        *,
        observer_ground: Optional[float] = None,
        target_ground: Optional[float] = None,
    ) -> bool:
        """True if terrain blocks the 3-D sight line.

        ``observer_ground``/``target_ground`` optionally forward
        already-computed ground elevations (see
        :meth:`Terrain.blocks_line_of_sight`).
        """
        return self.terrain.blocks_line_of_sight(
            observer, observer_height, target, target_height,
            observer_ground=observer_ground, target_ground=target_ground,
        )

    def is_traversable(self, p: Vec2, clearance: float = 1.5) -> bool:
        """True if a ground vehicle can occupy ``p``.

        A position is blocked by nearby trunks or by excessive slope.
        """
        if not self.terrain.contains(p):
            return False
        if self.terrain.slope_at(p) > 0.45:
            return False
        for tree in self.trees_within(p, clearance + 1.0):
            if tree.position.distance_to(p) < tree.trunk_radius + clearance:
                return False
        return True


def generate_forest(
    streams: RngStreams,
    *,
    width: float = 300.0,
    height: float = 300.0,
    tree_density: float = 0.02,
    clearings: Optional[Sequence[Zone]] = None,
    n_ridges: int = 4,
    ridge_height: float = 6.0,
) -> World:
    """Generate a deterministic forest worksite.

    Parameters
    ----------
    tree_density:
        Trees per square metre outside clearings (0.02 ≈ managed boreal stand).
    clearings:
        Zones kept free of trees (harvest site, landing area, routes).
    """
    terrain = generate_terrain(
        width, height, streams, n_ridges=n_ridges, ridge_height=ridge_height
    )
    rng = streams.stream("forest")
    clearings = list(clearings or [])
    n_trees = int(width * height * tree_density)
    trees = []
    attempts = 0
    while len(trees) < n_trees and attempts < n_trees * 10:
        attempts += 1
        p = Vec2(rng.uniform(0.0, width), rng.uniform(0.0, height))
        if any(zone.contains(p) for zone in clearings):
            continue
        canopy = rng.uniform(1.5, 3.5)
        trunk = rng.uniform(0.15, 0.45)
        tall = rng.uniform(12.0, 26.0)
        trees.append(
            Tree(position=p, canopy_radius=canopy, trunk_radius=trunk, height=tall)
        )
    world = World(terrain, trees=trees, zones=clearings)
    return world
