"""The autonomous forwarder: the paper's central machine.

The forwarder executes load → drive → unload cycles between the harvest site
and the landing area (:mod:`repro.sim.missions`), planning routes with the
grid planner.  Safety integration is by two hooks the safety layer drives:

* :meth:`safe_stop` / :meth:`clear_safe_stop` — triggered by the people
  detection safety function or an emergency-stop command;
* :meth:`set_speed_limit` — degraded-mode operation under reduced assurance
  (e.g. when the collaborative drone view is lost).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.engine import Simulator
from repro.sim.entities import Entity
from repro.sim.events import EventCategory, EventLog
from repro.sim.geometry import Vec2
from repro.sim.missions import LogPile, MissionPhase, MissionPlan
from repro.sim.paths import GridPlanner, PathNotFound
from repro.sim.world import World
from repro.telemetry import tracer as trace


class Forwarder(Entity):
    """Autonomous log forwarder.

    Parameters
    ----------
    name, sim, log, position:
        See :class:`repro.sim.entities.Entity`.
    world:
        The worksite (for path planning).
    mission:
        The transport plan to execute; None creates an idle forwarder.
    """

    body_height = 3.2  # cab + crane base, metres

    def __init__(
        self,
        name: str,
        sim: Simulator,
        log: EventLog,
        position: Vec2,
        world: World,
        mission: Optional[MissionPlan] = None,
        *,
        max_speed: float = 3.0,
        tick_s: float = 0.5,
    ) -> None:
        super().__init__(
            name, sim, log, position, max_speed=max_speed, max_accel=0.8, tick_s=tick_s
        )
        self.world = world
        self.planner = GridPlanner(world, clearance=2.0)
        self.mission = mission
        self.phase = MissionPhase.IDLE
        self.load_m3 = 0.0
        self.speed_limit: Optional[float] = None
        self._safe_stop_reasons: List[str] = []
        self._phase_before_stop: Optional[MissionPhase] = None
        self._current_pile: Optional[LogPile] = None
        self.safe_stops = 0
        self.replan_failures = 0
        if mission is not None:
            # begin the first cycle shortly after start
            sim.schedule(1.0, self._begin_cycle)

    # -- phase bookkeeping ----------------------------------------------------
    def _set_phase(self, phase: MissionPhase) -> None:
        """Transition the mission phase (traced when telemetry is active)."""
        prev = self.phase
        if phase is prev:
            return
        self.phase = phase
        if trace.ACTIVE:
            trace.TRACER.mission_phase(self.name, phase.value, prev.value)

    # -- safety hooks -------------------------------------------------------
    @property
    def safe_stopped(self) -> bool:
        return bool(self._safe_stop_reasons)

    def safe_stop(self, reason: str) -> None:
        """Enter the safe state: halt immediately and suspend the mission."""
        if reason not in self._safe_stop_reasons:
            self._safe_stop_reasons.append(reason)
        if self.phase is not MissionPhase.SAFE_STOP:
            self._phase_before_stop = self.phase
            self._set_phase(MissionPhase.SAFE_STOP)
            self.halt()
            self.safe_stops += 1
            self.emit(EventCategory.SAFETY, "safe_stop", reason=reason)
            if trace.ACTIVE:
                trace.TRACER.safety_intervention(
                    self.name, "safe_stop", reason=reason
                )

    def clear_safe_stop(self, reason: str) -> None:
        """Withdraw one stop reason; motion resumes when none remain."""
        if reason in self._safe_stop_reasons:
            self._safe_stop_reasons.remove(reason)
        if not self._safe_stop_reasons and self.phase is MissionPhase.SAFE_STOP:
            self._set_phase(self._phase_before_stop or MissionPhase.IDLE)
            self._phase_before_stop = None
            self.emit(EventCategory.SAFETY, "safe_stop_cleared")
            if trace.ACTIVE:
                trace.TRACER.safety_intervention(self.name, "safe_stop_cleared")
            if self.phase in (MissionPhase.TO_PILE, MissionPhase.TO_LANDING):
                self.resume(self._allowed_speed())
            elif self.phase is MissionPhase.IDLE and self.mission is not None:
                self._begin_cycle()
            elif self.phase is MissionPhase.LOADING and self.mission is not None:
                # the pending finish callback was swallowed while stopped;
                # restart the (interrupted) crane work
                self.sim.schedule(self.mission.load_time_s, self._finish_loading)
            elif self.phase is MissionPhase.UNLOADING and self.mission is not None:
                self.sim.schedule(self.mission.unload_time_s, self._finish_unloading)

    def set_speed_limit(self, limit: Optional[float]) -> None:
        """Cap speed (degraded mode); ``None`` removes the cap."""
        self.speed_limit = limit
        self.emit(EventCategory.SAFETY, "speed_limit", limit=limit)
        if trace.ACTIVE:
            trace.TRACER.safety_intervention(self.name, "speed_limit", limit=limit)
        if self.phase in (MissionPhase.TO_PILE, MissionPhase.TO_LANDING):
            self.resume(self._allowed_speed())

    def _allowed_speed(self) -> float:
        if self.speed_limit is None:
            return self.max_speed
        return min(self.max_speed, self.speed_limit)

    # -- mission state machine ------------------------------------------------
    def _begin_cycle(self) -> None:
        if self.safe_stopped or self.mission is None or not self.alive:
            return
        pile = self.mission.next_pile()
        if pile is None:
            self._set_phase(MissionPhase.IDLE)
            self.emit(EventCategory.MISSION, "mission_complete",
                      delivered_m3=self.mission.delivered_m3,
                      cycles=self.mission.cycles_completed)
            return
        self._current_pile = pile
        self._drive_to(pile.position, MissionPhase.TO_PILE)

    def _drive_to(self, destination: Vec2, phase: MissionPhase) -> None:
        try:
            route = self.planner.plan(self.position, destination)
        except PathNotFound:
            self.replan_failures += 1
            self.emit(EventCategory.MISSION, "replan_failed",
                      destination=(destination.x, destination.y))
            self._set_phase(MissionPhase.IDLE)
            return
        self._set_phase(phase)
        self.set_route(route, speed=self._allowed_speed())
        self.emit(EventCategory.MISSION, "drive_started", phase=phase.value,
                  waypoints=len(route))

    def on_route_complete(self) -> None:
        if self.phase is MissionPhase.TO_PILE:
            self._start_loading()
        elif self.phase is MissionPhase.TO_LANDING:
            self._start_unloading()

    def _start_loading(self) -> None:
        assert self.mission is not None
        self._set_phase(MissionPhase.LOADING)
        self.emit(EventCategory.MISSION, "loading_started")
        self.sim.schedule(self.mission.load_time_s, self._finish_loading)

    def _finish_loading(self) -> None:
        if self.phase is not MissionPhase.LOADING or self.mission is None:
            return
        pile = self._current_pile
        if pile is not None:
            self.load_m3 = pile.take(self.mission.load_capacity_m3)
        self.emit(EventCategory.MISSION, "loading_finished", load_m3=self.load_m3)
        self._drive_to(self.mission.landing_point, MissionPhase.TO_LANDING)

    def _start_unloading(self) -> None:
        assert self.mission is not None
        self._set_phase(MissionPhase.UNLOADING)
        self.emit(EventCategory.MISSION, "unloading_started")
        self.sim.schedule(self.mission.unload_time_s, self._finish_unloading)

    def _finish_unloading(self) -> None:
        if self.phase is not MissionPhase.UNLOADING or self.mission is None:
            return
        self.mission.record_delivery(self.load_m3)
        self.emit(EventCategory.MISSION, "unloading_finished",
                  delivered_m3=self.mission.delivered_m3)
        self.load_m3 = 0.0
        self._begin_cycle()

    # -- command interface (driven by the comms protocols) ---------------------
    def handle_command(self, command: str, **params) -> bool:
        """Execute a remote command; returns True if accepted.

        This is the surface a command-injection attack ultimately targets;
        the secure channel and access control must keep unauthorised commands
        from ever reaching it.
        """
        if command == "emergency_stop":
            self.safe_stop("remote_estop")
            return True
        if command == "resume":
            self.clear_safe_stop("remote_estop")
            return True
        if command == "set_speed_limit":
            self.set_speed_limit(params.get("limit"))
            return True
        if command == "goto":
            x, y = params.get("x"), params.get("y")
            if x is None or y is None:
                return False
            self._drive_to(Vec2(float(x), float(y)), MissionPhase.TO_LANDING)
            return True
        self.emit(EventCategory.SECURITY, "unknown_command", command=command)
        return False
