"""The observation drone: the collaborative viewpoint of Figure 2.

The drone tracks the forwarder from altitude, giving its camera a viewpoint
that clears terrain ridges and most canopy.  It has a battery model with a
return-to-home behaviour; when the drone is unavailable the collaborative
people-detection safety function degrades (exactly the availability concern
the paper's SoS discussion raises).
"""

from __future__ import annotations

import enum
import math
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.entities import Entity
from repro.sim.events import EventCategory, EventLog
from repro.sim.geometry import Vec2


class DroneMode(enum.Enum):
    """Operating mode of the drone."""

    TRACKING = "tracking"
    ORBITING = "orbiting"
    RETURNING = "returning"
    CHARGING = "charging"
    GROUNDED = "grounded"


class Drone(Entity):
    """Quad-rotor observation drone.

    Parameters
    ----------
    home:
        Launch/charge position.
    target:
        Entity to track (normally the forwarder); None orbits ``home``.
    altitude:
        Operating altitude above terrain in metres.
    battery_capacity_s:
        Flight endurance at nominal draw, in seconds.
    """

    body_height = 0.3

    def __init__(
        self,
        name: str,
        sim: Simulator,
        log: EventLog,
        home: Vec2,
        *,
        target: Optional[Entity] = None,
        altitude: float = 40.0,
        orbit_radius: float = 15.0,
        battery_capacity_s: float = 1800.0,
        recharge_time_s: float = 900.0,
        max_speed: float = 8.0,
        tick_s: float = 0.5,
    ) -> None:
        super().__init__(
            name, sim, log, home, max_speed=max_speed, max_accel=3.0, tick_s=tick_s
        )
        self.home = home
        self.target = target
        self.state.altitude = altitude
        self.operating_altitude = altitude
        self.orbit_radius = orbit_radius
        self.battery_capacity_s = battery_capacity_s
        self.battery_s = battery_capacity_s
        self.recharge_time_s = recharge_time_s
        self.mode = DroneMode.TRACKING if target is not None else DroneMode.ORBITING
        self._orbit_phase = 0.0
        self.sorties = 0
        self.airborne_time = 0.0

    @property
    def airborne(self) -> bool:
        return self.mode in (DroneMode.TRACKING, DroneMode.ORBITING, DroneMode.RETURNING)

    @property
    def battery_fraction(self) -> float:
        return max(0.0, self.battery_s / self.battery_capacity_s)

    def on_tick(self) -> None:
        if self.mode in (DroneMode.CHARGING, DroneMode.GROUNDED):
            return
        self.airborne_time += self.tick_s
        self._drain_battery()
        if self.mode is DroneMode.RETURNING:
            self._fly_towards(self.home)
            if self.position.distance_to(self.home) < 2.0:
                self._land()
            return
        # low-battery reserve: enough to fly home plus 20 %
        reserve = 1.2 * self.position.distance_to(self.home) / self.max_speed
        if self.battery_s <= max(60.0, reserve):
            self.mode = DroneMode.RETURNING
            self.emit(EventCategory.MISSION, "drone_returning",
                      battery_fraction=self.battery_fraction)
            return
        anchor = self.target.position if self.target is not None else self.home
        self._orbit_phase += (self.tick_s * 1.2) / max(self.orbit_radius, 1.0)
        offset = Vec2.from_polar(self.orbit_radius, self._orbit_phase)
        self._fly_towards(anchor + offset)

    def _drain_battery(self) -> None:
        # wind increases draw; handled by scenario wiring via wind_factor
        self.battery_s -= self.tick_s * self.wind_draw_factor()

    def wind_draw_factor(self) -> float:
        """Battery-draw multiplier; scenarios may override with weather."""
        return 1.0

    def _fly_towards(self, destination: Vec2) -> None:
        self.set_route([destination], speed=self.max_speed)

    def _land(self) -> None:
        self.mode = DroneMode.CHARGING
        self.halt()
        self.state.altitude = 0.0
        self.emit(EventCategory.MISSION, "drone_landed")
        self.sim.schedule(self.recharge_time_s, self._finish_charge)

    def _finish_charge(self) -> None:
        if self.mode is not DroneMode.CHARGING:
            return
        self.battery_s = self.battery_capacity_s
        self.launch()

    def launch(self) -> None:
        """Take off and resume the tracking/orbit task."""
        if not self.alive:
            return
        self.state.altitude = self.operating_altitude
        self.mode = DroneMode.TRACKING if self.target is not None else DroneMode.ORBITING
        self.sorties += 1
        self.emit(EventCategory.MISSION, "drone_launched",
                  battery_fraction=self.battery_fraction)

    def return_home(self, reason: str = "commanded") -> None:
        """SAFE_STOP behaviour for an airborne drone: break off and land.

        Grounded/charging drones are already in a safe state; they stay put.
        """
        if not self.airborne or self.mode is DroneMode.RETURNING:
            return
        self.mode = DroneMode.RETURNING
        self.emit(EventCategory.MISSION, "drone_returning", reason=reason,
                  battery_fraction=self.battery_fraction)

    def ground(self, reason: str = "commanded") -> None:
        """Force the drone out of operation (failure injection / attack)."""
        self.mode = DroneMode.GROUNDED
        self.halt()
        self.state.altitude = 0.0
        self.emit(EventCategory.MISSION, "drone_grounded", reason=reason)
