"""Event-heap discrete-event simulation kernel.

The kernel is deliberately small and deterministic:

* events are ordered by ``(time, priority, sequence)`` so two events scheduled
  for the same instant always fire in scheduling order;
* all state lives in the :class:`Simulator`; there is no global clock;
* periodic behaviour is expressed with :class:`Process` (a recurring callback)
  rather than coroutines, which keeps stack traces flat and replay trivial.

Typical use::

    sim = Simulator()
    sim.schedule(5.0, lambda: print("fires at t=5"))
    sim.every(1.0, tick)          # tick() called at t=1, 2, 3, ...
    sim.run_until(10.0)
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.perf import counters as perf


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, re-running, ...)."""


@dataclass(eq=False, slots=True)
class Event:
    """A scheduled callback.

    The heap orders lightweight ``(time, priority, seq, event)`` tuples, so
    the Event object itself never participates in comparisons (tuple
    comparison runs at C speed; the old dataclass ``__lt__`` dominated heap
    churn on large runs).  ``cancelled`` events stay in the heap but are
    skipped when popped, which makes cancellation O(1).  Periodic timers
    reuse one Event object across occurrences (see :class:`Process`).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None]
    cancelled: bool = field(default=False)
    _sim: Optional["Simulator"] = field(default=None, repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._on_cancel(self)


class Process:
    """A recurring callback scheduled every ``interval`` simulated seconds.

    The next occurrence is scheduled *after* the callback runs, so a callback
    that stops the process (or raises) does not leave a stale event behind.
    """

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[[], None],
        *,
        start_at: Optional[float] = None,
        priority: int = 0,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"process interval must be positive, got {interval}")
        self._sim = sim
        self.interval = interval
        self.callback = callback
        self.priority = priority
        self._stopped = False
        self._event: Optional[Event] = None
        first = sim.now + interval if start_at is None else start_at
        self._event = sim.schedule_at(first, self._fire, priority=priority)

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Stop the process; the pending occurrence is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        self.callback()
        if not self._stopped:
            # timer slot reuse: the fired Event object becomes the next
            # occurrence (fresh seq drawn at the same point as a fresh
            # schedule_at, so event ordering is byte-identical) — periodic
            # timers stop allocating one Event per tick
            self._event = self._sim._reschedule(
                self._event, self._sim.now + self.interval, priority=self.priority
            )


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        self._live = 0
        # per-domain clock faults: domain -> (t0, offset_s, rate); empty in
        # nominal runs so local_time() returns the kernel clock unchanged
        self._clock_faults: Dict[str, Tuple[float, float, float]] = {}

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- clock domains (fault injection) ------------------------------------
    def set_clock_drift(
        self, domain: str, *, offset_s: float = 0.0, rate: float = 0.0
    ) -> None:
        """Give ``domain``'s local clock a step ``offset_s`` plus linear
        drift ``rate`` (seconds of skew per simulated second) from now on.

        Event *scheduling* always uses the kernel clock; drift only affects
        what :meth:`local_time` reports, i.e. the timestamps a faulted node
        stamps into its own messages.
        """
        self._clock_faults[domain] = (self._now, float(offset_s), float(rate))

    def clear_clock_drift(self, domain: str) -> None:
        """Remove ``domain``'s clock fault.  Idempotent."""
        self._clock_faults.pop(domain, None)

    def local_time(self, domain: str) -> float:
        """``domain``'s local clock: exactly :attr:`now` unless drifted."""
        if not self._clock_faults:
            return self._now
        fault = self._clock_faults.get(domain)
        if fault is None:
            return self._now
        t0, offset, rate = fault
        return self._now + offset + rate * (self._now - t0)

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the queue.

        Maintained as a live counter (O(1)): incremented on schedule,
        decremented when an event is cancelled or popped for firing.
        """
        return self._live

    def _on_cancel(self, event: Event) -> None:
        # called exactly once per cancelled in-queue event (Event.cancel
        # guards idempotence; popped events detach their back-reference)
        self._live -= 1

    def _pop_live(self, event: Event) -> None:
        """Account for a live event leaving the heap to fire."""
        event._sim = None
        self._live -= 1

    def schedule(
        self, delay: float, callback: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority=priority)

    def schedule_at(
        self, time: float, callback: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        seq = next(self._seq)
        event = Event(
            time=time, priority=priority, seq=seq,
            callback=callback, _sim=self,
        )
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def _reschedule(self, event: Event, time: float, *, priority: int = 0) -> Event:
        """Re-arm a fired :class:`Event` object for its next occurrence.

        Used by :class:`Process` so periodic timers reuse one slot instead
        of allocating a fresh Event per tick.  The sequence number is drawn
        exactly where :meth:`schedule_at` would draw it, so global event
        ordering — and therefore every trace byte — is unchanged.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        seq = next(self._seq)
        event.time = time
        event.priority = priority
        event.seq = seq
        event.cancelled = False
        event._sim = self
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        if perf.ACTIVE:
            perf.incr("engine.timer_slot_reuse")
        return event

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start_at: Optional[float] = None,
        priority: int = 0,
    ) -> Process:
        """Create a :class:`Process` calling ``callback`` every ``interval`` s."""
        return Process(self, interval, callback, start_at=start_at, priority=priority)

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            self._pop_live(event)
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run_until(self, end_time: float, *, max_events: Optional[int] = None) -> None:
        """Run events until the clock would pass ``end_time``.

        The clock is left exactly at ``end_time`` even if the queue drains
        early, so metric sampling aligned to the horizon stays consistent.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time} is before current time {self._now}"
            )
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            if max_events is None:
                # unbounded fast path: no per-event budget check
                while heap:
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        heappop(heap)
                        continue
                    if entry[0] > end_time:
                        break
                    heappop(heap)
                    event._sim = None
                    self._live -= 1
                    self._now = entry[0]
                    self._processed += 1
                    event.callback()
            else:
                while heap:
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        heappop(heap)
                        continue
                    if entry[0] > end_time:
                        break
                    heappop(heap)
                    event._sim = None
                    self._live -= 1
                    self._now = entry[0]
                    self._processed += 1
                    event.callback()
                    fired += 1
                    if fired >= max_events:
                        return
            self._now = end_time
        finally:
            self._running = False

    def run(self, *, max_events: Optional[int] = None) -> None:
        """Run until the event queue is exhausted."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                return
