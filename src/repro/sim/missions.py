"""Log-transport missions for the autonomous forwarder.

The AGRARSENSE use case is "transporting logs from a harvesting site to a
landing area within the forest".  A :class:`MissionPlan` holds the pile
inventory at the harvest site; the forwarder executes load → drive → unload
cycles until the inventory is exhausted or the run ends.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.geometry import Vec2


class MissionPhase(enum.Enum):
    """Phases of a forwarder transport cycle."""

    IDLE = "idle"
    TO_PILE = "to_pile"
    LOADING = "loading"
    TO_LANDING = "to_landing"
    UNLOADING = "unloading"
    SAFE_STOP = "safe_stop"


@dataclass
class LogPile:
    """A pile of logs at the harvest site."""

    position: Vec2
    volume_m3: float

    @property
    def exhausted(self) -> bool:
        return self.volume_m3 <= 1e-9

    def take(self, amount: float) -> float:
        """Remove up to ``amount`` m³, returning the volume actually taken."""
        taken = min(amount, self.volume_m3)
        self.volume_m3 -= taken
        return taken


@dataclass
class MissionPlan:
    """The transport task: piles to move to the landing point.

    Attributes
    ----------
    piles:
        Pile inventory at the harvest site.
    landing_point:
        Unloading position in the landing area.
    load_capacity_m3:
        Forwarder payload per cycle.
    load_time_s / unload_time_s:
        Handling time per cycle (crane work).
    """

    piles: List[LogPile]
    landing_point: Vec2
    load_capacity_m3: float = 12.0
    load_time_s: float = 300.0
    unload_time_s: float = 240.0
    delivered_m3: float = 0.0
    cycles_completed: int = 0

    def next_pile(self) -> Optional[LogPile]:
        """The nearest-to-exhaustion pile that still has volume."""
        remaining = [p for p in self.piles if not p.exhausted]
        if not remaining:
            return None
        return remaining[0]

    @property
    def total_remaining_m3(self) -> float:
        return sum(p.volume_m3 for p in self.piles)

    @property
    def complete(self) -> bool:
        return all(p.exhausted for p in self.piles)

    def record_delivery(self, volume: float) -> None:
        self.delivered_m3 += volume
        self.cycles_completed += 1
