"""Human workers on the worksite.

Humans are the protected asset of the people-detection safety function.
Their movement alternates between working at an anchor, wandering nearby and
occasional *approach episodes* towards a machine — the hazardous situation of
Figure 2.  Approach episodes can be scheduled explicitly by experiments.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.entities import Entity
from repro.sim.events import EventCategory, EventLog
from repro.sim.geometry import Vec2
from repro.sim.rng import RngStreams


class HumanBehaviour(enum.Enum):
    """Current behaviour mode of a worker."""

    WORKING = "working"
    WANDERING = "wandering"
    APPROACHING = "approaching"


class Human(Entity):
    """A worker with anchor-based movement and approach episodes.

    Parameters
    ----------
    anchor:
        The work position the human returns to.
    wander_radius:
        Radius of random wandering around the anchor.
    approach_target:
        Entity the human may walk towards during an approach episode.
    approach_rate_per_h:
        Mean spontaneous approach episodes per simulated hour (Poisson).
    """

    body_height = 1.8

    def __init__(
        self,
        name: str,
        sim: Simulator,
        log: EventLog,
        streams: RngStreams,
        anchor: Vec2,
        *,
        wander_radius: float = 15.0,
        approach_target: Optional[Entity] = None,
        approach_rate_per_h: float = 0.0,
        tick_s: float = 0.5,
    ) -> None:
        super().__init__(
            name, sim, log, anchor, max_speed=1.4, max_accel=1.0, tick_s=tick_s
        )
        self._rng = streams.stream(f"human.{name}")
        self.anchor = anchor
        self.wander_radius = wander_radius
        self.approach_target = approach_target
        self.behaviour = HumanBehaviour.WORKING
        self.approaches_started = 0
        if approach_rate_per_h > 0.0 and approach_target is not None:
            self._approach_rate = approach_rate_per_h / 3600.0
            self._schedule_spontaneous_approach()
        else:
            self._approach_rate = 0.0
        sim.every(5.0, self._behave)

    def _schedule_spontaneous_approach(self) -> None:
        delay = self._rng.expovariate(self._approach_rate)
        self.sim.schedule(delay, self._spontaneous_approach)

    def _spontaneous_approach(self) -> None:
        if self.alive and self.behaviour is not HumanBehaviour.APPROACHING:
            self.start_approach()
        if self._approach_rate > 0.0:
            self._schedule_spontaneous_approach()

    def start_approach(self, target: Optional[Entity] = None) -> None:
        """Begin walking towards ``target`` (default: the configured one)."""
        target = target or self.approach_target
        if target is None:
            return
        self.behaviour = HumanBehaviour.APPROACHING
        self.approaches_started += 1
        self.set_route([self._short_of(target)], speed=self.max_speed)
        self.emit(EventCategory.MOVEMENT, "approach_started", target=target.name)

    def _short_of(self, target: Entity, standoff: float = 2.0) -> Vec2:
        """A waypoint ``standoff`` metres short of the target."""
        offset = self.position - target.position
        distance = offset.norm()
        if distance <= standoff:
            return self.position
        return target.position + offset * (standoff / distance)

    def _behave(self) -> None:
        if not self.alive:
            return
        if self.behaviour is HumanBehaviour.APPROACHING:
            target = self.approach_target
            if target is not None:
                # re-aim at the (moving) machine; break off when close
                if self.distance_to(target) < 4.0:
                    self.behaviour = HumanBehaviour.WANDERING
                    self.emit(EventCategory.MOVEMENT, "approach_ended")
                    self.set_route([self.anchor])
                else:
                    self.set_route([self._short_of(target)], speed=self.max_speed)
            return
        if self.is_idle():
            if self._rng.random() < 0.3:
                offset = Vec2.from_polar(
                    self._rng.uniform(0.0, self.wander_radius),
                    self._rng.uniform(-3.14159, 3.14159),
                )
                self.behaviour = HumanBehaviour.WANDERING
                self.set_route([self.anchor + offset], speed=1.0)
            else:
                self.behaviour = HumanBehaviour.WORKING
