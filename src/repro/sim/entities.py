"""Entity base classes: identity, kinematics, waypoint following.

All worksite actors (forwarder, drone, harvester, humans) derive from
:class:`Entity`.  Kinematics are first-order: an entity moves towards its
current waypoint at a commanded speed, clamped by an acceleration limit, and
updates on a fixed tick driven by the simulation kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.engine import Process, Simulator
from repro.sim.events import EventCategory, EventLog
from repro.sim.geometry import Vec2


@dataclass
class KinematicState:
    """Mutable kinematic state of an entity."""

    position: Vec2
    heading: float = 0.0
    speed: float = 0.0
    altitude: float = 0.0  # metres above local terrain (drones)


class Entity:
    """A located, optionally moving actor in the worksite.

    Parameters
    ----------
    name:
        Unique identifier, used as the event/metric source key.
    sim:
        The driving simulator.
    log:
        Shared event log.
    position:
        Initial position.
    max_speed, max_accel:
        Kinematic limits in m/s and m/s^2.
    tick_s:
        Kinematic update interval.
    """

    #: nominal body height used for line-of-sight computations, metres
    body_height: float = 1.5

    def __init__(
        self,
        name: str,
        sim: Simulator,
        log: EventLog,
        position: Vec2,
        *,
        max_speed: float = 1.5,
        max_accel: float = 1.0,
        tick_s: float = 0.5,
    ) -> None:
        self.name = name
        self.sim = sim
        self.log = log
        self.state = KinematicState(position=position)
        self.max_speed = max_speed
        self.max_accel = max_accel
        self.tick_s = tick_s
        self.alive = True
        self._waypoints: List[Vec2] = []
        self._target_speed = 0.0
        self._process: Optional[Process] = sim.every(tick_s, self._tick)
        self.distance_travelled = 0.0

    # -- public API ---------------------------------------------------------
    @property
    def position(self) -> Vec2:
        return self.state.position

    @property
    def waypoints(self) -> List[Vec2]:
        return list(self._waypoints)

    def set_route(self, waypoints: List[Vec2], speed: Optional[float] = None) -> None:
        """Replace the current route; the entity heads to the first waypoint."""
        self._waypoints = list(waypoints)
        self._target_speed = self.max_speed if speed is None else min(speed, self.max_speed)

    def stop(self) -> None:
        """Command an immediate speed target of zero (route retained)."""
        self._target_speed = 0.0

    def resume(self, speed: Optional[float] = None) -> None:
        """Resume motion along the retained route."""
        self._target_speed = self.max_speed if speed is None else min(speed, self.max_speed)

    def halt(self) -> None:
        """Hard stop: zero speed instantly (emergency stop semantics)."""
        self.state.speed = 0.0
        self._target_speed = 0.0

    def is_idle(self) -> bool:
        return not self._waypoints and self.state.speed == 0.0

    def deactivate(self) -> None:
        """Remove the entity from simulation (battery out, end of shift)."""
        self.alive = False
        if self._process is not None:
            self._process.stop()
            self._process = None

    # -- kinematics -----------------------------------------------------------
    def _tick(self) -> None:
        if not self.alive:
            return
        self.on_tick()
        self._advance(self.tick_s)

    def on_tick(self) -> None:
        """Hook for subclasses: behaviour executed each tick before movement."""

    def _advance(self, dt: float) -> None:
        if not self._waypoints:
            self._decelerate(dt)
            return
        target = self._waypoints[0]
        to_target = target - self.state.position
        dist = to_target.norm()
        arrive_radius = max(0.5, self.state.speed * dt)
        if dist <= arrive_radius:
            self.state.position = target
            self._waypoints.pop(0)
            if not self._waypoints:
                self.state.speed = 0.0
                self.on_route_complete()
            return
        # speed control with acceleration limit
        desired = self._target_speed
        dv = desired - self.state.speed
        max_dv = self.max_accel * dt
        self.state.speed += max(-max_dv, min(max_dv, dv))
        if self.state.speed <= 0.0:
            self.state.speed = 0.0
            return
        direction = to_target.normalized()
        self.state.heading = direction.heading()
        step = min(self.state.speed * dt, dist)
        self.state.position = self.state.position + direction * step
        self.distance_travelled += step

    def _decelerate(self, dt: float) -> None:
        if self.state.speed > 0.0:
            self.state.speed = max(0.0, self.state.speed - self.max_accel * dt)

    def on_route_complete(self) -> None:
        """Hook for subclasses: called when the last waypoint is reached."""

    # -- convenience -----------------------------------------------------------
    def distance_to(self, other: "Entity") -> float:
        return self.position.distance_to(other.position)

    def emit(self, category: EventCategory, kind: str, **data) -> None:
        self.log.emit(self.sim.now, category, kind, self.name, **data)

    def __repr__(self) -> str:
        p = self.state.position
        return f"<{type(self).__name__} {self.name} @({p.x:.1f},{p.y:.1f})>"
