"""Minimal 2-D geometry for the worksite: vectors, segments, ray casting.

The worksite is modelled in the horizontal plane; altitude only matters for
the drone's occlusion advantage and is handled by the occlusion model in
:mod:`repro.sensors.occlusion`, not here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple


@dataclass(frozen=True, slots=True)
class Vec2:
    """Immutable 2-D vector / point in metres."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def dot(self, other: "Vec2") -> float:
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z-component of the 3-D cross product (signed area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Vec2":
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Vec2(self.x / n, self.y / n)

    def heading(self) -> float:
        """Angle of the vector in radians, in (-pi, pi]."""
        return math.atan2(self.y, self.x)

    def rotated(self, angle: float) -> "Vec2":
        c, s = math.cos(angle), math.sin(angle)
        return Vec2(self.x * c - self.y * s, self.x * s + self.y * c)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        return Vec2(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)

    @staticmethod
    def from_polar(radius: float, angle: float) -> "Vec2":
        return Vec2(radius * math.cos(angle), radius * math.sin(angle))


@dataclass(frozen=True, slots=True)
class Segment:
    """A line segment between two points."""

    a: Vec2
    b: Vec2

    def length(self) -> float:
        return self.a.distance_to(self.b)

    def point_at(self, t: float) -> Vec2:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        return self.a.lerp(self.b, t)

    def distance_to_point(self, p: Vec2) -> float:
        """Shortest distance from ``p`` to the segment."""
        ab = self.b - self.a
        denom = ab.norm_sq()
        if denom == 0.0:
            return self.a.distance_to(p)
        t = max(0.0, min(1.0, (p - self.a).dot(ab) / denom))
        return self.point_at(t).distance_to(p)

    def intersects_circle(self, center: Vec2, radius: float) -> bool:
        """True if the segment passes within ``radius`` of ``center``."""
        return self.distance_to_point(center) <= radius

    def circle_intersection_params(
        self, center: Vec2, radius: float
    ) -> Optional[Tuple[float, float]]:
        """Parameters ``(t0, t1)`` where the segment enters/leaves the circle.

        Returns None when the infinite line misses the circle or the overlap
        falls entirely outside [0, 1].
        """
        d = self.b - self.a
        f = self.a - center
        a = d.norm_sq()
        if a == 0.0:
            return (0.0, 1.0) if f.norm() <= radius else None
        b = 2.0 * f.dot(d)
        c = f.norm_sq() - radius * radius
        disc = b * b - 4.0 * a * c
        if disc < 0.0:
            return None
        sqrt_disc = math.sqrt(disc)
        t0 = (-b - sqrt_disc) / (2.0 * a)
        t1 = (-b + sqrt_disc) / (2.0 * a)
        lo, hi = max(t0, 0.0), min(t1, 1.0)
        if lo > hi:
            return None
        return (lo, hi)


def angle_difference(a: float, b: float) -> float:
    """Smallest signed difference ``a - b`` wrapped into (-pi, pi]."""
    diff = (a - b) % (2.0 * math.pi)
    if diff > math.pi:
        diff -= 2.0 * math.pi
    return diff


def bounding_box(points: Iterable[Vec2]) -> Tuple[Vec2, Vec2]:
    """Axis-aligned bounding box ``(min_corner, max_corner)`` of ``points``."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box of an empty point set")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Vec2(min(xs), min(ys)), Vec2(max(xs), max(ys))
