"""Weather dynamics for the worksite.

Section III-D of the paper stresses that environmental conditions (rain, fog,
snow, lighting) degrade sensing and must be covered by simulation.  Weather is
modelled as a continuous-time Markov chain over discrete states, each state
carrying continuous intensity attributes that the sensor degradation models
consume (:mod:`repro.sensors.degradation`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


class WeatherState(enum.Enum):
    """Discrete weather regimes."""

    CLEAR = "clear"
    OVERCAST = "overcast"
    RAIN = "rain"
    HEAVY_RAIN = "heavy_rain"
    FOG = "fog"
    SNOW = "snow"


@dataclass(frozen=True)
class WeatherConditions:
    """Continuous attributes of the current weather.

    Attributes
    ----------
    precipitation:
        Rain/snow intensity in [0, 1].
    visibility:
        Optical visibility fraction in (0, 1]; 1 is perfectly clear.
    light_level:
        Ambient light in [0, 1]; affected by overcast skies and time of day.
    wind_speed:
        Metres per second; affects drone stability and endurance.
    """

    precipitation: float
    visibility: float
    light_level: float
    wind_speed: float


_BASE_CONDITIONS: Dict[WeatherState, WeatherConditions] = {
    WeatherState.CLEAR: WeatherConditions(0.0, 1.0, 1.0, 2.0),
    WeatherState.OVERCAST: WeatherConditions(0.0, 0.9, 0.7, 4.0),
    WeatherState.RAIN: WeatherConditions(0.4, 0.7, 0.55, 6.0),
    WeatherState.HEAVY_RAIN: WeatherConditions(0.9, 0.4, 0.4, 10.0),
    WeatherState.FOG: WeatherConditions(0.05, 0.25, 0.6, 1.0),
    WeatherState.SNOW: WeatherConditions(0.6, 0.5, 0.75, 5.0),
}

# Transition weights of the embedded jump chain.  Rows need not be normalised.
_TRANSITIONS: Dict[WeatherState, Dict[WeatherState, float]] = {
    WeatherState.CLEAR: {WeatherState.OVERCAST: 0.7, WeatherState.FOG: 0.3},
    WeatherState.OVERCAST: {
        WeatherState.CLEAR: 0.4,
        WeatherState.RAIN: 0.4,
        WeatherState.SNOW: 0.1,
        WeatherState.FOG: 0.1,
    },
    WeatherState.RAIN: {
        WeatherState.OVERCAST: 0.5,
        WeatherState.HEAVY_RAIN: 0.3,
        WeatherState.CLEAR: 0.2,
    },
    WeatherState.HEAVY_RAIN: {WeatherState.RAIN: 0.8, WeatherState.OVERCAST: 0.2},
    WeatherState.FOG: {WeatherState.CLEAR: 0.5, WeatherState.OVERCAST: 0.5},
    WeatherState.SNOW: {WeatherState.OVERCAST: 0.7, WeatherState.CLEAR: 0.3},
}


class Weather:
    """A weather process driven by the simulation clock.

    Parameters
    ----------
    sim:
        The simulator whose clock drives transitions.
    streams:
        RNG stream factory (uses the ``"weather"`` stream).
    mean_dwell_s:
        Mean sojourn time in a state (exponentially distributed).
    initial:
        Starting regime.
    frozen:
        If True, the weather never transitions (useful for controlled
        experiments isolating a single condition).
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RngStreams,
        *,
        mean_dwell_s: float = 1800.0,
        initial: WeatherState = WeatherState.CLEAR,
        frozen: bool = False,
    ) -> None:
        self._sim = sim
        self._rng = streams.stream("weather")
        self.mean_dwell_s = mean_dwell_s
        self.state = initial
        self.frozen = frozen
        self._listeners: List[Callable[[WeatherState], None]] = []
        self.history: List[tuple] = [(sim.now, initial)]
        if not frozen:
            self._schedule_next()

    def subscribe(self, listener: Callable[[WeatherState], None]) -> None:
        """Register a callback invoked on every state change."""
        self._listeners.append(listener)

    def conditions(self) -> WeatherConditions:
        """Current continuous conditions."""
        return _BASE_CONDITIONS[self.state]

    def force_state(self, state: WeatherState) -> None:
        """Force a regime change immediately (experiment control)."""
        self._set_state(state)

    def _schedule_next(self) -> None:
        dwell = self._rng.expovariate(1.0 / self.mean_dwell_s)
        self._sim.schedule(dwell, self._transition)

    def _transition(self) -> None:
        if self.frozen:
            return
        weights = _TRANSITIONS[self.state]
        states = list(weights)
        total = sum(weights.values())
        draw = self._rng.uniform(0.0, total)
        acc = 0.0
        chosen: Optional[WeatherState] = states[-1]
        for state in states:
            acc += weights[state]
            if draw <= acc:
                chosen = state
                break
        self._set_state(chosen)
        self._schedule_next()

    def _set_state(self, state: WeatherState) -> None:
        if state is self.state:
            return
        self.state = state
        self.history.append((self._sim.now, state))
        for listener in self._listeners:
            listener(state)
