"""Named deterministic random-number streams.

Every stochastic component in the simulation draws from its own named child
stream of a single master seed.  Two runs with the same master seed therefore
produce bit-identical event logs, and adding a new consumer of randomness does
not perturb the draws seen by existing consumers — a property plain shared
``random.Random`` instances do not have.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream ``name``.

    Uses SHA-256 over the canonical encoding so the mapping is stable across
    Python versions and platforms (unlike ``hash()``).
    """
    payload = f"{master_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of named, independent ``random.Random`` streams.

    Examples
    --------
    >>> streams = RngStreams(42)
    >>> weather_rng = streams.stream("weather")
    >>> sensor_rng = streams.stream("sensor.camera.fwd-1")
    >>> streams.stream("weather") is weather_rng
    True
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        rng = random.Random(derive_seed(self.master_seed, name))
        self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngStreams":
        """Create a child factory whose streams are independent of this one."""
        return RngStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    @property
    def names(self) -> list:
        """Names of all streams created so far, in creation order."""
        return list(self._streams)
