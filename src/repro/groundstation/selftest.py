"""Mutation-style self-test of the audit-chain verifier.

Same philosophy as :mod:`repro.invariants.selftest`: a checker you have
never seen catch anything is untested safety equipment.  This module
builds a known-good audit chain, applies each tamper mutation from the
catalogue — the edits a real adversary (or a flaky disk) would make — and
asserts the verifier not only rejects the log but localises the damage to
the exact entry and check.

Run it via ``repro-worksite audit verify --selftest``; the adversarial
test tier pins every mutation individually.
"""

from __future__ import annotations

import json
from typing import Callable, List, Tuple

from repro.groundstation.audit import (
    AuditLog,
    entry_hash,
    entry_sig,
    genesis_hash,
    station_key,
    verify_chain,
)

#: seed the sample chain (and its genesis and keys) derives from
SAMPLE_SEED = 1307

#: a different seed, for wrong-key and splice material
OTHER_SEED = 2046

#: index the mutations target (mid-chain, so localisation is non-trivial)
TARGET = 5


def build_sample_log(seed: int = SAMPLE_SEED, n: int = 12) -> AuditLog:
    """A deterministic, closed, known-good chain of ``n`` + close entries."""
    log = AuditLog(seed)
    for i in range(n):
        sender = "control" if i % 3 == 0 else "forwarder"
        topic = "gs/cmd/forwarder" if sender == "control" else "gs/alert/forwarder"
        kind = "command" if sender == "control" else "status"
        log.append(
            t=float(i), topic=topic, sender=sender, counter=i // 3 if
            sender == "control" else i, kind=kind, verdict="ok",
            wire=f"wire-{i}".encode(),
        )
    log.close(float(n))
    return log


def _entries(log: AuditLog) -> List[dict]:
    return [json.loads(json.dumps(e)) for e in log.entries]


def _rechain(entries: List[dict], seed: int, start: int, *, key: bytes) -> None:
    """Recompute hashes/prev/sigs from ``start`` on (the insider's move)."""
    prev = genesis_hash(seed) if start == 0 else entries[start - 1]["hash"]
    for entry in entries[start:]:
        entry["prev"] = prev
        entry.pop("hash", None)
        entry.pop("sig", None)
        entry["hash"] = entry_hash(entry)
        entry["sig"] = entry_sig(entry["hash"], key)
        prev = entry["hash"]


# -- the tamper catalogue ----------------------------------------------------
def _bit_flip_payload(entries: List[dict]) -> None:
    """Flip the message digest of one entry, no recompute (naive edit)."""
    digest = entries[TARGET]["digest"]
    entries[TARGET]["digest"] = ("0" if digest[0] != "0" else "1") + digest[1:]


def _drop_link(entries: List[dict]) -> None:
    """Remove one mid-chain entry entirely."""
    del entries[TARGET]


def _reorder(entries: List[dict]) -> None:
    """Swap two adjacent entries."""
    entries[TARGET], entries[TARGET + 1] = entries[TARGET + 1], entries[TARGET]


def _truncate_tail(entries: List[dict]) -> None:
    """Drop the tail including the close entry."""
    del entries[-3:]


def _resign_wrong_key(entries: List[dict]) -> None:
    """Edit, then recompute the whole chain — but sign with the wrong key."""
    entries[TARGET]["verdict"] = "ok" if entries[TARGET]["verdict"] != "ok" else "replay"
    _rechain(entries, SAMPLE_SEED, TARGET, key=station_key(OTHER_SEED))


def _splice(entries: List[dict]) -> None:
    """Graft the tail of a different run's chain onto this one's prefix."""
    other = _entries(build_sample_log(OTHER_SEED))
    entries[TARGET:] = other[TARGET:]


def _counter_rollback(entries: List[dict]) -> None:
    """Insider edit: roll a counter back and re-sign with the real key."""
    victim = entries[TARGET]
    victim["counter"] = 0
    victim["verdict"] = "ok"
    _rechain(entries, SAMPLE_SEED, TARGET, key=station_key(SAMPLE_SEED))


def _duplicate_entry(entries: List[dict]) -> None:
    """Insert a verbatim copy of one entry right after itself."""
    entries.insert(TARGET + 1, dict(entries[TARGET]))


def _time_rollback(entries: List[dict]) -> None:
    """Insider edit: rewrite one timestamp into the past, re-sign properly."""
    entries[TARGET]["t"] = entries[TARGET - 1]["t"] - 1.0
    _rechain(entries, SAMPLE_SEED, TARGET, key=station_key(SAMPLE_SEED))


#: (name, mutator, expected check, expected violation index)
MUTATIONS: List[Tuple[str, Callable[[List[dict]], None], str, int]] = [
    ("bit_flip_payload", _bit_flip_payload, "hash", TARGET),
    ("drop_link", _drop_link, "sequence", TARGET),
    ("reorder", _reorder, "sequence", TARGET),
    ("truncate_tail", _truncate_tail, "close", 9),
    ("resign_wrong_key", _resign_wrong_key, "sig", TARGET),
    ("splice", _splice, "chain", TARGET),
    ("counter_rollback", _counter_rollback, "counter", TARGET),
    ("duplicate_entry", _duplicate_entry, "sequence", TARGET + 1),
    ("time_rollback", _time_rollback, "time", TARGET),
]


def run_audit_selftest() -> dict:
    """Apply every mutation; each must be caught *and* localised.

    Returns ``{"ok", "mutations", "detected", "results": [...]}`` with one
    result row per mutation (mirrors the invariant selftest shape).
    """
    baseline = verify_chain(_entries(build_sample_log()), SAMPLE_SEED)
    results: List[dict] = []
    if not (baseline["ok"] and baseline["complete"]):
        results.append({
            "mutation": "<baseline>", "ok": False,
            "message": "known-good chain failed verification",
        })
    for name, mutate, expected_check, expected_index in MUTATIONS:
        entries = _entries(build_sample_log())
        mutate(entries)
        report = verify_chain(entries, SAMPLE_SEED)
        first = report["violations"][0] if report["violations"] else None
        detected = not report["ok"]
        localised = (
            first is not None
            and first["check"] == expected_check
            and first["index"] == expected_index
        )
        results.append({
            "mutation": name,
            "ok": detected and localised,
            "detected": detected,
            "expected": {"check": expected_check, "index": expected_index},
            "first_violation": first,
        })
    detected = sum(1 for r in results if r.get("ok"))
    return {
        "ok": all(r.get("ok") for r in results) and bool(results),
        "mutations": len(MUTATIONS),
        "detected": detected,
        "results": results,
    }
