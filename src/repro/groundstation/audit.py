"""Hash-chained append-only audit log and its offline verifier.

Every message the control station observes (accepted or rejected) becomes
one audit entry.  Entries are tamper-evident in layers:

1. **chain** — each entry carries ``prev``, the hash of its predecessor
   (genesis derived from the run seed), so any edit breaks every hash from
   that point on;
2. **hash** — each entry's ``hash`` is the SHA-256 of its canonical JSON
   encoding (minus ``hash``/``sig``), so a naive field edit is caught even
   before the chain break;
3. **sig** — each entry's ``sig`` is an HMAC of the hash under the station
   key, so an adversary who *recomputes* the chain after an edit still
   cannot re-sign it without the key;
4. **counter/time** — per-sender counters of accepted messages must be
   strictly increasing and timestamps non-decreasing, so even a key-holding
   insider who re-signs a rewritten log is caught rolling history back;
5. **close** — the final entry has ``kind == "close"``, so truncating the
   tail leaves the log visibly incomplete.

The log is written line-wise with a flush per entry (same torn-tail
discipline as :class:`~repro.telemetry.writer.TraceWriter`): a crashed run
leaves at most one incomplete final line, which the file verifier drops and
reports as a torn tail rather than a tamper.

The whole structure is a pure function of the run seed and the message
stream, so same-seed runs produce byte-identical chains.
"""

from __future__ import annotations

import hashlib
import json
from typing import IO, List, Optional, Sequence

from repro.comms.crypto.primitives import hmac_sha256

#: domain separator for entry signatures (distinct from the message codec)
AUDIT_SIG_DOMAIN = b"repro-gs-audit:v1:"

#: audit file format version (header field ``audit``)
AUDIT_VERSION = 1

#: the principal whose key signs audit entries
AUDIT_PRINCIPAL = "audit"

#: per-entry checks in the order the verifier applies them
CHECKS = ("sequence", "chain", "hash", "sig", "counter", "time", "close")


def genesis_hash(seed: int) -> str:
    """The chain anchor: a pure function of the run seed."""
    return hashlib.sha256(
        b"repro-gs-genesis:" + str(int(seed)).encode("utf-8")
    ).hexdigest()


def station_key(seed: int) -> bytes:
    """The audit-signing key (derivable offline from the seed)."""
    from repro.groundstation.keys import GsKeyring

    return GsKeyring(seed).key_for(AUDIT_PRINCIPAL)


def _canonical(entry: dict) -> bytes:
    return json.dumps(
        entry, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def entry_hash(entry: dict) -> str:
    """SHA-256 over the canonical entry minus ``hash``/``sig``."""
    body = {k: v for k, v in entry.items() if k not in ("hash", "sig")}
    return hashlib.sha256(_canonical(body)).hexdigest()


def entry_sig(entry_hash_hex: str, key: bytes) -> str:
    """HMAC over the entry hash under the station key."""
    return hmac_sha256(
        key, AUDIT_SIG_DOMAIN + entry_hash_hex.encode("utf-8")
    ).hex()


class AuditLog:
    """The append-only chain built while a run executes.

    Parameters
    ----------
    seed:
        Run seed; anchors the genesis hash and derives the station key.
    key:
        Station signing key (pass :func:`station_key` of the same seed; the
        parameter exists so tests can exercise wrong-key signing).
    path:
        Optional JSONL file; the header line is written immediately and
        each entry is flushed as it is appended so a killed run leaves at
        most one torn final line.
    """

    def __init__(
        self, seed: int, key: Optional[bytes] = None, path: Optional[str] = None
    ) -> None:
        self.seed = int(seed)
        self.key = key if key is not None else station_key(self.seed)
        self.genesis = genesis_hash(self.seed)
        self.entries: List[dict] = []
        self.head: str = self.genesis
        self.closed = False
        self._fh: Optional[IO[str]] = None
        if path is not None:
            self._fh = open(path, "w", encoding="utf-8")
            self._write_line(self.header())

    def header(self) -> dict:
        return {
            "audit": AUDIT_VERSION,
            "genesis": self.genesis,
            "seed": self.seed,
        }

    def _write_line(self, obj: dict) -> None:
        if self._fh is not None:
            self._fh.write(_canonical(obj).decode("utf-8") + "\n")
            self._fh.flush()

    def append(
        self,
        t: float,
        topic: str,
        sender: str,
        counter: int,
        kind: str,
        verdict: str,
        wire: bytes = b"",
    ) -> dict:
        """Chain, hash, sign and persist one entry; returns it."""
        if self.closed:
            raise RuntimeError("audit log is closed")
        entry = {
            "seq": len(self.entries),
            "t": round(float(t), 6),
            "topic": str(topic),
            "sender": str(sender),
            "counter": int(counter),
            "kind": str(kind),
            "verdict": str(verdict),
            "digest": hashlib.sha256(bytes(wire)).hexdigest(),
            "prev": self.head,
        }
        entry["hash"] = entry_hash(entry)
        entry["sig"] = entry_sig(entry["hash"], self.key)
        self.entries.append(entry)
        self.head = entry["hash"]
        self._write_line(entry)
        from repro.telemetry import tracer as trace

        if trace.ACTIVE:
            trace.TRACER.gs_audit(
                seq=entry["seq"], topic=entry["topic"], sender=entry["sender"],
                verdict=entry["verdict"], hash=entry["hash"], prev=entry["prev"],
            )
        return entry

    def close(self, t: float) -> Optional[dict]:
        """Append the terminal ``close`` entry and release the file.

        Idempotent: a second close is a no-op (crash-recovery paths may
        race a normal shutdown).
        """
        if self.closed:
            return None
        entry = self.append(
            t, "gs/audit", AUDIT_PRINCIPAL, len(self.entries), "close", "close"
        )
        self.closed = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return entry

    def summary(self) -> dict:
        return {
            "entries": len(self.entries),
            "head": self.head,
            "closed": self.closed,
            "genesis": self.genesis,
        }


def verify_chain(
    entries: Sequence[dict],
    seed: int,
    *,
    require_close: bool = True,
    key: Optional[bytes] = None,
) -> dict:
    """Offline verification of a chain; everything derives from the seed.

    Returns a structured report::

        {"ok": bool, "complete": bool, "entries": int, "seed": int,
         "head": hex, "violations": [{"index", "seq", "check", "message"}]}

    ``ok`` means no violations; ``complete`` additionally requires the
    terminal close entry (``require_close=False`` relaxes *ok* for
    crash-recovered logs while still reporting incompleteness).
    Per-entry checks run in :data:`CHECKS` order and every violation is
    localised to the index of the offending entry.
    """
    seed = int(seed)
    sig_key = key if key is not None else station_key(seed)
    violations: List[dict] = []

    def flag(index: int, check: str, message: str) -> None:
        seq = None
        if 0 <= index < len(entries) and isinstance(entries[index], dict):
            seq = entries[index].get("seq")
        violations.append(
            {"index": index, "seq": seq, "check": check, "message": message}
        )

    prev = genesis_hash(seed)
    counters: dict = {}
    last_t: Optional[float] = None
    close_at: Optional[int] = None
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            flag(index, "hash", "entry is not an object")
            break
        missing = {
            "seq", "t", "topic", "sender", "counter", "kind",
            "verdict", "digest", "prev", "hash", "sig",
        } - set(entry)
        if missing:
            flag(index, "hash", f"entry missing fields {sorted(missing)}")
            break
        if entry["seq"] != index:
            flag(index, "sequence", f"seq {entry['seq']} at position {index}")
        if entry["prev"] != prev:
            flag(index, "chain", f"prev does not match hash of entry {index - 1}"
                 if index else "prev does not match the genesis hash")
        expected_hash = entry_hash(entry)
        if entry["hash"] != expected_hash:
            flag(index, "hash", "entry hash does not match its contents")
        elif entry["sig"] != entry_sig(entry["hash"], sig_key):
            # only meaningful when the hash itself is intact: a field edit
            # already invalidates the hash, so sig flags *re-signed* chains
            flag(index, "sig", "entry signature fails under the station key")
        if close_at is not None:
            flag(index, "close", f"entry after close entry {close_at}")
        if entry["kind"] == "close":
            close_at = index
        elif entry["verdict"] in ("ok", "executed"):
            last = counters.get(entry["sender"])
            if last is not None and entry["counter"] <= last:
                flag(
                    index, "counter",
                    f"counter {entry['counter']} not above {last} "
                    f"for sender {entry['sender']!r}",
                )
            else:
                counters[entry["sender"]] = entry["counter"]
        if last_t is not None and entry["t"] < last_t:
            flag(index, "time", f"t {entry['t']} before predecessor {last_t}")
        last_t = entry["t"] if isinstance(entry["t"], (int, float)) else last_t
        # chain forward from the *recorded* hash so one corrupt entry
        # yields one localised violation, not a cascade to the tail
        prev = entry["hash"] if isinstance(entry["hash"], str) else prev

    complete = close_at is not None and not violations
    if close_at is None and require_close:
        flag(max(len(entries) - 1, 0), "close",
             "chain has no terminal close entry (truncated?)")
    ok = not violations
    return {
        "ok": ok,
        "complete": complete,
        "entries": len(entries),
        "seed": seed,
        "genesis": genesis_hash(seed),
        "head": entries[-1]["hash"] if entries and isinstance(
            entries[-1], dict) and isinstance(
            entries[-1].get("hash"), str) else genesis_hash(seed),
        "violations": violations,
    }


def load_audit_file(path: str) -> dict:
    """Parse an audit JSONL file into ``{"header", "entries", "torn_tail"}``.

    A torn final line (killed writer) is dropped and flagged, never treated
    as a tamper: flush-per-entry guarantees at most one incomplete line.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    parsed: List[dict] = []
    torn_tail = False
    for i, line in enumerate(lines):
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                torn_tail = True
                break
            raise ValueError(f"{path}:{i + 1}: unparseable audit line")
    if not parsed:
        raise ValueError(f"{path}: no audit header")
    header, entries = parsed[0], parsed[1:]
    if not isinstance(header, dict) or header.get("audit") != AUDIT_VERSION:
        raise ValueError(f"{path}: not an audit v{AUDIT_VERSION} file")
    return {"header": header, "entries": entries, "torn_tail": torn_tail}


def verify_audit_file(path: str, *, require_close: bool = True) -> dict:
    """Verify a persisted audit log; the header supplies the seed.

    The header's recorded genesis is cross-checked against the seed-derived
    one, so editing the header seed breaks at entry 0 (the chain no longer
    anchors) *and* is reported as a header violation.
    """
    loaded = load_audit_file(path)
    header = loaded["header"]
    seed = int(header.get("seed", 0))
    report = verify_chain(
        loaded["entries"], seed, require_close=require_close
    )
    if header.get("genesis") != genesis_hash(seed):
        report["violations"].insert(0, {
            "index": -1, "seq": None, "check": "chain",
            "message": "header genesis does not match the seed",
        })
        report["ok"] = False
        report["complete"] = False
    report["path"] = path
    report["torn_tail"] = loaded["torn_tail"]
    if loaded["torn_tail"]:
        report["complete"] = False
    return report


def evidence_from_report(report: dict):
    """Package a verification report for the assurance evidence registry."""
    from repro.assurance.evidence import Evidence

    return Evidence(
        key="gs.audit_chain",
        kind="analysis",
        description=(
            "Ground-station audit chain verified: hash chain, signatures, "
            "counters and close entry checked offline from the run seed."
        ),
        source="repro.groundstation.audit.verify_chain",
        produced_at=0.0,
        valid_for_s=None,
        data={
            "ok": report["ok"],
            "complete": report["complete"],
            "entries": report["entries"],
            "seed": report["seed"],
            "head": report["head"],
            "violations": len(report["violations"]),
        },
    )
