"""The signed ground-station message codec.

One wire format for everything on the plane: a canonical JSON body (sorted
keys, no whitespace, ``allow_nan=False`` — the same encoding discipline as
:mod:`repro.telemetry.writer`) followed by a 32-byte HMAC-SHA256 tag over a
domain-separated digest of the body.  The canonical encoding makes the
codec bijective on its message space: ``encode(decode(wire)) == wire`` for
every accepted wire, and any single-byte corruption — in the body or the
tag — is rejected (the property tier pins both).

Verification is deliberately receiver-side: the bus routes wires blindly
(an MQTT broker is not a trust anchor), every subscriber checks the
signature against the key of the *claimed* sender and runs its own replay
window, mirroring the SecureChannel discipline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.comms.crypto.primitives import constant_time_equal, hmac_sha256

#: domain separator for message signatures (never shared with the channel
#: layer or the audit chain, so signatures cannot be confused across uses)
SIG_DOMAIN = b"repro-gs-msg:v1:"

#: HMAC-SHA256 tag length appended to the canonical body
SIG_BYTES = 32

#: operator command verbs the vehicles execute
COMMANDS: Tuple[str, ...] = ("start", "pause", "safe_stop", "rejoin")

#: message kinds beyond commands that ride the alert topics
ALERT_KINDS: Tuple[str, ...] = ("status", "detection", "safety", "ids")


class GsCodecError(ValueError):
    """A wire failed to parse, verify, or round-trip canonically."""


@dataclass(frozen=True)
class GsMessage:
    """One signed plane message.

    ``payload`` is stored as a sorted tuple of ``(key, value)`` pairs so
    messages stay hashable and frozen; :meth:`payload_dict` gives the
    mapping view.  ``t`` is the sender's simulated time, rounded to the
    trace precision (6 decimals) so encoding is stable.
    """

    topic: str
    sender: str
    counter: int
    t: float
    kind: str
    payload: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def make(
        topic: str,
        sender: str,
        counter: int,
        t: float,
        kind: str,
        payload: Optional[Mapping[str, object]] = None,
    ) -> "GsMessage":
        return GsMessage(
            topic=str(topic),
            sender=str(sender),
            counter=int(counter),
            t=round(float(t), 6),
            kind=str(kind),
            payload=tuple(sorted((dict(payload or {})).items())),
        )

    def payload_dict(self) -> dict:
        return {key: value for key, value in self.payload}


def _body_bytes(message: GsMessage) -> bytes:
    body = {
        "counter": message.counter,
        "kind": message.kind,
        "payload": message.payload_dict(),
        "sender": message.sender,
        "t": message.t,
        "topic": message.topic,
    }
    return json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def sign(body: bytes, key: bytes) -> bytes:
    """The 32-byte tag over a domain-separated body."""
    return hmac_sha256(key, SIG_DOMAIN + body)


def encode(message: GsMessage, key: bytes) -> bytes:
    """Canonical body + tag; a pure function of (message, key)."""
    body = _body_bytes(message)
    return body + sign(body, key)


def _parse_body(body: bytes) -> GsMessage:
    try:
        fields = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GsCodecError(f"body is not valid JSON: {exc}") from None
    if not isinstance(fields, dict):
        raise GsCodecError("body is not a JSON object")
    missing = {"topic", "sender", "counter", "t", "kind", "payload"} - set(fields)
    if missing:
        raise GsCodecError(f"body missing fields {sorted(missing)}")
    if not isinstance(fields["counter"], int) or isinstance(fields["counter"], bool):
        raise GsCodecError("counter must be an integer")
    if fields["counter"] < 0:
        raise GsCodecError("counter must be non-negative")
    if not isinstance(fields["t"], (int, float)) or isinstance(fields["t"], bool):
        raise GsCodecError("t must be a number")
    if not isinstance(fields["payload"], dict):
        raise GsCodecError("payload must be an object")
    for name in ("topic", "sender", "kind"):
        if not isinstance(fields[name], str) or not fields[name]:
            raise GsCodecError(f"{name} must be a non-empty string")
    message = GsMessage.make(
        fields["topic"], fields["sender"], fields["counter"],
        fields["t"], fields["kind"], fields["payload"],
    )
    # canonicality: re-encoding must reproduce the body byte for byte, so
    # two distinct wires can never verify as the same message (and the
    # round-trip property encode(decode(w)) == w holds for accepted wires)
    if _body_bytes(message) != body:
        raise GsCodecError("body is not in canonical encoding")
    return message


def decode(wire: bytes, key: bytes) -> GsMessage:
    """Verify and parse one wire; raises :class:`GsCodecError` on anything.

    The tag is checked *before* the body is parsed (constant-time compare),
    so a forged wire never reaches the JSON layer with a bad signature.
    """
    if not isinstance(wire, (bytes, bytearray)):
        raise GsCodecError("wire must be bytes")
    if len(wire) <= SIG_BYTES:
        raise GsCodecError("wire shorter than a signature")
    body, tag = bytes(wire[:-SIG_BYTES]), bytes(wire[-SIG_BYTES:])
    if not constant_time_equal(sign(body, key), tag):
        raise GsCodecError("signature verification failed")
    return _parse_body(body)


def decode_unverified(wire: bytes) -> GsMessage:
    """Parse a wire without checking its tag (audit/attack tooling only)."""
    if not isinstance(wire, (bytes, bytearray)) or len(wire) <= SIG_BYTES:
        raise GsCodecError("wire shorter than a signature")
    return _parse_body(bytes(wire[:-SIG_BYTES]))
