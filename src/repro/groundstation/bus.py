"""The deterministic MQTT-style topic bus.

The bus is transport, not trust: it routes opaque wires to subscribers
after a fixed uplink latency and never inspects signatures — exactly like
a broker an adversary may own.  Security properties live entirely at the
endpoints (codec signatures, replay windows, the audit chain), which is
what the attack tier exercises: a tap models an eavesdropping adversary,
a drop filter models alert suppression at the broker.

Topic grammar is the MQTT subset the plane needs: exact topics
(``gs/cmd/forwarder``) and multi-level wildcards (``gs/#`` matches every
topic under ``gs/``).  Delivery order is deterministic: subscribers fire
in subscription order through the sim's event queue.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

#: fixed uplink latency between publish and delivery (simulated seconds)
LATENCY_S = 0.02

Handler = Callable[[str, bytes], None]


def topic_matches(pattern: str, topic: str) -> bool:
    """MQTT-subset match: exact, or a trailing ``#`` multi-level wildcard."""
    if pattern.endswith("#"):
        return topic.startswith(pattern[:-1])
    return pattern == topic


class GsBus:
    """Deterministic pub/sub with taps and drop filters for the attack tier."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._subs: List[Tuple[str, Handler]] = []
        self._taps: List[Handler] = []
        self._drop_filters: List[str] = []
        self.published = 0
        self.delivered = 0
        self.suppressed = 0

    def subscribe(self, pattern: str, handler: Handler) -> None:
        self._subs.append((str(pattern), handler))

    def tap(self, handler: Handler) -> None:
        """Observe every publish immediately (the eavesdropper's vantage)."""
        self._taps.append(handler)

    def add_drop_filter(self, pattern: str) -> None:
        """Silently discard matching publishes (broker-level suppression)."""
        self._drop_filters.append(str(pattern))

    def remove_drop_filter(self, pattern: str) -> None:
        self._drop_filters.remove(str(pattern))

    def publish(self, topic: str, wire: bytes) -> int:
        """Route one wire; returns the number of deliveries scheduled."""
        topic = str(topic)
        self.published += 1
        for tap in self._taps:
            tap(topic, wire)
        if any(topic_matches(p, topic) for p in self._drop_filters):
            self.suppressed += 1
            return 0
        scheduled = 0
        for pattern, handler in self._subs:
            if topic_matches(pattern, topic):
                self.sim.schedule(
                    LATENCY_S,
                    lambda h=handler, t=topic, w=bytes(wire): h(t, w),
                )
                scheduled += 1
        self.delivered += scheduled
        return scheduled

    def summary(self) -> dict:
        return {
            "published": self.published,
            "delivered": self.delivered,
            "suppressed": self.suppressed,
            "subscriptions": len(self._subs),
        }
