"""Seed-derived per-principal keys and roles for the plane.

The keyring models the pre-provisioned secrets of a deployment: every
principal's symmetric key is derived from the run seed the same way the
sim derives its RNG streams (:func:`repro.sim.rng.derive_seed` — SHA-256
over a canonical encoding, stable across platforms), so the whole plane is
a pure function of the seed.  Verifiers look keys up by the *claimed*
sender name; an adversary who derives their own key (``"attacker"``) can
sign wires but never produce a tag that verifies under an operator's key,
which is exactly what the command-forgery attack exercises.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from repro.comms.crypto.primitives import hmac_sha256


class GsKeyring:
    """Per-principal HMAC keys plus the role table verifiers consult."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._master = hashlib.sha256(
            f"repro-gs-master:{self.seed}".encode("utf-8")
        ).digest()
        self._keys: Dict[str, bytes] = {}
        self._roles: Dict[str, str] = {}

    def key_for(self, principal: str) -> bytes:
        """The principal's symmetric key (derived on first use)."""
        key = self._keys.get(principal)
        if key is None:
            key = hmac_sha256(
                self._master, b"gs-key:" + principal.encode("utf-8")
            )
            self._keys[principal] = key
        return key

    def register(self, principal: str, role: str) -> bytes:
        """Provision ``principal`` with ``role`` and return its key."""
        self._roles[principal] = role
        return self.key_for(principal)

    def role(self, principal: str) -> Optional[str]:
        return self._roles.get(principal)

    def is_operator(self, principal: str) -> bool:
        return self._roles.get(principal) == "operator"

    @property
    def principals(self) -> Tuple[str, ...]:
        return tuple(sorted(self._roles))
