"""Operators, vehicle agents and the auditing control station.

Verification is end-to-end and per-receiver: the bus is untrusted, so the
vehicle *and* the control station each check the signature against the
claimed sender's key and run their own replay window (the SecureChannel
discipline: a bounded window with a seen-set for in-window duplicates).
Accepted commands execute through a dedicated per-vehicle
:class:`~repro.faults.modes.ModeMachine` (namespaced ``gs-<vehicle>`` so
it never collides with the fault injector's machines), and everything the
control station observes — accepted or rejected — lands in the hash-chained
:class:`~repro.groundstation.audit.AuditLog`.

Alert suppression is detected by absence: a watchdog at the control
station tracks each vehicle's last verified status beacon and raises a
``gs_alert_gap`` event when the stream goes quiet, which the signature IDS
maps to the ``alert_suppression`` attack class.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.comms.protocols import phase_offset
from repro.defense.recovery import ContinuityManager, RecoveryPlan
from repro.faults.modes import ModeMachine
from repro.groundstation.audit import AuditLog
from repro.groundstation.bus import GsBus
from repro.groundstation.codec import (
    COMMANDS,
    GsCodecError,
    GsMessage,
    decode,
    decode_unverified,
    encode,
)
from repro.groundstation.keys import GsKeyring
from repro.sim.events import EventCategory, EventLog
from repro.telemetry import tracer as trace

#: replay window width, mirroring SecureChannel's discipline
REPLAY_WINDOW = 64

#: vehicle status beacon period (the alert stream the watchdog expects)
STATUS_INTERVAL_S = 5.0

#: silence on a vehicle's status topic longer than this raises an alert gap
GAP_TIMEOUT_S = 12.0

#: speed cap applied while an operator hold (pause) is in force, m/s
PAUSE_SPEED_LIMIT = 0.5

#: the scripted operator session driven in every groundstation-enabled run
DEFAULT_SCRIPT: Tuple[Tuple[float, str, str], ...] = (
    (30.0, "forwarder", "pause"),
    (45.0, "forwarder", "start"),
    (60.0, "forwarder", "safe_stop"),
    (75.0, "forwarder", "rejoin"),
)


class ReplayState:
    """Per-sender anti-replay window (counter high-water mark + seen set)."""

    def __init__(self, window: int = REPLAY_WINDOW) -> None:
        self.window = window
        self.max = -1
        self._seen: Set[int] = set()

    def admit(self, counter: int) -> str:
        """``"ok"`` and record the counter, or ``"replay"``."""
        if counter <= self.max - self.window:
            return "replay"
        if counter in self._seen:
            return "replay"
        self._seen.add(counter)
        if counter > self.max:
            self.max = counter
            horizon = self.max - self.window
            self._seen = {c for c in self._seen if c > horizon}
        return "ok"


class Operator:
    """One keyed operator console issuing signed commands."""

    def __init__(self, name: str, keyring: GsKeyring, bus: GsBus, sim) -> None:
        self.name = name
        self.keyring = keyring
        self.bus = bus
        self.sim = sim
        self.counter = -1
        self.issued = 0
        self._key = keyring.register(name, "operator")

    def issue(self, vehicle: str, command: str, **params) -> bytes:
        """Sign and publish one command; returns the wire for the audit."""
        self.counter += 1
        self.issued += 1
        message = GsMessage.make(
            topic=f"gs/cmd/{vehicle}",
            sender=self.name,
            counter=self.counter,
            t=self.sim.now,
            kind="command",
            payload={"command": command, **params},
        )
        wire = encode(message, self._key)
        self.bus.publish(message.topic, wire)
        return wire


class VehicleAgent:
    """One vehicle endpoint: verify commands, execute, publish alerts.

    ``forwarder`` is the executing platform; when ``None`` (the drone) the
    agent only publishes status beacons and detection alerts, and rejects
    commands as unsupported.
    """

    def __init__(
        self,
        name: str,
        sim,
        log: EventLog,
        keyring: GsKeyring,
        bus: GsBus,
        forwarder=None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.log = log
        self.keyring = keyring
        self.bus = bus
        self.forwarder = forwarder
        self.counter = -1
        self.verdicts: Dict[str, int] = {}
        self._replay: Dict[str, ReplayState] = {}
        self._key = keyring.register(name, "vehicle")
        self.machine = None
        if forwarder is not None:
            continuity = ContinuityManager(
                RecoveryPlan.worksite_default(), sim, log, scope=f"gs-{name}"
            )
            self.machine = ModeMachine(
                f"gs-{name}", sim, log, continuity,
                on_degraded=lambda: forwarder.set_speed_limit(PAUSE_SPEED_LIMIT),
                on_safe_stop=lambda: forwarder.safe_stop("gs_command"),
                on_recovering=lambda: forwarder.clear_safe_stop("gs_command"),
                on_nominal=lambda: forwarder.set_speed_limit(None),
            )
        bus.subscribe(f"gs/cmd/{name}", self._on_command)
        offset = phase_offset(f"gs-status:{name}", STATUS_INTERVAL_S)
        self._beacon = sim.every(
            STATUS_INTERVAL_S, self._publish_status, start_at=sim.now + offset
        )
        # forward this vehicle's own detections as signed alerts
        log.subscribe(self._on_detection, EventCategory.DETECTION)

    # -- alert publishing ----------------------------------------------------
    def publish_alert(self, kind: str, **payload) -> None:
        self.counter += 1
        message = GsMessage.make(
            topic=f"gs/alert/{self.name}",
            sender=self.name,
            counter=self.counter,
            t=self.sim.now,
            kind=kind,
            payload=payload,
        )
        self.bus.publish(message.topic, encode(message, self._key))
        if trace.ACTIVE:
            trace.TRACER.gs_alert(node=self.name, kind=kind, counter=self.counter)

    def _publish_status(self) -> None:
        mode = self.machine.mode.value if self.machine is not None else "nominal"
        self.publish_alert("status", mode=mode)

    def _on_detection(self, event) -> None:
        if event.source == self.name:
            self.publish_alert("detection", what=event.kind)

    # -- command verification ------------------------------------------------
    def _verdict(
        self, verdict: str, sender: str, command: str, counter: int
    ) -> None:
        self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1
        executed = verdict == "executed"
        if verdict == "replay":
            kind = "gs_replay_rejected"
        elif executed:
            kind = "gs_command_executed"
        else:
            kind = "gs_command_rejected"
        self.log.emit(
            self.sim.now, EventCategory.SECURITY, kind, self.name,
            sender=sender, command=command, verdict=verdict,
        )
        if trace.ACTIVE:
            trace.TRACER.gs_command(
                vehicle=self.name, sender=sender, command=command,
                counter=counter, verdict=verdict,
            )

    def _on_command(self, topic: str, wire: bytes) -> None:
        try:
            claimed = decode_unverified(wire)
        except GsCodecError:
            self._verdict("malformed", "unknown", "unknown", -1)
            return
        sender, counter = claimed.sender, claimed.counter
        command = str(claimed.payload_dict().get("command", "unknown"))
        try:
            message = decode(wire, self.keyring.key_for(sender))
        except GsCodecError:
            self._verdict("bad_signature", sender, command, counter)
            return
        state = self._replay.setdefault(sender, ReplayState())
        if state.admit(counter) != "ok":
            self._verdict("replay", sender, command, counter)
            return
        if not self.keyring.is_operator(sender):
            self._verdict("unauthorized", sender, command, counter)
            return
        if (
            message.kind != "command"
            or command not in COMMANDS
            or self.machine is None
        ):
            self._verdict("unsupported", sender, command, counter)
            return
        self._execute(command)
        self._verdict("executed", sender, command, counter)

    def _execute(self, command: str) -> None:
        # operator commands ride the same degraded-mode machine as fault
        # reactions: pause degrades under a speed cap (with the machine's
        # RTO escalation as the dead-man backstop), safe_stop is immediate
        if command == "pause":
            self.machine.service_down("operator_hold", cause="pause")
        elif command == "start":
            self.machine.service_up("operator_hold")
        elif command == "safe_stop":
            self.machine.service_down(
                "operator_stop", cause="commanded", fallback="safe_stop"
            )
        elif command == "rejoin":
            self.machine.service_up("operator_stop")

    def summary(self) -> dict:
        return {
            "verdicts": dict(sorted(self.verdicts.items())),
            "alerts_published": self.counter + 1,
            "mode": self.machine.mode.value if self.machine else None,
        }


class ControlStation:
    """The auditing endpoint: verify everything on ``gs/#``, chain it, and
    watch for alert-stream gaps."""

    def __init__(
        self,
        name: str,
        sim,
        log: EventLog,
        keyring: GsKeyring,
        bus: GsBus,
        audit: AuditLog,
        vehicles: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.sim = sim
        self.log = log
        self.keyring = keyring
        self.bus = bus
        self.audit = audit
        self.verdicts: Dict[str, int] = {}
        self._replay: Dict[str, ReplayState] = {}
        #: vehicle -> time of its last verified status beacon
        self._last_status: Dict[str, float] = {v: sim.now for v in vehicles}
        self._gap_flagged: Set[str] = set()
        bus.subscribe("gs/#", self._on_message)
        offset = phase_offset("gs-watchdog", 1.0)
        self._watchdog = sim.every(
            1.0, self._check_gaps, start_at=sim.now + offset
        )

    def _on_message(self, topic: str, wire: bytes) -> None:
        sender, counter, kind = "unknown", 0, "unknown"
        try:
            claimed = decode_unverified(wire)
        except GsCodecError:
            verdict = "malformed"
        else:
            sender, counter, kind = claimed.sender, claimed.counter, claimed.kind
            try:
                decode(wire, self.keyring.key_for(sender))
            except GsCodecError:
                verdict = "bad_signature"
            else:
                state = self._replay.setdefault(sender, ReplayState())
                if state.admit(counter) != "ok":
                    verdict = "replay"
                elif topic.startswith("gs/cmd/") and not self.keyring.is_operator(
                    sender
                ):
                    verdict = "unauthorized"
                else:
                    verdict = "ok"
        self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1
        if verdict == "ok" and kind == "status" and sender in self._last_status:
            self._last_status[sender] = self.sim.now
            self._gap_flagged.discard(sender)
        self.audit.append(
            self.sim.now, topic, sender, counter, kind, verdict, wire
        )

    def _check_gaps(self) -> None:
        now = self.sim.now
        for vehicle, last in self._last_status.items():
            if vehicle in self._gap_flagged:
                continue
            if now - last > GAP_TIMEOUT_S:
                self._gap_flagged.add(vehicle)
                self.log.emit(
                    now, EventCategory.SECURITY, "gs_alert_gap", self.name,
                    vehicle=vehicle, silent_s=round(now - last, 6),
                )

    def summary(self) -> dict:
        return {
            "verdicts": dict(sorted(self.verdicts.items())),
            "alert_gaps": len(self._gap_flagged),
        }


class GroundStation:
    """Facade wiring the whole plane into one scenario.

    Everything — keys, genesis, message bytes — derives from the run seed,
    so same-seed runs produce byte-identical audit chains.
    """

    def __init__(
        self,
        sim,
        log: EventLog,
        seed: int,
        forwarder=None,
        drone=None,
        audit_path: Optional[str] = None,
        script: Optional[Sequence[Tuple[float, str, str]]] = DEFAULT_SCRIPT,
    ) -> None:
        self.sim = sim
        self.log = log
        self.seed = int(seed)
        self.keyring = GsKeyring(self.seed)
        self.bus = GsBus(sim)
        self.audit = AuditLog(self.seed, path=audit_path)
        self.vehicles: List[VehicleAgent] = []
        names: List[str] = []
        if forwarder is not None:
            self.vehicles.append(
                VehicleAgent("forwarder", sim, log, self.keyring, self.bus,
                             forwarder=forwarder)
            )
            names.append("forwarder")
        if drone is not None:
            self.vehicles.append(
                VehicleAgent("drone", sim, log, self.keyring, self.bus)
            )
            names.append("drone")
        self.station = ControlStation(
            "station", sim, log, self.keyring, self.bus, self.audit,
            vehicles=names,
        )
        self.operator = Operator("control", self.keyring, self.bus, sim)
        self.script = tuple(script or ())
        for at, vehicle, command in self.script:
            if at >= sim.now:
                sim.schedule_at(
                    at, lambda v=vehicle, c=command: self.operator.issue(v, c)
                )

    def vehicle(self, name: str) -> Optional[VehicleAgent]:
        for agent in self.vehicles:
            if agent.name == name:
                return agent
        return None

    def finalize(self) -> None:
        """Close the audit chain (idempotent; call once the run ends)."""
        self.audit.close(self.sim.now)

    def summary(self) -> dict:
        return {
            "operator_commands": self.operator.issued,
            "vehicles": {v.name: v.summary() for v in self.vehicles},
            "station": self.station.summary(),
            "bus": self.bus.summary(),
            "audit": self.audit.summary(),
        }
