"""The signed ground-station command/alert plane (ROADMAP item 3).

An MQTT-style pub/sub plane riding the deterministic sim: operators issue
HMAC-signed commands (start / pause / safe-stop / rejoin) with per-operator
monotonic counters and a replay window mirroring the SecureChannel
discipline; vehicles verify, execute through the degraded-mode
:class:`~repro.faults.modes.ModeMachine`, and publish signed status and
alert messages; every message the control station observes lands in a
hash-chained append-only audit log whose offline verifier emits a
structured evidence report for :mod:`repro.assurance`.

* :mod:`repro.groundstation.codec` — the signed message codec;
* :mod:`repro.groundstation.keys` — seed-derived per-principal keyring;
* :mod:`repro.groundstation.bus` — the deterministic topic bus;
* :mod:`repro.groundstation.audit` — hash chain, verifier, evidence;
* :mod:`repro.groundstation.station` — operators, vehicles, control;
* :mod:`repro.groundstation.selftest` — the audit tamper self-test.

The plane is strictly opt-in (``ScenarioConfig.groundstation_enabled``):
a disabled run is byte-identical to the golden traces.
"""

from repro.groundstation.audit import (
    AuditLog,
    evidence_from_report,
    genesis_hash,
    verify_audit_file,
    verify_chain,
)
from repro.groundstation.bus import GsBus
from repro.groundstation.codec import (
    COMMANDS,
    GsCodecError,
    GsMessage,
    decode,
    decode_unverified,
    encode,
)
from repro.groundstation.keys import GsKeyring
from repro.groundstation.station import (
    ControlStation,
    GroundStation,
    Operator,
    ReplayState,
    VehicleAgent,
)

__all__ = [
    "AuditLog",
    "COMMANDS",
    "ControlStation",
    "GroundStation",
    "GsBus",
    "GsCodecError",
    "GsKeyring",
    "GsMessage",
    "Operator",
    "ReplayState",
    "VehicleAgent",
    "decode",
    "decode_unverified",
    "encode",
    "evidence_from_report",
    "genesis_hash",
    "verify_audit_file",
    "verify_chain",
]
