"""The Figure 3 knowledge-transfer pipeline, executable.

The paper's survey method: start from robotics-in-forestry (finding no
cybersecurity literature), identify forestry characteristics, then transfer
knowledge from similar domains — mining AHS (Gaber et al.) and automotive
(Ren et al., Petit et al.) — plus SoS and autonomous-machinery requirements.

The executable form: each source domain contributes a *threat catalog*
(threat entries with domain context tags); the transfer maps entries whose
context tags are compatible with the forestry characteristics onto the
forestry item model, and reports coverage: how much of the forestry threat
space each source domain explains, what only the combination covers, and
what remains uncovered (the paper's "research gap").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.risk.model import ItemModel


@dataclass(frozen=True)
class CatalogEntry:
    """One transferable threat-knowledge entry.

    Attributes
    ----------
    entry_id:
        Identifier within the source catalog.
    attack_type:
        The attack class described (``repro.attacks`` vocabulary).
    context_tags:
        Domain-context requirements for the entry to transfer (e.g.
        ``"wireless"``, ``"gnss_nav"``, ``"camera_perception"``,
        ``"urban_infrastructure"``).  The entry transfers when all its tags
        are satisfied by the target domain's context.
    mitigations:
        Countermeasure names the source domain pairs with the threat.
    source_ref:
        Literature anchor.
    """

    entry_id: str
    attack_type: str
    context_tags: FrozenSet[str]
    mitigations: FrozenSet[str] = frozenset()
    source_ref: str = ""


@dataclass(frozen=True)
class DomainCatalog:
    """A source domain's threat catalog."""

    domain: str
    entries: Sequence[CatalogEntry]


#: context tags the forestry worksite satisfies (derived from Table I and the
#: use case: wireless SoS, GNSS navigation, camera perception, no urban
#: cooperative infrastructure, remote site, autonomous machines)
FORESTRY_CONTEXT: FrozenSet[str] = frozenset({
    "wireless", "gnss_nav", "camera_perception", "autonomous", "remote_site",
    "heavy_machinery", "system_of_systems",
})


def mining_catalog() -> DomainCatalog:
    """The mining AHS catalog (Gaber et al.)."""
    entries = [
        CatalogEntry("MIN-01", "rf_jamming", frozenset({"wireless"}),
                     frozenset({"channel_agility", "anomaly_ids"}), "Gaber2021"),
        CatalogEntry("MIN-02", "frequency_interference", frozenset({"wireless"}),
                     frozenset({"channel_agility"}), "Gaber2021"),
        CatalogEntry("MIN-03", "wifi_deauth", frozenset({"wireless"}),
                     frozenset({"protected_management_frames"}), "Gaber2021"),
        CatalogEntry("MIN-04", "gnss_jamming", frozenset({"gnss_nav"}),
                     frozenset({"gnss_plausibility"}), "Gaber2021"),
        CatalogEntry("MIN-05", "gnss_spoofing", frozenset({"gnss_nav"}),
                     frozenset({"gnss_plausibility"}), "Gaber2021"),
        CatalogEntry("MIN-06", "camera_hijack", frozenset({"camera_perception"}),
                     frozenset({"anti_hacking_ai"}), "Gaber2021"),
        CatalogEntry("MIN-07", "channel_overload", frozenset({"wireless", "dense_fleet"}),
                     frozenset(), "Gaber2021"),
    ]
    return DomainCatalog("mining", entries)


def automotive_catalog() -> DomainCatalog:
    """The automotive AV catalog (Ren, Petit, Kyrkou, Chattopadhyay)."""
    entries = [
        CatalogEntry("AUT-01", "gnss_spoofing", frozenset({"gnss_nav"}),
                     frozenset({"gnss_plausibility"}), "Ren2019"),
        CatalogEntry("AUT-02", "camera_blinding", frozenset({"camera_perception"}),
                     frozenset({"camera_redundancy"}), "Petit2015"),
        CatalogEntry("AUT-03", "camera_hijack", frozenset({"camera_perception"}),
                     frozenset({"anti_hacking_ai", "camera_redundancy"}), "Kyrkou2020"),
        CatalogEntry("AUT-04", "lidar_spoofing", frozenset({"lidar_perception"}),
                     frozenset({"camera_redundancy"}), "Petit2015"),
        CatalogEntry("AUT-05", "message_injection", frozenset({"wireless"}),
                     frozenset({"pki_mutual_auth", "secure_channel_aead"}),
                     "Chattopadhyay2017"),
        CatalogEntry("AUT-06", "message_replay", frozenset({"wireless"}),
                     frozenset({"secure_channel_aead"}), "Chattopadhyay2017"),
        CatalogEntry("AUT-07", "v2i_spoofing", frozenset({"urban_infrastructure"}),
                     frozenset(), "Ren2019"),
        CatalogEntry("AUT-08", "eavesdropping", frozenset({"wireless"}),
                     frozenset({"data_encryption"}), "Ren2019"),
    ]
    return DomainCatalog("automotive", entries)


def it_security_catalog() -> DomainCatalog:
    """Generic IT/ICS security knowledge (IEC 62443 background)."""
    entries = [
        CatalogEntry("ICS-01", "credential_bruteforce", frozenset({"remote_site"}),
                     frozenset({"session_lockout"}), "IEC62443"),
        CatalogEntry("ICS-02", "firmware_tampering", frozenset({"remote_site"}),
                     frozenset({"secure_boot", "remote_attestation"}), "IEC62443"),
        CatalogEntry("ICS-03", "message_tampering", frozenset({"wireless"}),
                     frozenset({"integrity_hmac"}), "IEC62443"),
        CatalogEntry("ICS-04", "datacenter_intrusion", frozenset({"cloud_backend"}),
                     frozenset(), "IEC62443"),
    ]
    return DomainCatalog("ics_it", entries)


@dataclass
class TransferReport:
    """Coverage analysis of the knowledge transfer."""

    target_attack_types: List[str]
    transferred: Dict[str, List[str]]  # domain -> transferred attack types
    rejected: Dict[str, List[str]]     # domain -> entries blocked by context
    covered: Set[str] = field(default_factory=set)
    uncovered: Set[str] = field(default_factory=set)
    mitigation_suggestions: Dict[str, Set[str]] = field(default_factory=dict)

    def coverage(self) -> float:
        total = len(self.target_attack_types)
        if total == 0:
            return 1.0
        return len(self.covered) / total

    def coverage_by_domain(self) -> Dict[str, float]:
        total = len(self.target_attack_types)
        if total == 0:
            return {d: 1.0 for d in self.transferred}
        return {
            domain: len(set(types) & set(self.target_attack_types)) / total
            for domain, types in self.transferred.items()
        }


class KnowledgeTransfer:
    """The Figure 3 pipeline over a set of source catalogs.

    Parameters
    ----------
    catalogs:
        Source domain catalogs (default: mining + automotive + ICS).
    context:
        Target-domain context tags (default: the forestry context).
    """

    def __init__(
        self,
        catalogs: Optional[Sequence[DomainCatalog]] = None,
        *,
        context: FrozenSet[str] = FORESTRY_CONTEXT,
    ) -> None:
        self.catalogs = list(
            catalogs
            if catalogs is not None
            else [mining_catalog(), automotive_catalog(), it_security_catalog()]
        )
        self.context = context

    def transfer(self, item: ItemModel) -> TransferReport:
        """Map the catalogs onto the item's threat space."""
        target_types = sorted({t.attack_type for t in item.threat_scenarios})
        transferred: Dict[str, List[str]] = {}
        rejected: Dict[str, List[str]] = {}
        covered: Set[str] = set()
        suggestions: Dict[str, Set[str]] = {}
        for catalog in self.catalogs:
            ok: List[str] = []
            blocked: List[str] = []
            for entry in catalog.entries:
                if entry.context_tags <= self.context:
                    ok.append(entry.attack_type)
                    if entry.attack_type in target_types:
                        covered.add(entry.attack_type)
                        suggestions.setdefault(entry.attack_type, set()).update(
                            entry.mitigations
                        )
                else:
                    blocked.append(entry.entry_id)
            transferred[catalog.domain] = ok
            rejected[catalog.domain] = blocked
        report = TransferReport(
            target_attack_types=target_types,
            transferred=transferred,
            rejected=rejected,
            covered=covered,
            uncovered=set(target_types) - covered,
            mitigation_suggestions=suggestions,
        )
        return report
