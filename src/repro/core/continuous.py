"""Continuous (runtime) risk assessment.

ISO/SAE 21434's continual cybersecurity activities (clauses 8, 13) require
risk to be re-evaluated as the threat picture changes.  Here the runtime
feed is the worksite itself: IDS alerts, heartbeat losses, GNSS trust state
and safety-monitor events move per-threat *activity levels*, which raise the
effective feasibility of matching threat scenarios; the posture engine
re-runs the risk matrix and drives graded operational responses
(the speed-limiter assurance tiers, ultimately safe stop).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.defense.ids.base import Alert
from repro.risk.feasibility import FeasibilityRating
from repro.risk.matrix import risk_value
from repro.risk.tara import TaraResult, ThreatAssessment
from repro.sim.engine import Simulator
from repro.sim.events import EventCategory, EventLog


class RiskPosture(enum.IntEnum):
    """Graded operational posture, worst first."""

    NOMINAL = 0
    ELEVATED = 1
    HIGH = 2
    CRITICAL = 3


#: posture -> recommended assurance tier for the speed limiter
POSTURE_ASSURANCE = {
    RiskPosture.NOMINAL: "full",
    RiskPosture.ELEVATED: "full",
    RiskPosture.HIGH: "degraded",
    RiskPosture.CRITICAL: "minimal",
}


@dataclass
class ThreatActivity:
    """Runtime activity level of one attack type."""

    attack_type: str
    level: float = 0.0  # decays towards zero
    last_alert: Optional[float] = None
    alerts: int = 0


class ContinuousRiskAssessment:
    """Runtime risk engine over a baseline TARA.

    Parameters
    ----------
    baseline:
        The design-time TARA result (threat inventory + static ratings).
    sim, log:
        Kernel plumbing.
    decay_halflife_s:
        Activity levels halve after this long without new alerts.
    on_posture_change:
        Callback invoked with the new :class:`RiskPosture`.
    """

    def __init__(
        self,
        baseline: TaraResult,
        sim: Simulator,
        log: EventLog,
        *,
        decay_halflife_s: float = 60.0,
        interval_s: float = 5.0,
        on_posture_change: Optional[Callable[[RiskPosture], None]] = None,
    ) -> None:
        self.baseline = baseline
        self.sim = sim
        self.log = log
        self.decay_halflife_s = decay_halflife_s
        self.on_posture_change = on_posture_change
        self.activity: Dict[str, ThreatActivity] = {}
        self.posture = RiskPosture.NOMINAL
        self.posture_history: List[tuple] = [(sim.now, RiskPosture.NOMINAL)]
        self._last_decay = sim.now
        sim.every(interval_s, self._reassess)

    # -- inputs ---------------------------------------------------------------
    def ingest_alert(self, alert: Alert) -> None:
        """Feed an IDS alert into the activity model."""
        activity = self.activity.setdefault(
            alert.alert_type, ThreatActivity(attack_type=alert.alert_type)
        )
        activity.level = min(3.0, activity.level + max(alert.confidence, 0.2))
        activity.last_alert = alert.time
        activity.alerts += 1

    def ingest_event(self, kind: str, weight: float = 0.5) -> None:
        """Feed a non-IDS runtime signal (heartbeat loss, GNSS distrust)."""
        activity = self.activity.setdefault(kind, ThreatActivity(attack_type=kind))
        activity.level = min(3.0, activity.level + weight)
        activity.last_alert = self.sim.now
        activity.alerts += 1

    # -- engine ---------------------------------------------------------------
    def _decay(self) -> None:
        dt = self.sim.now - self._last_decay
        if dt <= 0.0:
            return
        factor = 0.5 ** (dt / self.decay_halflife_s)
        for activity in self.activity.values():
            activity.level *= factor
        self._last_decay = self.sim.now

    def effective_feasibility(self, assessment: ThreatAssessment) -> FeasibilityRating:
        """Static feasibility raised by runtime activity on the attack type."""
        activity = self.activity.get(assessment.attack_type)
        boost = 0
        if activity is not None:
            if activity.level >= 1.5:
                boost = 2
            elif activity.level >= 0.5:
                boost = 1
        return FeasibilityRating(
            min(int(FeasibilityRating.HIGH), int(assessment.feasibility) + boost)
        )

    def current_risks(self) -> Dict[str, int]:
        """Per-threat current risk values."""
        self._decay()
        risks = {}
        for assessment in self.baseline.assessments:
            feasibility = self.effective_feasibility(assessment)
            risks[assessment.threat_id] = risk_value(assessment.impact, feasibility)
        return risks

    #: activity level above which a threat counts as actively exploited
    ACTIVE_THRESHOLD = 1.0

    def active_threats(self) -> List[ThreatAssessment]:
        """Threats whose attack type shows active exploitation right now."""
        return [
            a for a in self.baseline.assessments
            if self.activity.get(a.attack_type) is not None
            and self.activity[a.attack_type].level >= self.ACTIVE_THRESHOLD
        ]

    def _reassess(self) -> None:
        """Posture from runtime signals on top of the accepted static risk.

        Two escalation channels:

        * **elevation** — observed activity raises a threat's effective
          feasibility above its static rating (a hardened attack becoming
          practical);
        * **active exploitation** — sustained alerts on an attack type mean
          the attack is *occurring*, which escalates even when the static
          rating already called it feasible (possible ≠ in progress).
        """
        risks = self.current_risks()
        elevated = [
            a for a in self.baseline.assessments
            if risks[a.threat_id] > a.risk_value
        ]
        active = self.active_threats()
        hot = {a.threat_id: a for a in elevated + active}
        safety_hot = [
            a for a in hot.values()
            if a.safety_coupled and risks[a.threat_id] >= 4
        ]
        max_hot = max((risks[a.threat_id] for a in hot.values()), default=0)
        if safety_hot and max_hot >= 5:
            posture = RiskPosture.CRITICAL
        elif safety_hot:
            posture = RiskPosture.HIGH
        elif max_hot >= 4:
            posture = RiskPosture.ELEVATED
        elif hot:
            posture = RiskPosture.ELEVATED
        else:
            posture = RiskPosture.NOMINAL
        max_risk = max(risks.values(), default=0)
        if posture is not self.posture:
            self.posture = posture
            self.posture_history.append((self.sim.now, posture))
            self.log.emit(
                self.sim.now, EventCategory.SECURITY, "risk_posture_changed",
                "continuous-risk", posture=posture.name, max_risk=max_risk,
            )
            if self.on_posture_change is not None:
                self.on_posture_change(posture)

    # -- reporting --------------------------------------------------------------
    def time_in_posture(self, horizon_s: float) -> Dict[str, float]:
        """Seconds spent in each posture over the run."""
        durations: Dict[str, float] = {p.name: 0.0 for p in RiskPosture}
        history = list(self.posture_history) + [(horizon_s, self.posture)]
        for (t0, posture), (t1, _) in zip(history, history[1:]):
            durations[posture.name] += max(0.0, min(t1, horizon_s) - t0)
        return durations
