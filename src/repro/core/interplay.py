"""Security→safety interplay analysis (IEC TS 63074).

"Security threats and vulnerabilities could potentially compromise the
functional safety of safety-related control systems."  The analysis makes
that propagation explicit and computable:

* a :class:`SecuritySafetyLink` states that a given *attack type* degrades a
  given *safety function* in a given way (defeats it, raises its failure
  rate, or removes a redundancy channel);
* given the hazard catalog, the safety-function designs (ISO 13849) and the
  TARA output, :class:`InterplayAnalysis` re-evaluates every cyber-coupled
  hazard under each credible attack: the attack may raise the hazard's
  required PL (worse exposure/avoidance) *and* lower the function's achieved
  PL (lost channel/diagnostics) — a hazard whose achieved PL falls below its
  required PL under a feasible attack is an **interplay finding**, exactly
  the class of risk a safety-only or security-only assessment misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.risk.feasibility import FeasibilityRating
from repro.risk.tara import TaraResult
from repro.safety.hazards import Avoidance, Exposure, Hazard, HazardCatalog
from repro.safety.iso13849 import (
    Category,
    PerformanceLevel,
    PlEvaluationError,
    SafetyFunctionDesign,
    achieved_pl,
)


@dataclass(frozen=True)
class SecuritySafetyLink:
    """One attack-type → safety-function degradation edge.

    Attributes
    ----------
    attack_type:
        The attacking action (``repro.attacks`` vocabulary).
    safety_function:
        Name of the degraded function (matches ``Hazard.safety_function``).
    effect:
        ``"defeats"`` — the function cannot act at all;
        ``"degrades"`` — diagnostics/channel quality drop (DC band down);
        ``"loses_channel"`` — a redundant channel is lost (category down).
    raises_exposure / raises_avoidance:
        Whether a successful attack worsens the hazard's F / P parameter.
    """

    attack_type: str
    safety_function: str
    effect: str
    raises_exposure: bool = False
    raises_avoidance: bool = False


def worksite_links() -> List[SecuritySafetyLink]:
    """The worksite's security→safety propagation edges."""
    return [
        SecuritySafetyLink("camera_hijack", "people_detection_stop", "defeats",
                           raises_avoidance=True),
        SecuritySafetyLink("camera_blinding", "people_detection_stop", "degrades",
                           raises_avoidance=True),
        SecuritySafetyLink("rf_jamming", "people_detection_stop", "loses_channel",
                           raises_avoidance=True),
        SecuritySafetyLink("wifi_deauth", "people_detection_stop", "loses_channel"),
        SecuritySafetyLink("message_tampering", "people_detection_stop", "degrades"),
        SecuritySafetyLink("gnss_spoofing", "geofence", "defeats",
                           raises_exposure=True),
        SecuritySafetyLink("gnss_jamming", "geofence", "degrades"),
        SecuritySafetyLink("message_injection", "protective_stop", "defeats",
                           raises_exposure=True, raises_avoidance=True),
        SecuritySafetyLink("firmware_tampering", "protective_stop", "defeats",
                           raises_exposure=True, raises_avoidance=True),
        SecuritySafetyLink("message_injection", "speed_limiter", "defeats"),
    ]


@dataclass(frozen=True)
class InterplayFinding:
    """One hazard whose safety assurance breaks under a feasible attack."""

    hazard_id: str
    attack_type: str
    threat_id: str
    feasibility: FeasibilityRating
    required_pl_nominal: str
    required_pl_under_attack: str
    achieved_pl_nominal: Optional[str]
    achieved_pl_under_attack: Optional[str]
    assurance_gap: bool  # achieved < required under attack


def _degrade_design(
    design: SafetyFunctionDesign, effect: str
) -> Optional[SafetyFunctionDesign]:
    """The safety function's design as it stands under the attack effect."""
    if effect == "defeats":
        return None
    if effect == "degrades":
        return replace(design, dc_fraction=max(0.0, design.dc_fraction - 0.35))
    if effect == "loses_channel":
        downgrade = {
            Category.CAT4: Category.CAT3,
            Category.CAT3: Category.CAT1,
            Category.CAT2: Category.CAT1,
            Category.CAT1: Category.B,
            Category.B: Category.B,
        }
        return replace(design, category=downgrade[design.category])
    raise ValueError(f"unknown interplay effect {effect!r}")


def _worsen(hazard: Hazard, link: SecuritySafetyLink) -> Hazard:
    exposure = Exposure.F2 if link.raises_exposure else hazard.exposure
    avoidance = Avoidance.P2 if link.raises_avoidance else hazard.avoidance
    return hazard.degraded(exposure=exposure, avoidance=avoidance)


def _safe_pl(design: Optional[SafetyFunctionDesign]) -> Optional[str]:
    if design is None:
        return None
    try:
        return achieved_pl(design).value
    except PlEvaluationError:
        return None  # the degraded combination is no longer evaluable = lost


class InterplayAnalysis:
    """The combined interplay evaluation.

    Parameters
    ----------
    hazards:
        The hazard catalog.
    designs:
        Safety-function designs by name.
    links:
        The propagation edges (defaults to the worksite set).
    min_feasibility:
        Attacks below this feasibility are not credible enough to count.
    """

    def __init__(
        self,
        hazards: HazardCatalog,
        designs: Dict[str, SafetyFunctionDesign],
        *,
        links: Optional[Sequence[SecuritySafetyLink]] = None,
        min_feasibility: FeasibilityRating = FeasibilityRating.LOW,
    ) -> None:
        self.hazards = hazards
        self.designs = dict(designs)
        self.links = list(worksite_links() if links is None else links)
        self.min_feasibility = min_feasibility

    def evaluate(self, tara: TaraResult) -> List[InterplayFinding]:
        """Cross the TARA output with the hazard catalog."""
        findings: List[InterplayFinding] = []
        links_by_attack: Dict[str, List[SecuritySafetyLink]] = {}
        for link in self.links:
            links_by_attack.setdefault(link.attack_type, []).append(link)

        for assessment in tara.assessments:
            if assessment.feasibility < self.min_feasibility:
                continue
            for link in links_by_attack.get(assessment.attack_type, ()):  # noqa: B020
                for hazard in self.hazards.hazards:
                    if hazard.safety_function != link.safety_function:
                        continue
                    if not hazard.cyber_coupled:
                        continue
                    design = self.designs.get(link.safety_function)
                    nominal_achieved = _safe_pl(design)
                    degraded_design = (
                        _degrade_design(design, link.effect) if design else None
                    )
                    attacked_achieved = _safe_pl(degraded_design)
                    worsened = _worsen(hazard, link)
                    required_nominal = hazard.required_pl()
                    required_attacked = worsened.required_pl()
                    gap = self._has_gap(required_attacked, attacked_achieved)
                    findings.append(
                        InterplayFinding(
                            hazard_id=hazard.hazard_id,
                            attack_type=assessment.attack_type,
                            threat_id=assessment.threat_id,
                            feasibility=assessment.feasibility,
                            required_pl_nominal=required_nominal,
                            required_pl_under_attack=required_attacked,
                            achieved_pl_nominal=nominal_achieved,
                            achieved_pl_under_attack=attacked_achieved,
                            assurance_gap=gap,
                        )
                    )
        return findings

    @staticmethod
    def _has_gap(required: str, achieved: Optional[str]) -> bool:
        if achieved is None:
            return True
        return not PerformanceLevel.from_letter(achieved).satisfies(
            PerformanceLevel.from_letter(required)
        )

    @staticmethod
    def gaps(findings: Sequence[InterplayFinding]) -> List[InterplayFinding]:
        return [f for f in findings if f.assurance_gap]

    @staticmethod
    def gap_hazards(findings: Sequence[InterplayFinding]) -> List[str]:
        return sorted({f.hazard_id for f in findings if f.assurance_gap})
