"""The combined safety–cybersecurity assessment methodology.

This package is the repository's primary contribution — the paper's future
work made concrete: "a forestry-adapted risk assessment methodology, using
ISO/SAE 21434 (in particular the continuous risk assessment part), IEC 62443
... and IEC TS 63074 as guidance.  This methodology will take the interplay
between safety and cybersecurity into consideration."

* :mod:`repro.core.characteristics` — Table I's forestry characteristics as
  machine-readable assessment modifiers;
* :mod:`repro.core.interplay` — security→safety risk propagation
  (IEC TS 63074): which attacks degrade which safety functions and how the
  required/achieved Performance Levels shift under compromise;
* :mod:`repro.core.methodology` — the CombinedAssessment orchestrator:
  TARA + zone SL analysis + hazard re-estimation + treatment in one flow,
  with synchronisation points between the safety and security tracks;
* :mod:`repro.core.continuous` — runtime (continuous) risk assessment fed
  by IDS alerts and monitor events;
* :mod:`repro.core.knowledge_transfer` — the Figure 3 pipeline: threat
  catalogs from mining/automotive mapped into the forestry domain;
* :mod:`repro.core.sos_assessment` — SoS-level assessment combining the
  per-system results with the independence/emergence analyses.
"""

from repro.core.characteristics import (
    ForestryCharacteristic,
    characteristic_catalog,
    CharacteristicModifiers,
)
from repro.core.interplay import InterplayAnalysis, SecuritySafetyLink, worksite_links
from repro.core.methodology import CombinedAssessment, CombinedResult
from repro.core.continuous import ContinuousRiskAssessment, RiskPosture
from repro.core.knowledge_transfer import (
    DomainCatalog,
    KnowledgeTransfer,
    TransferReport,
)
from repro.core.sos_assessment import SosAssessment, SosAssessmentResult

__all__ = [
    "ForestryCharacteristic",
    "characteristic_catalog",
    "CharacteristicModifiers",
    "InterplayAnalysis",
    "SecuritySafetyLink",
    "worksite_links",
    "CombinedAssessment",
    "CombinedResult",
    "ContinuousRiskAssessment",
    "RiskPosture",
    "DomainCatalog",
    "KnowledgeTransfer",
    "TransferReport",
    "SosAssessment",
    "SosAssessmentResult",
]
