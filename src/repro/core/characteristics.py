"""Table I: the forestry-domain characteristics, machine-readable.

The paper's expert session produced eight characteristics that "serve as the
basis" for cybersecurity analysis in forestry.  Here each characteristic is
an assessment *modifier*: it shifts attack-potential factors (feasibility
side) and/or SFOP impact ratings (impact side) for matching threat
scenarios.  The E-T1 experiment runs the TARA once per characteristic to
show each one materially moves the risk picture — the quantitative form of
the paper's qualitative claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.risk.feasibility import (
    AttackPotential,
    Equipment,
    Expertise,
    Knowledge,
    WindowOfOpportunity,
)
from repro.risk.impact import ImpactRating, SfopImpact
from repro.risk.model import ThreatScenario


def _bump(rating: ImpactRating, by: int = 1) -> ImpactRating:
    return ImpactRating(min(int(ImpactRating.SEVERE), int(rating) + by))


@dataclass(frozen=True)
class CharacteristicModifiers:
    """How one characteristic reshapes the assessment.

    Attributes
    ----------
    feasibility:
        Hook ``(threat, potential) -> potential``; identity when None.
    impact:
        Hook ``(threat, impact) -> impact``; identity when None.
    """

    feasibility: Optional[Callable[[ThreatScenario, AttackPotential], AttackPotential]] = None
    impact: Optional[Callable[[ThreatScenario, SfopImpact], SfopImpact]] = None


@dataclass(frozen=True)
class ForestryCharacteristic:
    """One Table I row with its assessment semantics."""

    key: str
    title: str
    description: str
    modifiers: CharacteristicModifiers


# -- modifier implementations, one per Table I row ---------------------------

def _remote_feasibility(threat: ThreatScenario, p: AttackPotential) -> AttackPotential:
    # Remote/isolated sites: physical access is unchallenged for long periods
    # (easier window), but the attacker must travel and operate off-grid.
    return replace(p, window=WindowOfOpportunity.UNLIMITED)


def _remote_impact(threat: ThreatScenario, impact: SfopImpact) -> SfopImpact:
    # No connectivity for incident response: operational impact worsens.
    return replace(impact, operational=_bump(impact.operational))


def _autonomy_impact(threat: ThreatScenario, impact: SfopImpact) -> SfopImpact:
    # No human in the loop to arrest unsafe behaviour: safety impact of
    # integrity/availability violations worsens.
    if threat.attack_type in (
        "message_injection", "gnss_spoofing", "camera_hijack", "message_tampering",
    ):
        return replace(impact, safety=_bump(impact.safety))
    return impact


def _disaster_impact(threat: ThreatScenario, impact: SfopImpact) -> SfopImpact:
    # Attacks coinciding with disasters hit degraded operations: both
    # operational and financial impacts worsen for availability attacks.
    if threat.attack_type in ("rf_jamming", "wifi_deauth", "gnss_jamming"):
        return replace(
            impact,
            operational=_bump(impact.operational),
            financial=_bump(impact.financial),
        )
    return impact


def _privacy_impact(threat: ThreatScenario, impact: SfopImpact) -> SfopImpact:
    # Land-ownership / environmental-assessment data: disclosure matters.
    if threat.attack_type == "eavesdropping" or threat.stride == "information_disclosure":
        return replace(impact, privacy=_bump(impact.privacy, 2))
    return impact


def _remote_monitoring_feasibility(
    threat: ThreatScenario, p: AttackPotential
) -> AttackPotential:
    # Remote monitoring/control links are long-lived and internet-reachable:
    # attack window easier and knowledge requirements fall (commodity RATs).
    if threat.attack_type in ("message_injection", "credential_bruteforce",
                              "camera_hijack"):
        return replace(
            p,
            window=WindowOfOpportunity.UNLIMITED,
            knowledge=Knowledge.PUBLIC,
        )
    return p


def _threat_profile_feasibility(
    threat: ThreatScenario, p: AttackPotential
) -> AttackPotential:
    # An explicit threat profile assumes capable adversaries scoping the
    # sector: expertise requirements effectively lower (tooling shared).
    if p.expertise > Expertise.PROFICIENT:
        return replace(p, expertise=Expertise.PROFICIENT)
    return p


def _confidentiality_impact(threat: ThreatScenario, impact: SfopImpact) -> SfopImpact:
    # Confidential operations (e.g. near military sites): any disclosure is severe.
    if threat.stride == "information_disclosure":
        return replace(impact, privacy=ImpactRating.SEVERE,
                       financial=_bump(impact.financial))
    return impact


def _heavy_machinery_impact(threat: ThreatScenario, impact: SfopImpact) -> SfopImpact:
    # Heavy machinery: any safety-relevant compromise escalates to severe.
    if impact.safety > ImpactRating.NEGLIGIBLE:
        return replace(impact, safety=ImpactRating.SEVERE)
    return impact


def characteristic_catalog() -> List[ForestryCharacteristic]:
    """All eight Table I characteristics with their modifiers."""
    return [
        ForestryCharacteristic(
            key="remote_isolated",
            title="Remote and Isolated Locations",
            description=(
                "Operations in remote areas with limited connectivity; secure "
                "communication and incident response are hard"
            ),
            modifiers=CharacteristicModifiers(
                feasibility=_remote_feasibility, impact=_remote_impact
            ),
        ),
        ForestryCharacteristic(
            key="autonomous_machinery",
            title="Autonomous Machinery",
            description=(
                "Drones and robots without an operator in the loop; compromise "
                "leads directly to unsafe machine behaviour"
            ),
            modifiers=CharacteristicModifiers(impact=_autonomy_impact),
        ),
        ForestryCharacteristic(
            key="natural_disasters",
            title="Natural Disasters",
            description=(
                "Wildfires, floods and storms; recovery and continuity must "
                "cover cyber incidents during and after such events"
            ),
            modifiers=CharacteristicModifiers(impact=_disaster_impact),
        ),
        ForestryCharacteristic(
            key="data_privacy",
            title="Data Privacy and Compliance",
            description=(
                "Land ownership, environmental assessments and legal "
                "compliance data require privacy protection"
            ),
            modifiers=CharacteristicModifiers(impact=_privacy_impact),
        ),
        ForestryCharacteristic(
            key="remote_monitoring",
            title="Remote Monitoring and Control",
            description=(
                "Long-lived remote monitoring/control links invite remote "
                "compromise of equipment management"
            ),
            modifiers=CharacteristicModifiers(
                feasibility=_remote_monitoring_feasibility
            ),
        ),
        ForestryCharacteristic(
            key="threat_profile",
            title="Threat Profile",
            description=(
                "Sector-specific threat agents and their capabilities must be "
                "profiled explicitly"
            ),
            modifiers=CharacteristicModifiers(
                feasibility=_threat_profile_feasibility
            ),
        ),
        ForestryCharacteristic(
            key="confidential_operations",
            title="Confidentiality of Operations",
            description=(
                "Some operations (e.g. military sites) are confidential; "
                "communications must not disclose them"
            ),
            modifiers=CharacteristicModifiers(impact=_confidentiality_impact),
        ),
        ForestryCharacteristic(
            key="heavy_machinery",
            title="Heavy Machinery",
            description=(
                "Harvesting machines raise safety stakes; security threats "
                "that could compromise safety dominate"
            ),
            modifiers=CharacteristicModifiers(impact=_heavy_machinery_impact),
        ),
    ]


def combined_modifiers(
    characteristics: Sequence[ForestryCharacteristic],
) -> CharacteristicModifiers:
    """Compose several characteristics into one modifier pair."""

    feasibility_hooks = [
        c.modifiers.feasibility for c in characteristics if c.modifiers.feasibility
    ]
    impact_hooks = [c.modifiers.impact for c in characteristics if c.modifiers.impact]

    def feasibility(threat: ThreatScenario, p: AttackPotential) -> AttackPotential:
        for hook in feasibility_hooks:
            p = hook(threat, p)
        return p

    def impact(threat: ThreatScenario, i: SfopImpact) -> SfopImpact:
        for hook in impact_hooks:
            i = hook(threat, i)
        return i

    return CharacteristicModifiers(
        feasibility=feasibility if feasibility_hooks else None,
        impact=impact if impact_hooks else None,
    )
