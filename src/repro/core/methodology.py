"""The CombinedAssessment orchestrator — the methodology itself.

One flow with explicit synchronisation points between the safety and
security tracks (the AMASS-style alignment the paper cites):

1. **Item & hazard definition** (shared): item model + hazard catalog.
2. **Security track**: STRIDE enumeration (optional) → TARA → treatment.
3. **Safety track**: ISO 13849 evaluation of each safety-function design
   against its hazard's required PL.
4. **Sync point A — interplay**: the TARA's feasible threats are propagated
   into the safety track (:mod:`repro.core.interplay`); assurance gaps
   become mandatory treatment items regardless of their standalone cyber
   risk value.
5. **Sync point B — zone targets**: safety-coupled risk raises the SL-T of
   the zones hosting the affected functions (IEC TS 63074), and the gap
   analysis reports remediation burden.
6. **Output**: a :class:`CombinedResult` with both separate-track and
   combined verdicts, so the E-S4B experiment can show what the separate
   assessments miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.characteristics import (
    CharacteristicModifiers,
    ForestryCharacteristic,
    combined_modifiers,
)
from repro.core.interplay import InterplayAnalysis, InterplayFinding, SecuritySafetyLink
from repro.defense.countermeasures import CountermeasureCatalog
from repro.risk.iec62443 import SecurityLevel, ZoneModel
from repro.risk.model import ItemModel
from repro.risk.tara import Tara, TaraResult
from repro.risk.treatment import TreatmentPlan, plan_treatment
from repro.safety.hazards import HazardCatalog
from repro.safety.iso13849 import (
    PerformanceLevel,
    PlEvaluationError,
    SafetyFunctionDesign,
    achieved_pl,
)


@dataclass
class SafetyTrackResult:
    """Standalone safety-track verdicts."""

    achieved: Dict[str, Optional[str]] = field(default_factory=dict)
    required: Dict[str, str] = field(default_factory=dict)  # hazard -> PLr
    shortfalls: List[str] = field(default_factory=list)  # hazards failing standalone


@dataclass
class CombinedResult:
    """The full output of the combined methodology."""

    tara: TaraResult
    treatment: TreatmentPlan
    safety: SafetyTrackResult
    interplay_findings: List[InterplayFinding]
    zone_report: Dict[str, dict]
    zone_total_gap: int
    mandatory_interplay_treatments: List[str]

    @property
    def interplay_gaps(self) -> List[InterplayFinding]:
        return [f for f in self.interplay_findings if f.assurance_gap]

    def separate_verdict_misses(self) -> List[InterplayFinding]:
        """Interplay gaps invisible to both separate assessments.

        A finding is *missed by separate assessment* when (a) the hazard's
        safety function met its required PL standalone, and (b) a
        security-only assessment would have retained the threat — i.e. it
        is currently retained, or its treatment was only forced by the
        interplay sync point (``mandatory_interplay_treatments``).
        """
        missed = []
        security_accepted = {
            t.threat_id
            for t in self.treatment.treatments
            if t.decision.value == "retain"
        } | set(self.mandatory_interplay_treatments)
        for finding in self.interplay_gaps:
            standalone_ok = finding.hazard_id not in self.safety.shortfalls
            cyber_accepted = finding.threat_id in security_accepted
            if standalone_ok and cyber_accepted:
                missed.append(finding)
        return missed


class CombinedAssessment:
    """The methodology orchestrator.

    Parameters
    ----------
    item:
        The item model (with threat scenarios already enumerated, e.g. via
        :func:`repro.risk.stride.enumerate_threats`).
    hazards:
        The hazard catalog.
    designs:
        Safety-function designs by function name.
    zone_model:
        IEC 62443 zone model; SL targets are tightened at sync point B.
    characteristics:
        Forestry characteristics in force (Table I); they modify the TARA.
    links:
        Security→safety propagation edges.
    deployed_measures:
        Already-deployed countermeasures (harden the TARA feasibility).
    acceptance_threshold:
        Risk value at or below which cyber risk is retained.
    """

    def __init__(
        self,
        item: ItemModel,
        hazards: HazardCatalog,
        designs: Dict[str, SafetyFunctionDesign],
        zone_model: ZoneModel,
        *,
        characteristics: Sequence[ForestryCharacteristic] = (),
        links: Optional[Sequence[SecuritySafetyLink]] = None,
        deployed_measures: Sequence[str] = (),
        catalog: Optional[CountermeasureCatalog] = None,
        acceptance_threshold: int = 2,
    ) -> None:
        self.item = item
        self.hazards = hazards
        self.designs = dict(designs)
        self.zone_model = zone_model
        self.characteristics = list(characteristics)
        self.links = links
        self.deployed_measures = list(deployed_measures)
        self.catalog = catalog or CountermeasureCatalog()
        self.acceptance_threshold = acceptance_threshold

    def run(self) -> CombinedResult:
        """Execute the full combined flow."""
        modifiers = combined_modifiers(self.characteristics)

        # -- security track ------------------------------------------------
        tara_engine = Tara(
            self.item,
            catalog=self.catalog,
            deployed_measures=self.deployed_measures,
            feasibility_modifier=modifiers.feasibility,
            impact_modifier=modifiers.impact,
        )
        tara = tara_engine.assess()
        self._last_tara = tara
        treatment = plan_treatment(
            tara, catalog=self.catalog, acceptance_threshold=self.acceptance_threshold
        )

        # -- safety track ---------------------------------------------------
        safety = self._safety_track()

        # -- sync point A: interplay ------------------------------------------
        analysis = InterplayAnalysis(self.hazards, self.designs, links=self.links)
        findings = analysis.evaluate(tara)
        mandatory = self._force_interplay_treatments(treatment, findings)

        # -- sync point B: zone target escalation -------------------------------
        self._escalate_zone_targets(tara)
        zone_report = self.zone_model.assessment()
        total_gap = self.zone_model.total_gap()

        return CombinedResult(
            tara=tara,
            treatment=treatment,
            safety=safety,
            interplay_findings=findings,
            zone_report=zone_report,
            zone_total_gap=total_gap,
            mandatory_interplay_treatments=mandatory,
        )

    # -- internals -------------------------------------------------------------
    def _safety_track(self) -> SafetyTrackResult:
        result = SafetyTrackResult()
        achieved_by_function: Dict[str, Optional[str]] = {}
        for name, design in self.designs.items():
            try:
                achieved_by_function[name] = achieved_pl(design).value
            except PlEvaluationError:
                achieved_by_function[name] = None
        result.achieved = achieved_by_function
        for hazard in self.hazards.hazards:
            required = hazard.required_pl()
            result.required[hazard.hazard_id] = required
            if hazard.safety_function is None:
                continue
            achieved = achieved_by_function.get(hazard.safety_function)
            if achieved is None or not PerformanceLevel.from_letter(
                achieved
            ).satisfies(PerformanceLevel.from_letter(required)):
                result.shortfalls.append(hazard.hazard_id)
        return result

    def _force_interplay_treatments(
        self, treatment: TreatmentPlan, findings: Sequence[InterplayFinding]
    ) -> List[str]:
        """Sync point A: interplay gaps override 'retain' decisions."""
        from repro.risk.treatment import TreatmentDecision

        gap_threats = {f.threat_id for f in findings if f.assurance_gap}
        forced: List[str] = []
        for entry in treatment.treatments:
            if entry.threat_id in gap_threats and entry.decision is TreatmentDecision.RETAIN:
                entry.decision = TreatmentDecision.REDUCE
                entry.rationale = (
                    "forced by interplay: feasible attack breaks safety assurance"
                )
                assessment = self.tara_assessment_for(entry.threat_id)
                if assessment is not None:
                    measures = self.catalog.mitigating(assessment.attack_type)
                    entry.measures = [m.name for m in measures[:2]]
                forced.append(entry.threat_id)
        return forced

    def tara_assessment_for(self, threat_id: str):
        # helper kept simple; the combined result also exposes the TARA
        try:
            return self._last_tara.by_threat(threat_id)  # type: ignore[attr-defined]
        except AttributeError:
            return None

    def _escalate_zone_targets(self, tara: TaraResult) -> None:
        """Sync point B: safety-coupled risk ≥ 4 demands SL-T ≥ 3 on FR3/FR6."""
        hot = [a for a in tara.assessments if a.safety_coupled and a.risk_value >= 4]
        if not hot:
            return
        for zone in self.zone_model.zones.values():
            if not zone.safety_related:
                continue
            for fr in ("FR3", "FR6"):
                if int(zone.sl_target[fr]) < int(SecurityLevel.SL3):
                    zone.sl_target[fr] = SecurityLevel.SL3
