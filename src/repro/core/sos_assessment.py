"""SoS-level assessment: per-system results composed with SoS structure.

Section IV-E: "Ensuring the security of individual elements is insufficient;
rather, security must be assured for the integrated system as a whole."  The
SoS assessment therefore takes:

* per-constituent TARA results (security of the elements),
* the SoS composition (dependency structure),
* the independence indices (Waller & Craddock dimensions),
* optionally a run's emergent interactions,

and produces an integrated risk picture: compromise-reach amplification
(a threat's effective impact grows with the systems reachable from its
target), SPOF findings, and an SoS risk uplift the per-system view misses —
the quantity benchmark E-S4E reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.interplay import InterplayFinding
from repro.risk.impact import ImpactRating
from repro.risk.matrix import risk_value
from repro.risk.model import ItemModel
from repro.risk.tara import TaraResult, ThreatAssessment
from repro.sos.composition import SystemOfSystems
from repro.sos.emergence import EmergentInteraction
from repro.sos.independence import IndependenceReport, independence_report


@dataclass(frozen=True)
class SosThreatView:
    """One threat as seen at SoS level."""

    threat_id: str
    system: str
    standalone_risk: int
    reach: int                # systems reachable from the compromised one
    reach_amplified_risk: int # risk with reach-adjusted impact
    crosses_operators: bool


@dataclass
class SosAssessmentResult:
    """The integrated SoS assessment output."""

    independence: IndependenceReport
    threat_views: List[SosThreatView] = field(default_factory=list)
    spofs: List[str] = field(default_factory=list)
    emergent_interactions: int = 0
    emergent_safety_interactions: int = 0

    def mean_standalone_risk(self) -> float:
        if not self.threat_views:
            return 0.0
        return sum(v.standalone_risk for v in self.threat_views) / len(self.threat_views)

    def mean_sos_risk(self) -> float:
        if not self.threat_views:
            return 0.0
        return sum(v.reach_amplified_risk for v in self.threat_views) / len(
            self.threat_views
        )

    def sos_uplift(self) -> float:
        """Relative risk increase the per-system view misses."""
        base = self.mean_standalone_risk()
        if base == 0.0:
            return 0.0
        return (self.mean_sos_risk() - base) / base

    def amplified_threats(self) -> List[SosThreatView]:
        return [
            v for v in self.threat_views if v.reach_amplified_risk > v.standalone_risk
        ]


class SosAssessment:
    """Compose per-system TARA output with the SoS structure.

    Parameters
    ----------
    sos:
        The system-of-systems composition.
    item:
        The item model (asset → system mapping).
    """

    def __init__(self, sos: SystemOfSystems, item: ItemModel) -> None:
        self.sos = sos
        self.item = item

    def _system_of_threat(self, tara: TaraResult, threat_id: str) -> str:
        assessment = tara.by_threat(threat_id)
        damage = self.item.damage_scenario(assessment.damage_scenario_id)
        return self.item.asset(damage.asset_id).system

    def assess(
        self,
        tara: TaraResult,
        *,
        emergent: Sequence[EmergentInteraction] = (),
    ) -> SosAssessmentResult:
        independence = independence_report(self.sos)
        result = SosAssessmentResult(
            independence=independence,
            spofs=self.sos.single_points_of_failure(),
            emergent_interactions=len(emergent),
            emergent_safety_interactions=sum(
                1 for e in emergent if e.safety_relevant
            ),
        )
        n_systems = max(len(self.sos.systems), 1)
        for assessment in tara.assessments:
            system = self._system_of_threat(tara, assessment.threat_id)
            reach = len(self.sos.compromise_reach(system))
            # reach-adjusted impact: compromise of a hub raises effective
            # impact one step when more than half the SoS is downstream
            impact = assessment.impact
            if reach / n_systems > 0.5 and impact < ImpactRating.SEVERE:
                impact = ImpactRating(int(impact) + 1)
            amplified = risk_value(impact, assessment.feasibility)
            crosses = any(
                i.provider == system or i.consumer == system
                for i in self.sos.cross_operator_interfaces()
            )
            result.threat_views.append(
                SosThreatView(
                    threat_id=assessment.threat_id,
                    system=system,
                    standalone_risk=assessment.risk_value,
                    reach=reach,
                    reach_amplified_risk=max(amplified, assessment.risk_value),
                    crosses_operators=crosses,
                )
            )
        return result
