"""E-F1 — Figure 1: the partially-autonomous worksite under nominal operation.

Paper artefact: Figure 1 illustrates the envisioned worksite (autonomous
forwarder, observation drone, manually-operated harvester, workers).
Reproduction: run the composed worksite for 30 simulated minutes across
seeds and report productivity and safety.  Shape expectation: productive
log transport, zero ground-truth safety violations, high radio delivery,
drone availability high but below 1 (battery cycles).
"""

from conftest import run_once

from repro.analysis.stats import mean, summarize
from repro.analysis.tables import Table
from repro.scenarios.worksite import ScenarioConfig, build_worksite

SEEDS = (11, 12, 13)
HORIZON_S = 1800.0


def _run_seed(seed):
    scenario = build_worksite(ScenarioConfig(seed=seed))
    scenario.run(HORIZON_S)
    drone_avail = (
        scenario.drone.airborne_time / HORIZON_S if scenario.drone else 0.0
    )
    safety = scenario.safety_monitor.summary()
    return {
        "seed": seed,
        "delivered_m3": scenario.mission.delivered_m3,
        "cycles": scenario.mission.cycles_completed,
        "distance_m": scenario.forwarder.distance_travelled,
        "delivery_ratio": scenario.medium.delivery_ratio,
        "drone_availability": drone_avail,
        "violations": safety["violations"],
        "near_misses": safety["near_misses"],
        "safe_stops": scenario.forwarder.safe_stops,
        "persons_confirmed": len(scenario.safety_function.first_confirm_times),
    }


def _run_all():
    return [_run_seed(seed) for seed in SEEDS]


def test_fig1_worksite_nominal(benchmark):
    results = run_once(benchmark, _run_all)

    table = Table(
        ["seed", "delivered m3", "cycles", "driven m", "delivery ratio",
         "drone avail", "violations", "near misses", "safe stops"],
        title="E-F1  Figure 1 worksite, nominal 30 min (per seed)",
    )
    for r in results:
        table.add_row(
            r["seed"], r["delivered_m3"], r["cycles"], round(r["distance_m"]),
            round(r["delivery_ratio"], 3), round(r["drone_availability"], 2),
            r["violations"], r["near_misses"], r["safe_stops"],
        )
    table.print()
    summary = summarize([r["delivered_m3"] for r in results])
    print(f"delivered m3: mean {summary.mean:.1f} "
          f"[{summary.ci_low:.1f}, {summary.ci_high:.1f}] (bootstrap 95% CI)")

    # shape: productive, safe, connected
    assert all(r["delivered_m3"] > 0 for r in results)
    assert all(r["violations"] == 0 for r in results)
    assert mean([r["delivery_ratio"] for r in results]) > 0.9
    assert all(r["persons_confirmed"] >= 1 for r in results)
