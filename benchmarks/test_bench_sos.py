"""E-S4E — SoS integration changes the risk posture (Waller & Craddock).

Paper artefact: Section IV-E summarises the five SoS cybersecurity problem
dimensions.  Reproduction: per-system TARA vs the SoS-level assessment with
reach amplification, the structural independence indices, SPOF analysis,
and emergent cross-system interactions mined from a live attacked run.
Shape expectation: SoS risk ≥ per-system risk with strictly amplified
threats on hub systems; the worksite's independence indices are materially
non-zero on every dimension; the combined attack campaign produces
cross-system cascades a per-system view cannot attribute.
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.core.sos_assessment import SosAssessment
from repro.risk.tara import Tara
from repro.scenarios.campaigns import build_campaign
from repro.scenarios.worksite import (
    ScenarioConfig,
    build_worksite,
    worksite_item_model,
)
from repro.sos.composition import worksite_sos
from repro.sos.emergence import EmergenceDetector

HORIZON_S = 1800.0


def _run_sos():
    item = worksite_item_model()
    sos = worksite_sos()
    tara = Tara(item).assess()

    # live run under the staged multi-vector campaign for emergence mining
    scenario = build_worksite(ScenarioConfig(seed=51))
    campaign = build_campaign("combined", scenario, start=300.0)
    campaign.arm()
    scenario.run(HORIZON_S)
    detector = EmergenceDetector(min_sources=3, density_threshold=2.5)
    emergent = detector.detect(scenario.log, HORIZON_S)

    assessment = SosAssessment(sos, item).assess(tara, emergent=emergent)
    return sos, tara, assessment, emergent


def test_sos_assessment(benchmark):
    sos, tara, assessment, emergent = run_once(benchmark, _run_sos)
    independence = assessment.independence

    dims = Table(
        ["Waller & Craddock dimension", "index [0,1]"],
        title="E-S4E  SoS structural indices of the worksite",
    )
    dims.add_row("management independence", round(independence.management_independence, 2))
    dims.add_row("operational independence", round(independence.operational_independence, 2))
    dims.add_row("evolutionary divergence", round(independence.evolutionary_divergence, 2))
    dims.add_row("geographic distribution", round(independence.geographic_distribution, 2))
    dims.add_row("policy heterogeneity", round(independence.policy_heterogeneity, 2))
    dims.add_row("(aggregate complexity)", round(independence.complexity_index(), 2))
    dims.print()

    risk = Table(
        ["view", "mean risk", "max risk", "amplified threats"],
        title="E-S4E  per-system vs SoS-level risk",
    )
    risk.add_row("per-system (standalone TARA)",
                 round(assessment.mean_standalone_risk(), 2),
                 max(v.standalone_risk for v in assessment.threat_views), "-")
    risk.add_row("SoS (reach-amplified)",
                 round(assessment.mean_sos_risk(), 2),
                 max(v.reach_amplified_risk for v in assessment.threat_views),
                 len(assessment.amplified_threats()))
    risk.print()

    print(f"SoS uplift: {assessment.sos_uplift():.1%}")
    print(f"single points of failure (safety chains): {assessment.spofs}")
    print(f"emergent cross-system interactions during combined campaign: "
          f"{assessment.emergent_interactions} "
          f"({assessment.emergent_safety_interactions} safety-relevant)")

    # shape checks
    assert assessment.mean_sos_risk() >= assessment.mean_standalone_risk()
    assert assessment.amplified_threats()
    assert {"drone", "control_station"} <= set(assessment.spofs)
    for value in (independence.management_independence,
                  independence.operational_independence,
                  independence.geographic_distribution):
        assert value > 0.3
