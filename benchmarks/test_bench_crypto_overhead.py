"""E-A2 — ablation: the secure channel's overhead is affordable.

Paper context: the countermeasures the survey recommends (Ren et al.:
"applying cryptography") must run on embedded machine controllers over a
constrained radio.  Reproduction: measure (a) record-layer throughput per
security profile, (b) handshake cost per DH group size, (c) end-to-end
message delivery on the live worksite per profile.  Shape expectation:
INTEGRITY and AEAD cost single-digit microseconds per small record and do
not measurably reduce worksite delivery; the 2048-bit handshake costs tens
of milliseconds but happens once per pair.
"""

import time

from conftest import run_once

from repro.analysis.tables import Table
from repro.comms.crypto.certificates import CertificateAuthority
from repro.comms.crypto.keys import KeyPair
from repro.comms.crypto.numbers import MODP_2048, TEST_GROUP
from repro.comms.crypto.secure_channel import (
    Identity,
    SecureChannel,
    SecurityProfile,
)
from repro.scenarios.worksite import ScenarioConfig, build_worksite

PAYLOAD = b"x" * 256
N_RECORDS = 2000


def _channel_pair(profile):
    ca = CertificateAuthority("bench-ca", TEST_GROUP)
    identities = []
    for name in ("a", "b"):
        keypair = KeyPair.generate(TEST_GROUP, seed=name.encode())
        cert = ca.issue(name, keypair.public)
        identities.append(Identity(name, keypair, [cert], ca.root_certificate, ca))
    chan_a, chan_b, _ = SecureChannel.establish_pair(
        identities[0], identities[1], profile=profile,
    )
    return chan_a, chan_b


def _record_throughput():
    rows = []
    for profile in SecurityProfile:
        chan_a, chan_b = _channel_pair(profile)
        start = time.perf_counter()
        for _ in range(N_RECORDS):
            record = chan_a.seal(PAYLOAD)
            chan_b.open(record)
        elapsed = time.perf_counter() - start
        per_record_us = elapsed / N_RECORDS * 1e6
        overhead_bytes = len(chan_a.seal(PAYLOAD).body) - len(PAYLOAD)
        rows.append((profile.value, round(per_record_us, 1),
                     round(N_RECORDS / elapsed), overhead_bytes))
    return rows


def _handshake_cost():
    rows = []
    for group in (TEST_GROUP, MODP_2048):
        ca = CertificateAuthority(f"ca-{group.name}", group)
        identities = []
        for name in ("a", "b"):
            keypair = KeyPair.generate(group, seed=name.encode())
            cert = ca.issue(name, keypair.public)
            identities.append(Identity(name, keypair, [cert],
                                       ca.root_certificate, ca))
        start = time.perf_counter()
        _, __, stats = SecureChannel.establish_pair(identities[0], identities[1])
        elapsed_ms = (time.perf_counter() - start) * 1e3
        rows.append((group.name, group.p.bit_length(), round(elapsed_ms, 1),
                     stats.exponentiations, stats.bytes_exchanged))
    return rows


def _worksite_delivery():
    rows = []
    for profile in SecurityProfile:
        scenario = build_worksite(ScenarioConfig(seed=61, profile=profile))
        scenario.run(900.0)
        rows.append((profile.value,
                     round(scenario.medium.delivery_ratio, 4),
                     scenario.mission.delivered_m3,
                     scenario.network.nodes["forwarder"].messages_received))
    return rows


def _run_all():
    return _record_throughput(), _handshake_cost(), _worksite_delivery()


def test_crypto_overhead(benchmark):
    records, handshakes, worksite = run_once(benchmark, _run_all)

    t1 = Table(["profile", "us / 256B record", "records / s", "wire overhead B"],
               title="E-A2  record-layer cost per security profile")
    for row in records:
        t1.add_row(*row)
    t1.print()

    t2 = Table(["group", "modulus bits", "handshake ms", "exponentiations",
                "bytes exchanged"],
               title="E-A2  handshake cost per DH group")
    for row in handshakes:
        t2.add_row(*row)
    t2.print()

    t3 = Table(["profile", "delivery ratio", "delivered m3", "messages received"],
               title="E-A2  end-to-end worksite effect of the profile (15 min)")
    for row in worksite:
        t3.add_row(*row)
    t3.print()

    by_profile = {row[0]: row for row in records}
    # protection costs more than plaintext but stays in the tens of us
    assert by_profile["plaintext"][1] <= by_profile["aead"][1]
    assert by_profile["aead"][1] < 500.0
    # AEAD wire overhead is exactly the 32-byte tag
    assert by_profile["aead"][3] == 32
    # the secure profile does not tank worksite delivery
    deliveries = {row[0]: row[1] for row in worksite}
    assert deliveries["aead"] > 0.9 * deliveries["plaintext"]
