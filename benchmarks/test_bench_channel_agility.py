"""E-A5 — ablation: frequency agility vs jamming classes.

Paper context: Gaber et al.'s channel-utilisation and jamming concerns.
Reproduction: point-to-point worksite-grade link under narrowband and
broadband jamming, with the agility manager on and off.  Shape expectation:
agility restores a narrowband-jammed link within one dwell interval and is
useless against a broadband jammer — matching the countermeasure catalog's
modest ``feasibility_increase`` for ``channel_agility``.
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.attacks.jamming import JammingAttack
from repro.comms.link import LinkEndpoint
from repro.comms.medium import WirelessMedium
from repro.defense.channel_agility import ChannelAgilityManager
from repro.sim.engine import Simulator
from repro.sim.events import EventLog
from repro.sim.geometry import Vec2
from repro.sim.rng import RngStreams

HORIZON_S = 300.0
JAM_START, JAM_DURATION = 60.0, 180.0


def _run_cell(jam_channel, agility_enabled, seed=5):
    sim = Simulator()
    log = EventLog()
    streams = RngStreams(seed)
    medium = WirelessMedium(sim, log, streams)
    a = LinkEndpoint("a", lambda: Vec2(0, 0), medium, sim, log)
    b = LinkEndpoint("b", lambda: Vec2(60, 0), medium, sim, log)
    received = []
    b.on_receive(lambda frame, raw: received.append(sim.now))
    manager = None
    if agility_enabled:
        manager = ChannelAgilityManager(
            medium, [a, b], sim, log, loss_threshold=2.0, min_dwell_s=8.0,
        )
    sim.every(0.2, lambda: a.send("b", b"payload", reliable=False))
    attack = JammingAttack(
        "jam", sim, log, medium, Vec2(30, 0), power_dbm=33.0,
        channel=jam_channel,
    )
    attack.schedule(JAM_START, JAM_DURATION)
    sim.run_until(HORIZON_S)
    during = [t for t in received if JAM_START <= t <= JAM_START + JAM_DURATION]
    offered = JAM_DURATION / 0.2
    return {
        "jam": "narrowband (ch 1)" if jam_channel == 1 else "broadband",
        "agility": agility_enabled,
        "goodput_during_jam": len(during) / offered,
        "hops": len(manager.hops) if manager else 0,
        "final_channel": a.radio.channel,
    }


def _run_matrix():
    cells = []
    for jam_channel in (1, None):
        for agility in (False, True):
            cells.append(_run_cell(jam_channel, agility))
    return cells


def test_channel_agility(benchmark):
    cells = run_once(benchmark, _run_matrix)

    table = Table(
        ["jammer", "agility", "goodput during jam", "hops", "final channel"],
        title="E-A5  frequency agility vs jamming class",
    )
    for cell in cells:
        table.add_row(cell["jam"], cell["agility"],
                      round(cell["goodput_during_jam"], 3), cell["hops"],
                      cell["final_channel"])
    table.print()

    by_key = {(c["jam"], c["agility"]): c for c in cells}
    narrow_off = by_key[("narrowband (ch 1)", False)]["goodput_during_jam"]
    narrow_on = by_key[("narrowband (ch 1)", True)]["goodput_during_jam"]
    broad_on = by_key[("broadband", True)]["goodput_during_jam"]
    # agility rescues the narrowband case decisively
    assert narrow_off < 0.2
    assert narrow_on > 0.7
    assert by_key[("narrowband (ch 1)", True)]["hops"] >= 1
    # and cannot rescue the broadband case
    assert broad_on < 0.2
