"""E-S5 — the security assurance case: coverage is measurable and evidence-
driven (Section V).

Paper artefact: Section V argues for SACs (GSN/CAE) built with an
asset-driven approach, extended with safety and regulatory arguments.
Reproduction: build the worksite SAC from the combined assessment at three
evidence stages (no evidence → analysis evidence → analysis + experiment
evidence + compliance mapping) and report the case metrics.  Shape
expectation: the structure is well-formed at every stage; goal/evidence/
compliance coverage rise monotonically to completeness; stale evidence
degrades coverage again (continuous assurance).
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.assurance.compliance import ComplianceMapping
from repro.assurance.evidence import Evidence, EvidenceRegistry
from repro.assurance.sac import SacBuilder
from repro.core.methodology import CombinedAssessment
from repro.safety.hazards import HazardCatalog
from repro.scenarios.worksite import worksite_item_model
from repro.sos.zones import worksite_zone_model


def _build_stage(item, result, stage):
    registry = EvidenceRegistry()
    compliance = ComplianceMapping()
    evidence_by_threat = {}
    interplay_evidence = None
    if stage >= 1:
        registry.add(Evidence("ev-tara", "analysis", "worksite TARA", "E-T1"))
        registry.add(Evidence("ev-interplay", "analysis",
                              "interplay analysis", "E-S4B"))
        compliance.record_work_product("tara", "ev-tara")
        compliance.record_work_product("treatment", "ev-tara")
        compliance.record_work_product("interplay", "ev-interplay")
        evidence_by_threat = {
            a.threat_id: ["ev-tara"] for a in result.tara.assessments
        }
        interplay_evidence = "ev-interplay"
    if stage >= 2:
        registry.add(Evidence(
            "ev-sim", "simulation", "E-F1/E-F2/E-S4C experiment runs", "harness",
            valid_for_s=10_000.0,
        ))
        for wp in ("zone_assessment", "sotif", "pl_evaluation",
                   "experiment", "sac"):
            compliance.record_work_product(wp, "ev-sim")
        for keys in evidence_by_threat.values():
            keys.append("ev-sim")
    builder = SacBuilder(item, registry, compliance)
    graph = builder.build(
        result,
        evidence_by_threat=evidence_by_threat,
        interplay_evidence=interplay_evidence,
    )
    return builder, graph


def _run_stages(designs):
    item = worksite_item_model()
    result = CombinedAssessment(
        item, HazardCatalog(), designs, worksite_zone_model(),
    ).run()
    rows = []
    final = None
    for stage, label in enumerate(
        ("structure only", "+ analysis evidence", "+ experiments + compliance")
    ):
        builder, graph = _build_stage(item, result, stage)
        report = builder.report(graph, now=0.0)
        rows.append((label, report.elements, report.goals, report.solutions,
                     round(report.goal_coverage, 2),
                     round(report.evidence_coverage, 2),
                     round(report.compliance_coverage, 2),
                     report.undeveloped_goals,
                     len(report.structural_findings)))
        final = (builder, graph)
    # continuous assurance: evidence grows stale
    builder, graph = final
    stale_report = builder.report(graph, now=50_000.0)
    rows.append(("... after evidence expiry", stale_report.elements,
                 stale_report.goals, stale_report.solutions,
                 round(stale_report.goal_coverage, 2),
                 round(stale_report.evidence_coverage, 2),
                 round(stale_report.compliance_coverage, 2),
                 stale_report.undeveloped_goals,
                 len(stale_report.structural_findings)))
    return rows


def test_assurance_case_coverage(benchmark, worksite_designs):
    rows = run_once(benchmark, lambda: _run_stages(worksite_designs))

    table = Table(
        ["evidence stage", "elements", "goals", "solutions", "goal cov",
         "evidence cov", "compliance cov", "undeveloped", "structural findings"],
        title="E-S5  asset-driven SAC over the combined assessment",
    )
    for row in rows:
        table.add_row(*row)
    table.print()

    # shape: monotone coverage growth, well-formed throughout, decay at the end
    assert all(row[8] == 0 for row in rows)  # no structural findings ever
    goal_cov = [row[4] for row in rows[:3]]
    assert goal_cov == sorted(goal_cov)
    assert rows[2][5] == 1.0 and rows[2][6] == 1.0
    assert rows[2][7] == 0  # fully developed
    assert rows[3][5] < rows[2][5]  # staleness bites
