"""E-S4B — the safety-cybersecurity interplay, measured live and assessed.

Paper artefact: Section III-B — "cybersecurity threats, e.g., attacks on
communication, can potentially lead to unsafe behaviour"; the methodology
must treat the interplay that separate assessments miss.

Two parts:

1. **Live interplay** — run the worksite under attack campaigns with the
   defence suite on vs off; measure productivity and safety-relevant
   degradation (detection losses, forced stops/slowdowns).
2. **Assessment interplay** — the combined methodology over the same item:
   interplay findings (feasible attack breaks a safety function's PL) and
   how many of them both separate assessments miss.

Shape expectation: attacks degrade the undefended worksite markedly and the
defended one mildly; the combined assessment finds interplay gaps and, at a
conventional acceptance threshold, at least some are invisible separately.
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.comms.crypto.secure_channel import SecurityProfile
from repro.core.methodology import CombinedAssessment
from repro.safety.hazards import HazardCatalog
from repro.safety.iso13849 import Category, SafetyFunctionDesign
from repro.scenarios.campaigns import build_campaign
from repro.scenarios.worksite import (
    ScenarioConfig,
    build_worksite,
    worksite_item_model,
)
from repro.sos.zones import worksite_zone_model

HORIZON_S = 1500.0
ATTACKS = ("rf_jamming", "gnss_spoofing", "wifi_deauth", "message_injection")


def _config(defended: bool, seed: int) -> ScenarioConfig:
    if defended:
        return ScenarioConfig(seed=seed)
    return ScenarioConfig(
        seed=seed,
        profile=SecurityProfile.PLAINTEXT,
        protected_management=False,
        defenses_enabled=False,
        access_control_enabled=False,
    )


def _run_cell(attack: str, defended: bool, seed: int = 31) -> dict:
    scenario = build_worksite(_config(defended, seed))
    campaign = build_campaign(attack, scenario, start=300.0, duration=600.0)
    campaign.arm()
    scenario.run(HORIZON_S)
    safety = scenario.safety_monitor.summary()
    forged_executed = 0
    if attack == "message_injection":
        forged_executed = scenario.command_channel.executed
    return {
        "attack": attack,
        "defended": defended,
        "delivered_m3": scenario.mission.delivered_m3,
        "delivery_ratio": round(scenario.medium.delivery_ratio, 3),
        "violations": safety["violations"],
        "near_misses": safety["near_misses"],
        "rejected_records": scenario.network.nodes["forwarder"].records_rejected,
        "forged_commands_executed": forged_executed,
        "alerts": len(scenario.ids_manager.alerts) if scenario.ids_manager else 0,
    }


def _run_live():
    benign = {
        defended: _run_cell_benign(defended) for defended in (True, False)
    }
    cells = []
    for attack in ATTACKS:
        for defended in (True, False):
            cells.append(_run_cell(attack, defended))
    return benign, cells


def _run_cell_benign(defended: bool, seed: int = 31) -> dict:
    scenario = build_worksite(_config(defended, seed))
    scenario.run(HORIZON_S)
    return {
        "delivered_m3": scenario.mission.delivered_m3,
        "delivery_ratio": round(scenario.medium.delivery_ratio, 3),
    }


def _run_assessment(designs):
    # the deployed-measures configuration: crypto and monitors in place, so
    # several attack feasibilities drop into the security-acceptance band —
    # exactly where the separate-assessment blind spot lives
    item = worksite_item_model()
    result = CombinedAssessment(
        item, HazardCatalog(), designs, worksite_zone_model(),
        deployed_measures=["secure_channel_aead", "pki_mutual_auth",
                           "gnss_plausibility", "camera_redundancy"],
        acceptance_threshold=3,
    ).run()
    return result


def test_interplay_live_and_assessed(benchmark, worksite_designs):
    (benign, cells) = run_once(benchmark, _run_live)

    table = Table(
        ["attack", "defences", "delivered m3", "delivery ratio", "violations",
         "near misses", "records rejected", "forged cmds executed", "alerts"],
        title=(
            "E-S4B  Attacks on comms become safety/productivity effects "
            f"(benign delivered: defended {benign[True]['delivered_m3']}, "
            f"undefended {benign[False]['delivered_m3']} m3)"
        ),
    )
    for cell in cells:
        table.add_row(
            cell["attack"], "on" if cell["defended"] else "off",
            cell["delivered_m3"], cell["delivery_ratio"], cell["violations"],
            cell["near_misses"], cell["rejected_records"],
            cell["forged_commands_executed"], cell["alerts"],
        )
    table.print()

    # assessment part (fast; outside the timed section for clarity)
    result = _run_assessment(worksite_designs)
    gaps = result.interplay_gaps
    misses = result.separate_verdict_misses()
    print(f"combined assessment: {len(result.interplay_findings)} interplay "
          f"findings, {len(gaps)} assurance gaps, "
          f"{len(misses)} missed by BOTH separate assessments "
          f"(threats: {sorted({m.threat_id for m in misses})})")

    by_key = {(c["attack"], c["defended"]): c for c in cells}
    # forged commands only execute without defences
    assert by_key[("message_injection", False)]["forged_commands_executed"] > 0
    assert by_key[("message_injection", True)]["forged_commands_executed"] == 0
    # the defended worksite detects every attack type it has coverage for
    assert all(by_key[(a, True)]["alerts"] > 0 for a in ATTACKS)
    # the assessment finds interplay gaps, and some are invisible to both
    # separate assessments — the paper's core argument
    assert gaps
    assert misses
