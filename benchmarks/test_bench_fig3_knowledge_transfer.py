"""E-F3 — Figure 3: the knowledge-transfer pipeline yields forestry coverage.

Paper artefact: Figure 3 sketches the survey method — forestry robotics has
no cybersecurity literature, so knowledge transfers from similar domains
(mining AHS, automotive AV, generic ICS).  Reproduction: map each source
catalog onto the worksite's enumerated threat space and report per-domain
and combined coverage.  Shape expectation: no single domain covers the
forestry threat space; mining and automotive overlap on GNSS but split
radio vs perception; only the combination reaches full coverage; context
filtering rejects urban/dense-fleet entries.
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.core.knowledge_transfer import (
    KnowledgeTransfer,
    automotive_catalog,
    it_security_catalog,
    mining_catalog,
)
from repro.scenarios.worksite import worksite_item_model


def _run_transfer():
    item = worksite_item_model()
    catalogs = {
        "mining (Gaber et al.)": [mining_catalog()],
        "automotive (Ren/Petit/Kyrkou)": [automotive_catalog()],
        "ICS/IT (IEC 62443)": [it_security_catalog()],
    }
    rows = []
    for label, catalog in catalogs.items():
        report = KnowledgeTransfer(catalog).transfer(item)
        domain = catalog[0].domain
        rows.append((
            label,
            len(catalog[0].entries),
            len(report.rejected[domain]),
            len(report.covered),
            round(report.coverage(), 2),
        ))
    combined = KnowledgeTransfer().transfer(item)
    rows.append((
        "ALL domains combined",
        sum(len(c[0].entries) for c in catalogs.values()),
        sum(len(v) for v in combined.rejected.values()),
        len(combined.covered),
        round(combined.coverage(), 2),
    ))
    return combined, rows


def test_fig3_knowledge_transfer(benchmark):
    combined, rows = run_once(benchmark, _run_transfer)
    target_count = len(combined.target_attack_types)

    table = Table(
        ["source domain", "catalog entries", "context-rejected",
         f"forestry threats covered (of {target_count})", "coverage"],
        title="E-F3  Figure 3 knowledge transfer into the forestry threat space",
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    print("mitigation suggestions transferred:",
          {k: sorted(v) for k, v in sorted(combined.mitigation_suggestions.items())})

    # shape: single domains incomplete, combination complete
    singles = rows[:-1]
    assert all(row[4] < 1.0 for row in singles)
    assert rows[-1][4] == 1.0
    # context filtering did real work
    assert rows[-1][2] > 0
