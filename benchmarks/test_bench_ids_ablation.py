"""E-A3 — ablation: IDS families trade coverage, latency and false alarms.

Paper context: Table I's "Remote and Isolated Locations" row notes that
limited connectivity alters reactive security strategies — on-site IDS
choice matters because no SOC backstops it.  Reproduction: run the same
mixed benign+attack timeline against each IDS family alone and the full
ensemble, scoring coverage, mean detection latency and false alarms.  Shape
expectation: signature catches the attacks its rules know with near-zero
false alarms; anomaly adds coverage on channel-shifting attacks at a
false-alarm cost; spec is precise on protocol attacks and blind to RF; the
ensemble dominates coverage.
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.comms.crypto.secure_channel import SecurityProfile
from repro.defense.ids.anomaly import AnomalyIds
from repro.defense.ids.manager import IdsManager
from repro.defense.ids.signature import SignatureIds
from repro.defense.ids.spec import ProtocolSpec, SpecificationIds
from repro.scenarios.campaigns import build_campaign
from repro.scenarios.worksite import ScenarioConfig, build_worksite

HORIZON_S = 2400.0
CAMPAIGN_PLAN = (
    ("rf_jamming", 400.0, 200.0),
    ("message_injection", 800.0, 200.0),
    ("wifi_deauth", 1200.0, 200.0),
    ("gnss_jamming", 1600.0, 200.0),
    ("message_replay", 2000.0, 200.0),
)


def _build_family(name, scenario):
    node = scenario.network.nodes["forwarder"]
    medium = scenario.medium
    if name == "signature":
        return [SignatureIds("sig", scenario.sim, scenario.log)]
    if name == "anomaly":
        def rate(getter):
            last = {"v": getter()}

            def sample():
                current = getter()
                delta = current - last["v"]
                last["v"] = current
                return delta

            return sample

        return [AnomalyIds(
            "anom", scenario.sim, scenario.log,
            features={
                "frame_loss_rate": rate(lambda: float(medium.frames_lost)),
                "reject_rate": rate(lambda: float(node.records_rejected)),
                "deauth_rate": rate(lambda: float(node.endpoint.deauths_received)),
            },
        )]
    if name == "spec":
        return [SpecificationIds(
            "spec", scenario.sim, scenario.log, node,
            ProtocolSpec(command_senders={"control"}),
        )]
    return (_build_family("signature", scenario)
            + _build_family("anomaly", scenario)
            + _build_family("spec", scenario))


def _run_family(name):
    # the ablation compares detector families on an *unprotected* network:
    # with AEAD links the channel rejects app-layer attacks before any IDS
    # sees them, which hides the family differences under study
    scenario = build_worksite(ScenarioConfig(
        seed=71,
        profile=SecurityProfile.PLAINTEXT,
        protected_management=False,
        defenses_enabled=False,
        access_control_enabled=False,
    ))
    manager = IdsManager()
    for detector in _build_family(name, scenario):
        manager.attach(detector)
    windows = []
    for attack, start, duration in CAMPAIGN_PLAN:
        campaign = build_campaign(attack, scenario, start=start,
                                  duration=duration)
        campaign.arm()
        windows.extend(campaign.ground_truth_windows())
    scenario.run(HORIZON_S)
    score = manager.score(windows, horizon_s=HORIZON_S)
    return {
        "family": name,
        "coverage": score.coverage,
        "detected": score.attacks_detected,
        "latency_s": score.mean_latency_s,
        "false_alarms": score.false_alarms,
        "fa_per_h": score.false_alarm_rate_per_h,
        "alerts": len(manager.alerts),
    }


def _run_ablation():
    return [_run_family(name)
            for name in ("signature", "anomaly", "spec", "ensemble")]


def test_ids_ablation(benchmark):
    rows = run_once(benchmark, _run_ablation)

    table = Table(
        ["IDS family", f"coverage (of {len(CAMPAIGN_PLAN)})", "mean latency s",
         "false alarms", "FA / h", "total alerts"],
        title="E-A3  IDS family ablation over a mixed attack timeline (40 min)",
    )
    for r in rows:
        table.add_row(r["family"], f"{r['detected']} ({r['coverage']:.0%})",
                      r["latency_s"], r["false_alarms"],
                      round(r["fa_per_h"], 1), r["alerts"])
    table.print()

    by_family = {r["family"]: r for r in rows}
    # the ensemble dominates every single family's coverage
    for family in ("signature", "anomaly", "spec"):
        assert by_family["ensemble"]["detected"] >= by_family[family]["detected"]
    # spec IDS alone is blind to pure-RF attacks: below full coverage
    assert by_family["spec"]["coverage"] < 1.0
    # ensemble catches most of the timeline
    assert by_family["ensemble"]["coverage"] >= 0.8
