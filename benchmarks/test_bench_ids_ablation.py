"""E-A3 — ablation: IDS families trade coverage, latency and false alarms.

Paper context: Table I's "Remote and Isolated Locations" row notes that
limited connectivity alters reactive security strategies — on-site IDS
choice matters because no SOC backstops it.  Reproduction: run the same
mixed benign+attack timeline against each IDS family alone and the full
ensemble, scoring coverage, mean detection latency and false alarms.  Shape
expectation: signature catches the attacks its rules know with near-zero
false alarms; anomaly adds coverage on channel-shifting attacks at a
false-alarm cost; spec is precise on protocol attacks and blind to RF; the
ensemble dominates coverage.

The four family cells are one sweep grid driven through
:mod:`repro.runner` — each cell is a :class:`RunSpec` with the shared
attack timeline as its plan and the family under study attached on top of
an undefended scenario, fanned across worker processes.
"""

import os

from conftest import run_once

from repro.analysis.tables import Table
from repro.runner import RunSpec, run_sweep

HORIZON_S = 2400.0
CAMPAIGN_PLAN = (
    ("rf_jamming", 400.0, 200.0),
    ("message_injection", 800.0, 200.0),
    ("wifi_deauth", 1200.0, 200.0),
    ("gnss_jamming", 1600.0, 200.0),
    ("message_replay", 2000.0, 200.0),
)
FAMILIES = ("signature", "anomaly", "spec", "ensemble")

#: worker processes for benchmark sweeps (1 keeps CI boxes predictable)
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "2"))


def _family_specs():
    # the ablation compares detector families on an *unprotected* network:
    # with AEAD links the channel rejects app-layer attacks before any IDS
    # sees them, which hides the family differences under study
    return [
        RunSpec(
            campaign=f"ablation/{family}",
            seed=71,
            horizon_s=HORIZON_S,
            profile="undefended",
            plan=CAMPAIGN_PLAN,
            ids_family=family,
        )
        for family in FAMILIES
    ]


def _run_ablation():
    report = run_sweep(_family_specs(), jobs=BENCH_JOBS)
    assert report.failed == 0, [r["error"] for r in report.failures()]
    rows = []
    for record in report.records:
        detection = record["result"]["detection"]
        rows.append({
            "family": record["spec"]["ids_family"],
            "coverage": detection["coverage"],
            "detected": detection["attacks_detected"],
            "latency_s": detection["mean_latency_s"],
            "false_alarms": detection["false_alarms"],
            "fa_per_h": detection["false_alarm_rate_per_h"],
            "alerts": detection["alerts"],
        })
    return rows


def test_ids_ablation(benchmark):
    rows = run_once(benchmark, _run_ablation)

    table = Table(
        ["IDS family", f"coverage (of {len(CAMPAIGN_PLAN)})", "mean latency s",
         "false alarms", "FA / h", "total alerts"],
        title="E-A3  IDS family ablation over a mixed attack timeline (40 min)",
    )
    for r in rows:
        table.add_row(r["family"], f"{r['detected']} ({r['coverage']:.0%})",
                      r["latency_s"], r["false_alarms"],
                      round(r["fa_per_h"], 1), r["alerts"])
    table.print()

    by_family = {r["family"]: r for r in rows}
    # the ensemble dominates every single family's coverage
    for family in ("signature", "anomaly", "spec"):
        assert by_family["ensemble"]["detected"] >= by_family[family]["detected"]
    # spec IDS alone is blind to pure-RF attacks: below full coverage
    assert by_family["spec"]["coverage"] < 1.0
    # ensemble catches most of the timeline
    assert by_family["ensemble"]["coverage"] >= 0.8
