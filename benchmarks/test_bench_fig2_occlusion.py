"""E-F2 — Figure 2: the collaborative drone eliminates occlusion failures.

Paper artefact: Figure 2, "the collaborative drone allows for an additional
point of view to eliminate occlusions caused by terrain obstacles".
Reproduction: occluded approach episodes behind a terrain ridge, with and
without the drone, across seeds.  Shape expectation: with the drone the
person is detected earlier (greater range, shorter time) and the endangered
fraction (machine moving with the person close) falls to ~0; without the
drone, detection happens late (ground camera only sees the person after
they clear the ridge) or not at all.
"""

from conftest import run_once

from repro.analysis.stats import mean
from repro.analysis.tables import Table
from repro.scenarios.usecase import UsecaseConfig, build_usecase

SEEDS = tuple(range(20, 32))


def _episodes(drone_enabled):
    results = []
    for seed in SEEDS:
        usecase = build_usecase(UsecaseConfig(seed=seed, drone_enabled=drone_enabled))
        results.append(usecase.run_episode())
    return results


def _run_both():
    return {"with": _episodes(True), "without": _episodes(False)}


def _summarise(episodes):
    detected = [e for e in episodes if e.detected]
    return {
        "episodes": len(episodes),
        "detected": len(detected),
        "det_rate": len(detected) / len(episodes),
        "mean_time_s": mean([e.detection_time_s for e in detected]) if detected else None,
        "mean_range_m": mean([e.detection_distance_m for e in detected]) if detected else None,
        "stopped_in_time": sum(1 for e in episodes if e.stopped_in_time),
    }


def test_fig2_drone_occlusion(benchmark):
    outcome = run_once(benchmark, _run_both)
    with_drone = _summarise(outcome["with"])
    without = _summarise(outcome["without"])

    table = Table(
        ["configuration", "episodes", "detected", "mean time-to-detect s",
         "mean detection range m", "stopped in time"],
        title="E-F2  Figure 2 occluded-approach episodes (terrain ridge + stand)",
    )
    for label, s in (("forwarder + drone", with_drone),
                     ("forwarder only", without)):
        table.add_row(label, s["episodes"], s["detected"],
                      s["mean_time_s"], s["mean_range_m"], s["stopped_in_time"])
    table.print()

    # shape: the drone detects earlier and at greater range
    assert with_drone["det_rate"] == 1.0
    assert with_drone["mean_range_m"] > 1.2 * (without["mean_range_m"] or 1.0)
    assert with_drone["mean_time_s"] < 0.5 * (without["mean_time_s"] or 1e9)
    assert with_drone["stopped_in_time"] >= without["stopped_in_time"]
