"""E-S4D — the standards side: IEC 62443 SL gaps and ISO 21434 CALs agree.

Paper artefact: Section IV-D argues requirements can be extracted from
ISO/SAE 21434 and IEC 62443 with IEC TS 63074 bridging them to machinery
safety.  Reproduction: zone/conduit SL-T vs SL-A gap analysis of the
worksite across deployment stages, and the CAL distribution of the TARA.
Shape expectation: the bare worksite has large gaps concentrated in the
safety zone; staged deployment closes them monotonically; safety-coupled
threats carry the highest CALs (the two calculi rank the same assets
highest).
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.risk.tara import Tara
from repro.scenarios.worksite import worksite_item_model
from repro.sos.zones import worksite_zone_model

STAGES = {
    "bare (no measures)": [],
    "crypto only": ["pki_mutual_auth", "secure_channel_aead", "data_encryption",
                    "integrity_hmac"],
    "crypto + link/IDS": ["pki_mutual_auth", "secure_channel_aead",
                          "data_encryption", "integrity_hmac",
                          "protected_management_frames", "signature_ids",
                          "anomaly_ids", "spec_ids"],
    "full catalog": ["pki_mutual_auth", "secure_channel_aead", "data_encryption",
                     "integrity_hmac", "protected_management_frames",
                     "signature_ids", "anomaly_ids", "spec_ids",
                     "rbac_command_authorization", "gnss_plausibility",
                     "camera_redundancy", "anti_hacking_ai", "secure_boot",
                     "remote_attestation", "channel_agility",
                     "offline_recovery_plan", "session_lockout"],
}


def _run_stages():
    rows = []
    for label, measures in STAGES.items():
        model = worksite_zone_model(
            deployed_safety_zone=measures,
            deployed_supervision_zone=measures,
            deployed_conduits=measures,
        )
        report = model.assessment()
        safety_gaps = sum(report["zone:safety-control"]["gaps"].values())
        rows.append((
            label,
            model.total_gap(),
            safety_gaps,
            sum(report["conduit:site-radio"]["gaps"].values()),
            report["zone:safety-control"]["compliant"],
        ))
    return rows


def test_sl_gaps_and_cal(benchmark):
    rows = run_once(benchmark, _run_stages)

    table = Table(
        ["deployment stage", "total SL gap", "safety-zone gap",
         "site-radio conduit gap", "safety zone compliant"],
        title="E-S4D  IEC 62443 SL-T vs SL-A across deployment stages",
    )
    for row in rows:
        table.add_row(*row)
    table.print()

    # CAL distribution of the TARA
    result = Tara(worksite_item_model()).assess()
    cal_counts = {}
    for assessment in result.assessments:
        cal_counts[assessment.cal.name] = cal_counts.get(assessment.cal.name, 0) + 1
    cal_table = Table(
        ["CAL", "threat scenarios", "of which safety-coupled"],
        title="E-S4D  ISO/SAE 21434 CAL distribution",
    )
    for cal in sorted(cal_counts):
        coupled = sum(
            1 for a in result.assessments
            if a.cal.name == cal and a.safety_coupled
        )
        cal_table.add_row(cal, cal_counts[cal], coupled)
    cal_table.print()

    # shape: gaps fall monotonically with deployment
    gaps = [row[1] for row in rows]
    assert gaps == sorted(gaps, reverse=True)
    assert gaps[-1] < gaps[0] / 3
    # the two calculi agree on ranking: highest CALs are safety-coupled
    top_cal = max(a.cal for a in result.assessments)
    top = [a for a in result.assessments if a.cal == top_cal]
    assert any(a.safety_coupled for a in top)
