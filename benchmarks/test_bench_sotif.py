"""E-S3C — SOTIF adapted to forest machinery (Section III-C).

Paper artefact: "AGRARSENSE explores how to adapt SOTIF principles to
forest machinery and enhance safety beyond traditional functional safety"
on the Figure 2 use case.  Reproduction: the evidence-collection campaign
runs approach episodes under every catalogued triggering condition for both
designs (ground-only vs collaborative) and reports per-condition failure
rates, scenario-area movement and the residual-risk indicator.  Shape
expectation: evidence moves all conditions out of "unknown"; the
ground-only design fails under the weather conditions (rain, fog) that
degrade its single optical viewpoint; the collaborative design's residual
risk is markedly lower.
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.safety.sotif import ScenarioArea, SotifAnalysis
from repro.scenarios.sotif_campaign import CONDITION_SETUPS, run_sotif_campaign

EXPOSURES = 8


def _run_campaigns():
    with_drone = run_sotif_campaign(
        drone_enabled=True, exposures_per_condition=EXPOSURES, base_seed=500,
    )
    without = run_sotif_campaign(
        drone_enabled=False, exposures_per_condition=EXPOSURES, base_seed=900,
    )
    return with_drone, without


def test_sotif_campaign(benchmark):
    with_drone, without = run_once(benchmark, _run_campaigns)

    table = Table(
        ["triggering condition", "class",
         f"ground-only failures (of {EXPOSURES})",
         f"collaborative failures (of {EXPOSURES})"],
        title="E-S3C  SOTIF triggering-condition evidence (ISO 21448)",
    )
    for condition in with_drone.analysis.conditions:
        cid = condition.condition_id
        table.add_row(
            f"{cid}: {condition.description}",
            condition.scenario_class,
            without.failures_by_condition.get(cid, 0),
            with_drone.failures_by_condition.get(cid, 0),
        )
    table.print()

    areas_with = with_drone.analysis.area_counts()
    areas_without = without.analysis.area_counts()
    print(f"scenario areas, collaborative: "
          f"{ {k.value: v for k, v in areas_with.items() if v} }")
    print(f"scenario areas, ground-only:   "
          f"{ {k.value: v for k, v in areas_without.items() if v} }")
    r_with = with_drone.analysis.residual_risk_indicator()
    r_without = without.analysis.residual_risk_indicator()
    print(f"residual-risk indicator: collaborative {r_with:.3f}, "
          f"ground-only {r_without:.3f} "
          f"({with_drone.analysis.improvement_over(without.analysis):.0%} lower)")

    # shape: evidence collected for every condition (nothing stays unknown)
    assert areas_with[ScenarioArea.UNKNOWN_UNSAFE] == 0
    assert areas_without[ScenarioArea.UNKNOWN_UNSAFE] == 0
    # the collaborative design strictly dominates
    total_with = sum(with_drone.failures_by_condition.values())
    total_without = sum(without.failures_by_condition.values())
    assert total_with < total_without
    assert r_with < r_without
    # ground-only fails specifically under weather degradation
    weather_failures = sum(
        without.failures_by_condition.get(c.condition_id, 0)
        for c in with_drone.analysis.conditions if c.scenario_class == "weather"
    )
    assert weather_failures > 0
