"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper (table, figure or
argued claim) and prints the rows it reproduces; pytest-benchmark wraps the
computation for timing.  Heavy simulations run once per benchmark
(``benchmark.pedantic(..., rounds=1)``).
"""

from typing import Dict

import pytest

from repro.safety.iso13849 import Category, SafetyFunctionDesign


@pytest.fixture
def worksite_designs() -> Dict[str, SafetyFunctionDesign]:
    """The worksite's safety-function designs used across benchmarks."""
    return {
        "people_detection_stop": SafetyFunctionDesign(
            "people_detection_stop", Category.CAT3, 40.0, 0.95),
        # geofence dimensioned to meet its PLr standalone (category 2,
        # MTTFd high, DC medium -> PL d), so interplay gaps on it are
        # genuinely invisible to a safety-only assessment
        "geofence": SafetyFunctionDesign("geofence", Category.CAT2, 35.0, 0.92),
        "protective_stop": SafetyFunctionDesign(
            "protective_stop", Category.CAT3, 60.0, 0.95),
        "speed_limiter": SafetyFunctionDesign(
            "speed_limiter", Category.CAT2, 30.0, 0.7),
    }


def run_once(benchmark, func):
    """Run a heavy computation exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
