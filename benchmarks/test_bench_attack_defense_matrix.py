"""E-S4C — the survey's attack classes vs the survey's defences, head to head.

Paper artefact: Section IV-C enumerates the attack classes (jamming,
interference, de-auth, GNSS spoof/jam, camera attacks, plus network message
attacks) and the mitigations the literature pairs with them.  Reproduction:
for each attack, run the worksite with the paired defence on and off and
report the channel-level effect plus detection.  Shape expectation: every
attack degrades its target channel when undefended; every paired defence
either blocks the effect (crypto, protected management) or detects it
within seconds (IDS, monitors).
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.comms.crypto.secure_channel import SecurityProfile
from repro.scenarios.campaigns import build_campaign
from repro.scenarios.worksite import ScenarioConfig, build_worksite

HORIZON_S = 1200.0
START, DURATION = 240.0, 600.0

#: attack -> the survey's paired defence (for the printed table)
PAIRINGS = {
    "rf_jamming": "anomaly/signature IDS + degraded-mode fallback",
    "frequency_interference": "anomaly IDS",
    "wifi_deauth": "protected management frames",
    "gnss_jamming": "GNSS plausibility monitor",
    "gnss_spoofing": "C/N0 + innovation + dead reckoning",
    "camera_blinding": "anti-hacking watchdog + redundancy",
    "camera_hijack": "anti-hacking watchdog + redundancy",
    "message_injection": "AEAD secure channel + RBAC",
    "message_replay": "record replay windows",
    "message_tampering": "AEAD integrity tags",
}


def _cell(attack: str, defended: bool, seed: int = 41) -> dict:
    if defended:
        config = ScenarioConfig(seed=seed)
    else:
        config = ScenarioConfig(
            seed=seed, profile=SecurityProfile.PLAINTEXT,
            protected_management=False, defenses_enabled=False,
            access_control_enabled=False,
        )
    scenario = build_worksite(config)
    campaign = build_campaign(attack, scenario, start=START, duration=DURATION)
    campaign.arm()
    scenario.run(HORIZON_S)

    detection_latency = None
    if scenario.ids_manager is not None:
        score = scenario.ids_manager.score(
            campaign.ground_truth_windows(), horizon_s=HORIZON_S
        )
        detection_latency = score.mean_latency_s
    return {
        "attack": attack,
        "defended": defended,
        "delivery_ratio": round(scenario.medium.delivery_ratio, 3),
        "delivered_m3": scenario.mission.delivered_m3,
        "deauths_accepted": scenario.log.count("deauthenticated"),
        "records_rejected": scenario.network.nodes["forwarder"].records_rejected,
        "forged_executed": scenario.command_channel.executed
        if attack.startswith("message") else 0,
        "detection_latency_s": detection_latency,
    }


def _run_matrix():
    rows = []
    for attack in PAIRINGS:
        rows.append((_cell(attack, True), _cell(attack, False)))
    return rows


def test_attack_defense_matrix(benchmark):
    rows = run_once(benchmark, _run_matrix)

    table = Table(
        ["attack (Section IV-C)", "paired defence", "undef. delivery",
         "def. delivery", "undef. deauths", "def. deauths",
         "undef. forged exec", "def. forged exec", "detect latency s"],
        title="E-S4C  attack x defence matrix on the live worksite",
    )
    for defended, undefended in rows:
        attack = defended["attack"]
        table.add_row(
            attack, PAIRINGS[attack],
            undefended["delivery_ratio"], defended["delivery_ratio"],
            undefended["deauths_accepted"], defended["deauths_accepted"],
            undefended["forged_executed"], defended["forged_executed"],
            defended["detection_latency_s"],
        )
    table.print()

    cells = {(c["attack"], c["defended"]): c for pair in rows for c in pair}
    # de-auth: protected management blocks association loss entirely
    assert cells[("wifi_deauth", False)]["deauths_accepted"] > 0
    assert cells[("wifi_deauth", True)]["deauths_accepted"] == 0
    # injection: forged commands execute only without the secure channel
    assert cells[("message_injection", False)]["forged_executed"] > 0
    assert cells[("message_injection", True)]["forged_executed"] == 0
    # jamming: defended stack detects it quickly
    latency = cells[("rf_jamming", True)]["detection_latency_s"]
    assert latency is not None and latency < 60.0
    # every defended attack with a detector is detected
    for attack in ("rf_jamming", "gnss_jamming", "gnss_spoofing",
                   "message_injection", "wifi_deauth"):
        assert cells[(attack, True)]["detection_latency_s"] is not None, attack
