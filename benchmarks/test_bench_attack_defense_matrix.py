"""E-S4C — the survey's attack classes vs the survey's defences, head to head.

Paper artefact: Section IV-C enumerates the attack classes (jamming,
interference, de-auth, GNSS spoof/jam, camera attacks, plus network message
attacks) and the mitigations the literature pairs with them.  Reproduction:
for each attack, run the worksite with the paired defence on and off and
report the channel-level effect plus detection.  Shape expectation: every
attack degrades its target channel when undefended; every paired defence
either blocks the effect (crypto, protected management) or detects it
within seconds (IDS, monitors).

The 10 × 2 attack × profile grid is one sweep driven through
:mod:`repro.runner`, fanned across worker processes.
"""

import os

from conftest import run_once

from repro.analysis.tables import Table
from repro.runner import RunSpec, run_sweep

HORIZON_S = 1200.0
START, DURATION = 240.0, 600.0

#: worker processes for benchmark sweeps (1 keeps CI boxes predictable)
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "2"))

#: attack -> the survey's paired defence (for the printed table)
PAIRINGS = {
    "rf_jamming": "anomaly/signature IDS + degraded-mode fallback",
    "frequency_interference": "anomaly IDS",
    "wifi_deauth": "protected management frames",
    "gnss_jamming": "GNSS plausibility monitor",
    "gnss_spoofing": "C/N0 + innovation + dead reckoning",
    "camera_blinding": "anti-hacking watchdog + redundancy",
    "camera_hijack": "anti-hacking watchdog + redundancy",
    "message_injection": "AEAD secure channel + RBAC",
    "message_replay": "record replay windows",
    "message_tampering": "AEAD integrity tags",
}


def _matrix_specs(seed: int = 41):
    return [
        RunSpec.single(
            attack, seed=seed, horizon_s=HORIZON_S,
            profile=profile, start=START, duration=DURATION,
        )
        for attack in PAIRINGS
        for profile in ("defended", "undefended")
    ]


def _cell_from_record(record: dict) -> dict:
    spec, result = record["spec"], record["result"]
    detection = result["detection"]
    return {
        "attack": spec["campaign"],
        "defended": spec["profile"] == "defended",
        "delivery_ratio": result["summary"]["delivery_ratio"],
        "delivered_m3": result["summary"]["delivered_m3"],
        "deauths_accepted": result["channel"]["deauths_accepted"],
        "records_rejected": result["channel"]["records_rejected"],
        "forged_executed": result["channel"]["forged_executed"]
        if spec["campaign"].startswith("message") else 0,
        "detection_latency_s": (
            detection["mean_latency_s"] if detection else None
        ),
    }


def _run_matrix():
    report = run_sweep(_matrix_specs(), jobs=BENCH_JOBS)
    assert report.failed == 0, [r["error"] for r in report.failures()]
    cells = [_cell_from_record(record) for record in report.records]
    by_key = {(c["attack"], c["defended"]): c for c in cells}
    return [(by_key[(attack, True)], by_key[(attack, False)])
            for attack in PAIRINGS]


def test_attack_defense_matrix(benchmark):
    rows = run_once(benchmark, _run_matrix)

    table = Table(
        ["attack (Section IV-C)", "paired defence", "undef. delivery",
         "def. delivery", "undef. deauths", "def. deauths",
         "undef. forged exec", "def. forged exec", "detect latency s"],
        title="E-S4C  attack x defence matrix on the live worksite",
    )
    for defended, undefended in rows:
        attack = defended["attack"]
        table.add_row(
            attack, PAIRINGS[attack],
            undefended["delivery_ratio"], defended["delivery_ratio"],
            undefended["deauths_accepted"], defended["deauths_accepted"],
            undefended["forged_executed"], defended["forged_executed"],
            defended["detection_latency_s"],
        )
    table.print()

    cells = {(c["attack"], c["defended"]): c for pair in rows for c in pair}
    # de-auth: protected management blocks association loss entirely
    assert cells[("wifi_deauth", False)]["deauths_accepted"] > 0
    assert cells[("wifi_deauth", True)]["deauths_accepted"] == 0
    # injection: forged commands execute only without the secure channel
    assert cells[("message_injection", False)]["forged_executed"] > 0
    assert cells[("message_injection", True)]["forged_executed"] == 0
    # jamming: defended stack detects it quickly
    latency = cells[("rf_jamming", True)]["detection_latency_s"]
    assert latency is not None and latency < 60.0
    # every defended attack with a detector is detected
    for attack in ("rf_jamming", "gnss_jamming", "gnss_spoofing",
                   "message_injection", "wifi_deauth"):
        assert cells[(attack, True)]["detection_latency_s"] is not None, attack
