"""E-T1 — Table I: forestry characteristics reshape the cyber risk picture.

Paper artefact: Table I lists eight qualitative characteristics "to be
considered when performing cybersecurity analysis".  Reproduction: run the
worksite TARA once context-free, then once per characteristic, and report
how each characteristic moves the risk profile — the quantitative form of
the table's qualitative claim.  Shape expectation: every row changes some
risk values; impact-side characteristics (heavy machinery, autonomy) push
the high-risk mass up; feasibility-side ones (remote monitoring, threat
profile) move specific threat families.
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.core.characteristics import characteristic_catalog, combined_modifiers
from repro.risk.tara import Tara
from repro.scenarios.worksite import worksite_item_model


def _assess_with(characteristics):
    item = worksite_item_model()
    modifiers = combined_modifiers(characteristics)
    return Tara(
        item,
        feasibility_modifier=modifiers.feasibility,
        impact_modifier=modifiers.impact,
    ).assess()


def _table1_rows():
    baseline = _assess_with([])
    base_risks = {a.threat_id: a.risk_value for a in baseline.assessments}
    rows = []
    for characteristic in characteristic_catalog():
        result = _assess_with([characteristic])
        changed = sum(
            1 for a in result.assessments
            if a.risk_value != base_risks[a.threat_id]
        )
        delta_mean = result.mean_risk() - baseline.mean_risk()
        high = len(result.above(3))
        rows.append((
            characteristic.title, changed, round(delta_mean, 2), high,
            result.max_risk(),
        ))
    combined = _assess_with(characteristic_catalog())
    rows.append((
        "ALL (forestry context)",
        sum(1 for a in combined.assessments
            if a.risk_value != base_risks[a.threat_id]),
        round(combined.mean_risk() - baseline.mean_risk(), 2),
        len(combined.above(3)),
        combined.max_risk(),
    ))
    return baseline, rows


def test_table1_characteristics(benchmark):
    baseline, rows = run_once(benchmark, _table1_rows)

    table = Table(
        ["Characteristic (Table I)", "threats moved", "Δ mean risk",
         "risks > 3", "max risk"],
        title=(
            "E-T1  Table I characteristics as risk-assessment modifiers "
            f"(baseline: mean {baseline.mean_risk():.2f}, "
            f"{len(baseline.above(3))} risks > 3)"
        ),
    )
    for row in rows:
        table.add_row(*row)
    table.print()

    # every characteristic must move the assessment (the paper's claim)
    for row in rows:
        assert row[1] > 0, f"{row[0]} moved no threats"
    # the combined forestry context is strictly riskier than context-free
    assert rows[-1][2] > 0.0
