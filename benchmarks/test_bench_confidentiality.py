"""E-A4 — Table I "Confidentiality of Operations": what eavesdropping gets.

Paper artefact: Table I's confidentiality row — forestry operations (e.g.
near military sites) must keep their communications confidential; the
operations data asset (land ownership, telemetry) must not leak.
Reproduction: a passive eavesdropper at the perimeter captures all worksite
traffic for 15 minutes under each record-protection profile; report what it
could read.  Shape expectation: plaintext leaks everything including a full
machine movement track; INTEGRITY still leaks content (authenticity is not
confidentiality); AEAD leaks nothing but traffic volume.
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.comms.crypto.secure_channel import SecurityProfile
from repro.scenarios.campaigns import build_campaign
from repro.scenarios.worksite import ScenarioConfig, build_worksite

HORIZON_S = 900.0


def _run_profile(profile):
    scenario = build_worksite(ScenarioConfig(seed=81, profile=profile))
    campaign = build_campaign("eavesdropping", scenario, start=60.0)
    campaign.arm()
    scenario.run(HORIZON_S)
    attack = campaign.steps[0].attack
    return {
        "profile": profile.value,
        "frames": attack.frames_observed,
        "disclosed": attack.messages_disclosed,
        "ratio": attack.disclosure_ratio,
        "positions": attack.positions_tracked,
        "types": dict(sorted(attack.disclosed_types.items())),
    }


def _run_all():
    return [_run_profile(profile) for profile in SecurityProfile]


def test_confidentiality_of_operations(benchmark):
    rows = run_once(benchmark, _run_all)

    table = Table(
        ["record profile", "frames observed", "messages read",
         "disclosure ratio", "machine positions tracked", "leaked types"],
        title="E-A4  passive eavesdropper vs record protection (15 min)",
    )
    for r in rows:
        table.add_row(r["profile"], r["frames"], r["disclosed"],
                      round(r["ratio"], 3), r["positions"],
                      ", ".join(r["types"]) or "-")
    table.print()

    by_profile = {r["profile"]: r for r in rows}
    # plaintext: the operation is an open book, including a movement track
    assert by_profile["plaintext"]["positions"] > 100
    assert by_profile["plaintext"]["ratio"] > 0.5
    # integrity-only: authenticity is not confidentiality
    assert by_profile["integrity"]["positions"] > 100
    # AEAD: nothing readable
    assert by_profile["aead"]["disclosed"] == 0
    assert by_profile["aead"]["positions"] == 0
