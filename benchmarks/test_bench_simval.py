"""E-A1 — simulation validity is measurable (Section III-D).

Paper artefact: "ensuring the validity and representativeness of the
simulation data compared to the real world ... requires systematic
validation of the components in the simulation toolchain".

Reproduction: treat the reference model as the field campaign; collect the
same observables from the worksite simulation (first-detection ranges from
live approach episodes, GNSS fix errors, camera quality-vs-range curve) and
run the divergence-based validation, plus a deliberately mis-calibrated
simulation as the negative control.  Shape expectation: the calibrated
simulation passes every observable; the mis-calibrated one fails with
explicit reasons.
"""

from conftest import run_once

from repro.analysis.tables import Table
from repro.scenarios.usecase import UsecaseConfig, build_usecase
from repro.sensors.gnss import GnssReceiver
from repro.sim.engine import Simulator
from repro.sim.entities import Entity
from repro.sim.events import EventLog
from repro.sim.geometry import Vec2
from repro.sim.rng import RngStreams
from repro.simval.reference import (
    ReferenceModel,
    reference_detection_samples,
    reference_gnss_errors,
)
from repro.simval.validation import ObservableSpec, validate_observables


def _sim_detection_ranges(n_episodes: int) -> list:
    """First-detection ranges from live approach episodes over a *mix* of
    site conditions (ridge height and stand density vary per episode), the
    way a field campaign samples multiple stands."""
    import random

    site_rng = random.Random(0)
    ranges = []
    seed = 100
    while len(ranges) < n_episodes and seed < 100 + 4 * n_episodes:
        usecase = build_usecase(UsecaseConfig(
            seed=seed, drone_enabled=False,
            ridge_height=site_rng.uniform(5.0, 12.0),
            n_screen_trees=site_rng.randint(15, 50),
        ))
        result = usecase.run_episode()
        if result.detected and result.detection_distance_m is not None:
            ranges.append(result.detection_distance_m)
        seed += 1
    return ranges


def _sim_gnss_errors(n: int, sigma: float) -> list:
    sim = Simulator()
    log = EventLog()
    streams = RngStreams(7)
    carrier = Entity("c", sim, log, Vec2(100, 100))
    gnss = GnssReceiver("g", carrier, streams, noise_sigma_m=sigma)
    errors = []
    for i in range(n):
        fix = gnss.fix(float(i))
        if fix.valid:
            errors.append(fix.position.distance_to(carrier.position))
    return errors


def _run_validation():
    # the surrogate field campaign for this site class (boreal stand,
    # occluded approaches towards a working machine): first detection
    # clusters where the approach clears the ridge line, around 55 m
    reference = ReferenceModel(detection_range_mean=55.0, detection_range_std=6.0)
    ref_samples = {
        "detection_range_m": reference_detection_samples(reference, 300),
        "gnss_error_m": reference_gnss_errors(reference, 300),
    }
    specs = [
        ObservableSpec("detection_range_m", max_ks=0.35, max_wasserstein=10.0,
                       max_kl=1.5),
        ObservableSpec("gnss_error_m", max_ks=0.35, max_wasserstein=1.0,
                       max_kl=1.5),
    ]
    calibrated = {
        "detection_range_m": _sim_detection_ranges(50),
        "gnss_error_m": _sim_gnss_errors(300, sigma=0.8),
    }
    miscalibrated = {
        # a low ridge and huge GNSS noise: the "wrong simulator"
        "detection_range_m": [r * 2.2 for r in calibrated["detection_range_m"]],
        "gnss_error_m": _sim_gnss_errors(300, sigma=5.0),
    }
    good = validate_observables(calibrated, ref_samples, specs)
    bad = validate_observables(miscalibrated, ref_samples, specs)
    return good, bad


def test_simulation_validation(benchmark):
    good, bad = run_once(benchmark, _run_validation)

    table = Table(
        ["simulator", "observable", "KS", "p", "W1", "KL", "verdict"],
        title="E-A1  simulation-vs-reference validation (Section III-D)",
    )
    for label, report in (("calibrated", good), ("mis-calibrated", bad)):
        for result in report.results:
            table.add_row(
                label, result.name, round(result.ks, 3),
                round(result.ks_pvalue, 3), round(result.wasserstein, 2),
                round(result.kl, 2), "PASS" if result.passed else "FAIL",
            )
    table.print()
    for failure in bad.failed():
        print(f"mis-calibrated failure reasons [{failure.name}]:",
              "; ".join(failure.reasons))

    assert good.valid, [r.reasons for r in good.failed()]
    assert not bad.valid
    assert all(r.reasons for r in bad.failed())
