#!/usr/bin/env python3
"""Crypto substrate walkthrough: CA, handshake, record protection, attacks.

Demonstrates the Chattopadhyay & Lam recommendation the paper cites — a
Certificate Authority issuing identities to every worksite component — and
what the secure channel does to the message attacks of Section IV-C.

Usage::

    python examples/secure_channel_demo.py
"""

from repro.comms.crypto.certificates import CertificateAuthority, CertificateError, verify_chain
from repro.comms.crypto.keys import KeyPair
from repro.comms.crypto.numbers import TEST_GROUP
from repro.comms.crypto.secure_channel import (
    ChannelError,
    HandshakeError,
    Identity,
    Record,
    SecureChannel,
    SecurityProfile,
)


def main() -> None:
    group = TEST_GROUP
    print(f"Group: {group.name} ({group.p.bit_length()}-bit safe prime)")

    print("\n1) The worksite CA issues component identities")
    ca = CertificateAuthority("worksite-ca", group)
    identities = {}
    for name, roles in (("control", ("operator",)), ("forwarder", ()),
                        ("drone", ())):
        keypair = KeyPair.generate(group, seed=f"demo:{name}".encode())
        cert = ca.issue(name, keypair.public, roles=roles)
        identities[name] = Identity(name, keypair, [cert],
                                    ca.root_certificate, ca)
        print(f"   issued #{cert.serial}: {name} (roles: {list(cert.roles)})")

    print("\n2) Signed-DH handshake control <-> forwarder")
    chan_control, chan_fwd, stats = SecureChannel.establish_pair(
        identities["control"], identities["forwarder"],
        profile=SecurityProfile.AEAD,
    )
    print(f"   {stats.exponentiations} exponentiations, "
          f"{stats.signatures} signatures, {stats.verifications} verifications, "
          f"~{stats.bytes_exchanged} bytes on the wire")

    print("\n3) Protected records")
    record = chan_control.seal(b'{"command": "emergency_stop"}')
    print(f"   sealed ({len(record.body)} bytes, plaintext hidden: "
          f"{b'emergency_stop' not in record.body})")
    plaintext = chan_fwd.open(record)
    print(f"   forwarder opened: {plaintext.decode()}")

    print("\n4) The attacks, replayed against the channel")
    try:
        chan_fwd.open(record)
    except ChannelError as exc:
        print(f"   replay        -> rejected ({exc})")
    tampered = Record(seq=record.seq + 1000, body=record.body[:-1] + b"\x00",
                      profile=record.profile)
    try:
        chan_fwd.open(tampered)
    except ChannelError as exc:
        print(f"   tampering     -> rejected ({exc})")
    forged = Record(seq=9999, body=b'{"command": "resume"}', profile="plaintext")
    try:
        chan_fwd.open(forged)
    except ChannelError as exc:
        print(f"   injection     -> rejected ({exc})")

    print("\n5) Revocation: a stolen drone identity is cut off")
    ca.revoke(identities["drone"].chain[0].serial)
    try:
        SecureChannel.establish_pair(identities["control"], identities["drone"])
    except HandshakeError as exc:
        print(f"   handshake with revoked peer -> {exc}")

    print("\n6) An impostor without a CA-issued certificate")
    rogue_ca = CertificateAuthority("rogue-ca", group)
    rogue_kp = KeyPair.generate(group, seed=b"rogue")
    rogue_cert = rogue_ca.issue("forwarder", rogue_kp.public)
    try:
        verify_chain([rogue_cert], ca.root_certificate, group, now=0.0)
    except CertificateError as exc:
        print(f"   chain validation -> {exc}")


if __name__ == "__main__":
    main()
