#!/usr/bin/env python3
"""Live attack-and-response demo: the interplay made visible.

Runs the worksite through a staged multi-vector campaign (jamming →
de-auth → command injection → GNSS spoofing) with the full defence suite,
feeding IDS alerts into the continuous risk assessment, whose posture
changes drive the forwarder's speed-limiter assurance tiers.

Usage::

    python examples/attack_response.py
"""

from repro.core.continuous import (
    ContinuousRiskAssessment,
    POSTURE_ASSURANCE,
    RiskPosture,
)
from repro.risk.tara import Tara
from repro.safety.functions import SpeedLimiter
from repro.scenarios.campaigns import build_campaign
from repro.scenarios.worksite import (
    ScenarioConfig,
    build_worksite,
    worksite_item_model,
)

HORIZON_S = 1800.0


def main() -> None:
    print("Building the defended worksite ...")
    scenario = build_worksite(ScenarioConfig(seed=7))

    # design-time TARA with the deployed countermeasures as the baseline
    baseline = Tara(
        worksite_item_model(),
        deployed_measures=[
            "secure_channel_aead", "pki_mutual_auth", "gnss_plausibility",
            "camera_redundancy", "protected_management_frames", "spec_ids",
            "rbac_command_authorization",
        ],
    ).assess()
    print(f"design-time TARA: {len(baseline.assessments)} threats, "
          f"max residual-relevant risk {baseline.max_risk()}")

    limiter = SpeedLimiter(scenario.forwarder, scenario.sim, scenario.log)
    posture_log = []

    def on_posture(posture: RiskPosture) -> None:
        tier = POSTURE_ASSURANCE[posture]
        limiter.set_assurance(tier)
        posture_log.append((scenario.sim.now, posture.name, tier))
        print(f"  t={scenario.sim.now:7.1f}s  posture -> {posture.name:8s} "
              f"(assurance tier: {tier})")

    engine = ContinuousRiskAssessment(
        baseline, scenario.sim, scenario.log, on_posture_change=on_posture,
    )
    for detector in scenario.ids_manager.detectors:
        detector.add_sink(engine.ingest_alert)

    campaign = build_campaign("combined", scenario, start=300.0)
    campaign.arm()
    print(f"\nArmed campaign '{campaign.name}': "
          f"{', '.join(campaign.attack_types)}")
    print(f"Running {HORIZON_S:.0f} simulated seconds ...\n")
    scenario.run(HORIZON_S)

    print("\n=== outcome ===")
    score = scenario.ids_manager.score(
        campaign.ground_truth_windows(), horizon_s=HORIZON_S
    )
    print(f"  attacks staged:        {score.attacks_total}")
    print(f"  attacks detected:      {score.attacks_detected} "
          f"(mean latency "
          f"{score.mean_latency_s:.1f} s)" if score.mean_latency_s is not None
          else "  attacks detected:      0")
    print(f"  false alarms:          {score.false_alarms}")
    print(f"  forged cmds executed:  {scenario.command_channel.executed} "
          f"(rejected: {scenario.command_channel.rejected})")
    print(f"  records rejected:      "
          f"{scenario.network.nodes['forwarder'].records_rejected}")
    safety = scenario.safety_monitor.summary()
    print(f"  safety violations:     {safety['violations']}")
    print(f"  delivered despite it:  {scenario.mission.delivered_m3:.0f} m3")
    durations = engine.time_in_posture(HORIZON_S)
    print("  time in posture:       "
          + ", ".join(f"{k} {v:.0f}s" for k, v in durations.items() if v > 0))


if __name__ == "__main__":
    main()
