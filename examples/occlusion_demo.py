#!/usr/bin/env python3
"""Figure 2 demo: the collaborative drone vs terrain occlusion.

Runs occluded-approach episodes — a person walks towards the working
forwarder from behind a terrain ridge — with and without the observation
drone, and prints the detection outcome of each episode.

Usage::

    python examples/occlusion_demo.py [n_episodes]
"""

import sys

from repro.scenarios.usecase import UsecaseConfig, build_usecase


def run_batch(n: int, drone_enabled: bool) -> list:
    results = []
    for seed in range(300, 300 + n):
        usecase = build_usecase(UsecaseConfig(seed=seed, drone_enabled=drone_enabled))
        results.append(usecase.run_episode())
    return results


def describe(label: str, results: list) -> None:
    print(f"\n--- {label} ---")
    for i, r in enumerate(results):
        if r.detected:
            print(f"  episode {i}: detected after {r.detection_time_s:5.1f} s "
                  f"at {r.detection_distance_m:5.1f} m "
                  f"(sources: {', '.join(r.sources) or '-'}) "
                  f"{'SAFE' if r.stopped_in_time else 'ENDANGERED'}")
        else:
            print(f"  episode {i}: NOT DETECTED "
                  f"(min separation {r.min_separation_m:.1f} m)")
    detected = [r for r in results if r.detected]
    if detected:
        mean_t = sum(r.detection_time_s for r in detected) / len(detected)
        mean_d = sum(r.detection_distance_m for r in detected) / len(detected)
        print(f"  => {len(detected)}/{len(results)} detected, "
              f"mean time-to-detect {mean_t:.1f} s, "
              f"mean detection range {mean_d:.1f} m, "
              f"{sum(1 for r in results if r.stopped_in_time)} stopped in time")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    print("Figure 2: a terrain ridge occludes the forwarder's own sensors;")
    print("the drone's elevated viewpoint eliminates the occlusion.")
    describe("forwarder only (ground viewpoint)", run_batch(n, False))
    describe("forwarder + drone (collaborative)", run_batch(n, True))


if __name__ == "__main__":
    main()
