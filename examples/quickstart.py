#!/usr/bin/env python3
"""Quickstart: run the Figure 1 forestry worksite for 20 simulated minutes.

Builds the full stack — forest world, autonomous forwarder on a log-
transport mission, observation drone, manually-operated harvester, workers,
an AEAD-protected radio network, the collaborative people-detection safety
function and the IDS suite — runs it, and prints what happened.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro.scenarios.worksite import ScenarioConfig, build_worksite


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    print(f"Building the worksite (seed={seed}) ...")
    scenario = build_worksite(ScenarioConfig(seed=seed))
    print(f"  forest: {len(scenario.world.trees)} trees on "
          f"{scenario.world.width:.0f}x{scenario.world.height:.0f} m")
    print(f"  machines: {scenario.forwarder.name}, "
          f"{scenario.drone.name if scenario.drone else '(no drone)'}, "
          f"{scenario.harvester.name}; "
          f"{len(scenario.workers)} workers")
    print(f"  network: {sorted(scenario.network.nodes)} "
          f"({scenario.config.profile.value} profile)")

    print("\nRunning 20 simulated minutes ...")
    scenario.run(1200.0)

    summary = scenario.summary()
    print("\n=== Worksite summary ===")
    print(f"  logs delivered:      {summary['delivered_m3']:.0f} m3 "
          f"in {summary['cycles']} cycles")
    print(f"  forwarder drove:     {scenario.forwarder.distance_travelled:.0f} m")
    print(f"  radio delivery:      {summary['delivery_ratio']:.1%}")
    print(f"  weather now:         {scenario.weather.state.value}")
    if scenario.drone is not None:
        print(f"  drone airborne:      {scenario.drone.airborne_time:.0f} s "
              f"(battery {scenario.drone.battery_fraction:.0%})")
    safety = summary["safety"]
    print(f"  protective stops:    {summary['safe_stops']}")
    print(f"  people confirmed:    "
          f"{sorted(scenario.safety_function.first_confirm_times)}")
    print(f"  safety violations:   {safety['violations']} "
          f"(near misses: {safety['near_misses']}, "
          f"min separation {safety['min_separation_m']} m)")
    print(f"  IDS alerts:          {summary['alerts']} (benign run)")

    kinds = {}
    for event in scenario.log:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    top = sorted(kinds.items(), key=lambda kv: -kv[1])[:8]
    print("\n  busiest event kinds:", ", ".join(f"{k}x{v}" for k, v in top))


if __name__ == "__main__":
    main()
