#!/usr/bin/env python3
"""The combined safety-cybersecurity methodology, end to end.

Walks the paper's envisioned workflow over the worksite item:

1. item definition and STRIDE threat enumeration;
2. knowledge transfer from mining/automotive (Figure 3);
3. TARA under the forestry characteristics (Table I);
4. safety track (ISO 13849 PL evaluation) and the interplay sync point;
5. IEC 62443 zone gap analysis and risk treatment;
6. the security assurance case, exported to Markdown and Graphviz DOT.

Usage::

    python examples/risk_assessment_workflow.py [output_dir]
"""

import sys
from pathlib import Path

from repro.assurance.compliance import ComplianceMapping
from repro.assurance.evidence import Evidence, EvidenceRegistry
from repro.assurance.export import render_gsn_dot, render_markdown
from repro.assurance.sac import SacBuilder
from repro.core.characteristics import characteristic_catalog
from repro.core.knowledge_transfer import KnowledgeTransfer
from repro.core.methodology import CombinedAssessment
from repro.safety.hazards import HazardCatalog
from repro.safety.iso13849 import Category, SafetyFunctionDesign
from repro.scenarios.worksite import worksite_item_model
from repro.sos.zones import worksite_zone_model


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("out")
    out_dir.mkdir(parents=True, exist_ok=True)

    print("1) Item definition")
    item = worksite_item_model()
    print(f"   systems: {item.systems}")
    print(f"   assets: {len(item.assets)}, damage scenarios: "
          f"{len(item.damage_scenarios)}, threat scenarios (STRIDE): "
          f"{len(item.threat_scenarios)}")

    print("\n2) Knowledge transfer (Figure 3)")
    transfer = KnowledgeTransfer().transfer(item)
    for domain, types in transfer.coverage_by_domain().items():
        print(f"   {domain}: covers {types:.0%} of the forestry threat space")
    print(f"   combined coverage: {transfer.coverage():.0%}")

    print("\n3+4+5) Combined assessment (TARA + ISO 13849 + interplay + zones)")
    designs = {
        "people_detection_stop": SafetyFunctionDesign(
            "people_detection_stop", Category.CAT3, 40.0, 0.95),
        "geofence": SafetyFunctionDesign("geofence", Category.CAT2, 25.0, 0.85),
        "protective_stop": SafetyFunctionDesign(
            "protective_stop", Category.CAT3, 60.0, 0.95),
        "speed_limiter": SafetyFunctionDesign(
            "speed_limiter", Category.CAT2, 30.0, 0.7),
    }
    result = CombinedAssessment(
        item, HazardCatalog(), designs, worksite_zone_model(),
        characteristics=characteristic_catalog(),
    ).run()
    print(f"   risk profile: {result.tara.risk_profile()} (1=low .. 5=critical)")
    print(f"   safety track: achieved PLs {result.safety.achieved}, "
          f"standalone shortfalls {result.safety.shortfalls}")
    print(f"   interplay: {len(result.interplay_findings)} findings, "
          f"{len(result.interplay_gaps)} assurance gaps on hazards "
          f"{sorted({f.hazard_id for f in result.interplay_gaps})}")
    print(f"   zone analysis: total SL gap {result.zone_total_gap}")
    decisions = {}
    for treatment in result.treatment.treatments:
        decisions[treatment.decision.value] = (
            decisions.get(treatment.decision.value, 0) + 1
        )
    print(f"   treatment decisions: {decisions}, "
          f"measures deployed: {result.treatment.measures_deployed()}")

    print("\n6) Security assurance case")
    registry = EvidenceRegistry()
    registry.add(Evidence("ev-tara", "analysis", "worksite TARA", "this run"))
    registry.add(Evidence("ev-interplay", "analysis", "interplay analysis",
                          "this run"))
    compliance = ComplianceMapping()
    compliance.record_work_product("tara", "ev-tara")
    compliance.record_work_product("treatment", "ev-tara")
    compliance.record_work_product("interplay", "ev-interplay")
    compliance.record_work_product("zone_assessment", "ev-tara")
    compliance.record_work_product("pl_evaluation", "ev-tara")
    builder = SacBuilder(item, registry, compliance)
    graph = builder.build(
        result,
        evidence_by_threat={
            a.threat_id: ["ev-tara"] for a in result.tara.assessments
        },
        interplay_evidence="ev-interplay",
    )
    report = builder.report(graph)
    print(f"   GSN case: {report.elements} elements, {report.goals} goals, "
          f"{report.solutions} solutions")
    print(f"   goal coverage {report.goal_coverage:.0%}, evidence coverage "
          f"{report.evidence_coverage:.0%}, compliance coverage "
          f"{report.compliance_coverage:.0%}")

    md_path = out_dir / "worksite_sac.md"
    dot_path = out_dir / "worksite_sac.dot"
    md_path.write_text(render_markdown(graph))
    dot_path.write_text(render_gsn_dot(graph))
    print(f"   exported: {md_path} and {dot_path} "
          f"(render with `dot -Tsvg {dot_path}`)")


if __name__ == "__main__":
    main()
