#!/usr/bin/env python
"""Benchmark baseline writer: micro + macro hot-path numbers -> BENCH_*.json.

Measures the per-frame comms pipeline from both ends:

* **micro** — `stream_xor`, the AEAD record layer (`SecureChannel.seal`/
  `open`), the medium's interference query, and `World.canopy_blockage`,
  each against a straightforward reference implementation kept in this file
  so the speedup ratio is machine-independent;
* **macro** — wall-clock of the Figure 1 worksite scenario.

Results are merged into a JSON file (default ``BENCH_PR2.json``) under a
record key, so a *baseline* captured before an optimisation round and the
*current* numbers after it live side by side::

    PYTHONPATH=src python tools/bench_baseline.py --record baseline
    ... optimise ...
    PYTHONPATH=src python tools/bench_baseline.py --record current --check

``--check`` enforces generous, reference-relative regression thresholds
(used by the CI benchmark-smoke job): it fails when the optimised crypto or
medium paths fall back below a fraction of their reference throughput.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import struct
import sys
import time
from pathlib import Path


# --------------------------------------------------------------------------
# reference implementations (the "before" semantics, kept verbatim so the
# speedup ratios in the JSON are self-contained and machine-independent)
# --------------------------------------------------------------------------

def reference_stream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Byte-at-a-time CTR-mode XOR (the pre-optimisation implementation)."""
    out = bytearray(len(data))
    for block_index in range(0, (len(data) + 31) // 32):
        block = hashlib.sha256(
            key + nonce + struct.pack(">Q", block_index)
        ).digest()
        offset = block_index * 32
        chunk = data[offset : offset + 32]
        for i, byte in enumerate(chunk):
            out[offset + i] = byte ^ block[i]
    return bytes(out)


def reference_interference(recent_tx, jammers, position, channel, now):
    """List-rebuild interference query (the pre-optimisation semantics)."""
    import math

    from repro.comms.radio import combine_noise_dbm, received_power_dbm

    components = [j.interference_at(position, channel) for j in jammers]
    recent = [t for t in recent_tx if t[0] > now]
    for _, pos, power, ch in recent:
        if ch == channel and pos.distance_to(position) > 0.5:
            d = pos.distance_to(position)
            components.append(received_power_dbm(power, d, antenna_gain_db=0.0) - 6.0)
    components = [c for c in components if c != -math.inf]
    if not components:
        return -math.inf
    return combine_noise_dbm(*components)


# --------------------------------------------------------------------------
# timing helpers
# --------------------------------------------------------------------------

def _best_of(fn, *, repeats: int = 5, inner: int = 1) -> float:
    """Best per-call seconds over ``repeats`` timed batches of ``inner`` calls."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        dt = (time.perf_counter() - t0) / inner
        if dt < best:
            best = dt
    return best


def bench_stream_xor(payload_bytes: int = 1024) -> dict:
    """1 KiB stream cipher: roundtrip (the simulator's seal→open pattern)
    and fresh-nonce (cold keystream) costs vs the byte-loop reference."""
    import struct as _struct

    from repro.comms.crypto.primitives import stream_xor

    key = b"k" * 32
    data = bytes(range(256)) * (payload_bytes // 256)
    nonce = b"n" * 16
    assert stream_xor(key, nonce, data) == reference_stream_xor(key, nonce, data)

    state = {"seq": 0}

    def roundtrip():
        # fresh nonce per record, each keystream used twice (seal + open)
        state["seq"] += 1
        record_nonce = _struct.pack(">QQ", 1, state["seq"])
        ct = stream_xor(key, record_nonce, data)
        stream_xor(key, record_nonce, ct)

    def reference_roundtrip():
        state["seq"] += 1
        record_nonce = _struct.pack(">QQ", 2, state["seq"])
        ct = reference_stream_xor(key, record_nonce, data)
        reference_stream_xor(key, record_nonce, ct)

    def fresh():
        state["seq"] += 1
        stream_xor(key, _struct.pack(">QQ", 3, state["seq"]), data)

    current = _best_of(roundtrip, inner=50)
    reference = _best_of(reference_roundtrip, inner=10)
    fresh_cost = _best_of(fresh, inner=50)
    return {
        "payload_bytes": payload_bytes,
        "roundtrip_us": round(current * 1e6, 3),
        "reference_roundtrip_us": round(reference * 1e6, 3),
        "fresh_nonce_per_op_us": round(fresh_cost * 1e6, 3),
        "mb_per_s_roundtrip": round(2 * payload_bytes / current / 1e6, 2),
        "speedup_vs_reference": round(reference / current, 2),
    }


def bench_aead_record(payload_bytes: int = 256) -> dict:
    """SecureChannel seal+open roundtrip vs per-record subkey re-derivation."""
    from repro.comms.crypto.primitives import aead_decrypt, aead_encrypt, nonce_from_sequence
    from repro.comms.crypto.secure_channel import SecureChannel, SecurityProfile

    key = hashlib.sha256(b"bench-key").digest()
    payload = b"p" * payload_bytes

    def roundtrip():
        a = SecureChannel("a", "b", key, key, SecurityProfile.AEAD)
        b = SecureChannel("b", "a", key, key, SecurityProfile.AEAD)
        for _ in range(64):
            b.open(a.seal(payload))

    def reference_roundtrip():
        # the pre-optimisation path: every record re-derives enc/MAC subkeys
        seq = 0
        for _ in range(64):
            seq += 1
            nonce = nonce_from_sequence(seq)
            sealed = aead_encrypt(key, nonce, payload)
            aead_decrypt(key, nonce, sealed)

    current = _best_of(roundtrip, inner=4)
    reference = _best_of(reference_roundtrip, inner=4)
    return {
        "payload_bytes": payload_bytes,
        "records_per_batch": 64,
        "batch_ms": round(current * 1e3, 3),
        "reference_batch_ms": round(reference * 1e3, 3),
        "records_per_s": round(64 / current),
        "speedup_vs_reference": round(reference / current, 2),
    }


def bench_interference(n_tx: int = 64) -> dict:
    from repro.comms.medium import WirelessMedium
    from repro.comms.radio import RadioConfig
    from repro.sim.engine import Simulator
    from repro.sim.events import EventLog
    from repro.sim.geometry import Vec2
    from repro.sim.rng import RngStreams

    sim = Simulator()
    medium = WirelessMedium(sim, EventLog(), RngStreams(7))

    class _Src:
        def __init__(self, position):
            self.position = position

    config = RadioConfig()
    raw_tx = []
    for i in range(n_tx):
        pos = Vec2(float(i % 17) * 10.0, float(i % 13) * 10.0)
        medium._record_tx(0.0, 1e9, _Src(pos), config)
        raw_tx.append((1e9, pos, config.tx_power_dbm, config.channel))
    query = Vec2(55.0, 35.0)

    result = medium.interference_at(query, 1, 0.5)
    assert result == reference_interference(raw_tx, [], query, 1, 0.5)
    current = _best_of(lambda: medium.interference_at(query, 1, 0.5), inner=200)
    reference = _best_of(
        lambda: reference_interference(raw_tx, [], query, 1, 0.5), inner=200
    )
    return {
        "active_transmissions": n_tx,
        "per_query_us": round(current * 1e6, 3),
        "reference_per_query_us": round(reference * 1e6, 3),
        "speedup_vs_reference": round(reference / current, 2),
    }


def bench_interference_batch(n_tx: int = 64, n_queries: int = 32) -> dict:
    """Amortised many-position interference: one expiry/live-index pass
    shared across the batch vs one scalar query per position."""
    from repro.comms.medium import WirelessMedium
    from repro.comms.radio import RadioConfig
    from repro.sim.engine import Simulator
    from repro.sim.events import EventLog
    from repro.sim.geometry import Vec2
    from repro.sim.rng import RngStreams

    sim = Simulator()
    medium = WirelessMedium(sim, EventLog(), RngStreams(7))

    class _Src:
        def __init__(self, position):
            self.position = position

    config = RadioConfig()
    for i in range(n_tx):
        pos = Vec2(float(i % 17) * 10.0, float(i % 13) * 10.0)
        medium._record_tx(0.0, 1e9, _Src(pos), config)
    queries = [
        Vec2(5.0 + 7.0 * (i % 11), 3.0 + 9.0 * (i % 7)) for i in range(n_queries)
    ]

    batched = medium.interference_at_many(queries, 1, 0.5)
    scalar = [medium.interference_at(q, 1, 0.5) for q in queries]
    assert batched == scalar

    current = _best_of(
        lambda: medium.interference_at_many(queries, 1, 0.5), inner=50
    )
    sequential = _best_of(
        lambda: [medium.interference_at(q, 1, 0.5) for q in queries], inner=50
    )
    return {
        "active_transmissions": n_tx,
        "positions_per_batch": n_queries,
        "per_query_us": round(current / n_queries * 1e6, 3),
        "scalar_per_query_us": round(sequential / n_queries * 1e6, 3),
        "speedup_vs_scalar": round(sequential / current, 2),
    }


def bench_aead_batch(n_records: int = 64, payload_bytes: int = 256) -> dict:
    """Per-channel batched sealing (`seal_batch`) vs sequential `seal`."""
    from repro.comms.crypto.secure_channel import SecureChannel, SecurityProfile

    key = hashlib.sha256(b"bench-batch-key").digest()
    plaintexts = [
        bytes([i & 0xFF]) * payload_bytes for i in range(n_records)
    ]

    def batch():
        a = SecureChannel("a", "b", key, key, SecurityProfile.AEAD)
        a.seal_batch(plaintexts)

    def sequential():
        a = SecureChannel("a", "b", key, key, SecurityProfile.AEAD)
        for plaintext in plaintexts:
            a.seal(plaintext)

    # batched and sequential sealing must produce identical records
    a = SecureChannel("a", "b", key, key, SecurityProfile.AEAD)
    b = SecureChannel("a", "b", key, key, SecurityProfile.AEAD)
    batched_records = a.seal_batch(plaintexts)
    sequential_records = [b.seal(plaintext) for plaintext in plaintexts]
    assert [(r.seq, r.body) for r in batched_records] == [
        (r.seq, r.body) for r in sequential_records
    ]

    current = _best_of(batch, inner=4)
    reference = _best_of(sequential, inner=4)
    return {
        "records_per_batch": n_records,
        "payload_bytes": payload_bytes,
        "batch_ms": round(current * 1e3, 3),
        "sequential_ms": round(reference * 1e3, 3),
        "per_record_us": round(current / n_records * 1e6, 3),
        "speedup_vs_sequential": round(reference / current, 2),
    }


def bench_canopy(n_pairs: int = 32) -> dict:
    """Repeated canopy queries over a fixed endpoint set (the comms pattern)."""
    from repro.sim.geometry import Vec2
    from repro.sim.rng import RngStreams
    from repro.sim.world import generate_forest

    world = generate_forest(RngStreams(11), width=200.0, height=200.0)
    pairs = [
        (Vec2(10.0 + i * 3.0, 20.0), Vec2(180.0 - i * 2.0, 170.0))
        for i in range(n_pairs)
    ]

    def sweep():
        for a, b in pairs:
            world.canopy_blockage(a, b)

    cold = _best_of(sweep, repeats=1)  # first sweep: caches cold
    steady = _best_of(sweep, repeats=5)
    return {
        "pairs": n_pairs,
        "steady_per_query_us": round(steady / n_pairs * 1e6, 3),
        "cold_sweep_ms": round(cold * 1e3, 3),
        "steady_sweep_ms": round(steady * 1e3, 3),
    }


def bench_fig1_worksite(
    horizon_s: float = 300.0, seed: int = 11, repeats: int = 3
) -> dict:
    from repro.scenarios.worksite import ScenarioConfig, build_worksite

    wall = float("inf")
    scenario = None
    for _ in range(max(1, repeats)):
        scenario = build_worksite(ScenarioConfig(seed=seed))
        t0 = time.perf_counter()
        scenario.run(horizon_s)
        wall = min(wall, time.perf_counter() - t0)
    return {
        "seed": seed,
        "horizon_s": horizon_s,
        "repeats": max(1, repeats),
        "wall_s": round(wall, 3),
        "events_processed": scenario.sim.events_processed,
        "frames_sent": scenario.medium.frames_sent,
        "events_per_s": round(scenario.sim.events_processed / wall),
        "sim_speedup_x": round(horizon_s / wall, 1),
    }


# --------------------------------------------------------------------------
# observability-plane benches (--obs -> BENCH_PR8.json)
# --------------------------------------------------------------------------

def bench_span_overhead(
    horizon_s: float = 120.0, seed: int = 11, repeats: int = 5
) -> dict:
    """Traced fig1 worksite run, spans off vs on (writer-less tracer).

    The span emitter rides the tracer's emit hook, so this isolates the
    marginal cost of the span layer on an already-traced run — the number
    the <5 % budget in docs/observability.md is about.
    """
    from repro.scenarios.worksite import ScenarioConfig, build_worksite
    from repro.telemetry import Tracer, installed

    def timed_run(spans: bool) -> tuple:
        best = float("inf")
        span_records = 0
        for _ in range(max(1, repeats)):
            scenario = build_worksite(ScenarioConfig(seed=seed))
            tracer = Tracer(scenario.sim, spans=spans)
            tracer.meta(seed=seed, horizon_s=horizon_s)
            t0 = time.perf_counter()
            with installed(tracer):
                scenario.run(horizon_s)
            tracer.close()
            best = min(best, time.perf_counter() - t0)
            span_records = tracer.summary().get("spans", {}).get("records", 0)
        return best, span_records

    off, _ = timed_run(False)
    on, span_records = timed_run(True)
    return {
        "seed": seed,
        "horizon_s": horizon_s,
        "repeats": max(1, repeats),
        "spans_off_wall_s": round(off, 4),
        "spans_on_wall_s": round(on, 4),
        "span_records": span_records,
        "overhead_pct": round((on - off) / off * 100.0, 2),
    }


def bench_histogram_observe(n: int = 100_000) -> dict:
    """Hot-path cost of Histogram.observe and a full quantile read-out."""
    from repro.sim.metrics import Histogram

    values = [0.0001 * (1 + i % 997) for i in range(n)]

    def fill():
        histogram = Histogram()
        for value in values:
            histogram.observe(value)
        return histogram

    per_fill = _best_of(fill, repeats=3)
    histogram = fill()
    per_quantiles = _best_of(
        lambda: (histogram.quantile(0.5), histogram.quantile(0.95),
                 histogram.quantile(0.99)),
        inner=200,
    )
    return {
        "observations": n,
        "observe_ns": round(per_fill / n * 1e9, 1),
        "quantile_readout_us": round(per_quantiles * 1e6, 3),
        "buckets": len(histogram.counts),
    }


def bench_prometheus_render(n_collectors: int = 8, n_metrics: int = 16) -> dict:
    """Full hub -> Prometheus text exposition for a mid-sized registry."""
    from repro.sim.metrics import MetricsCollector
    from repro.telemetry.hub import TelemetryHub

    hub = TelemetryHub()
    for c in range(n_collectors):
        collector = MetricsCollector()
        for m in range(n_metrics):
            collector.increment(f"counter_{m}", m + 1)
            collector.set_gauge(f"gauge_{m}", m * 0.5)
            collector.sample(f"series_{m}", float(m), float(m))
            collector.observe(f"hist_{m}", 0.001 * (m + 1))
        hub.register_collector(f"c{c}", collector)

    per_render = _best_of(hub.render_prometheus, inner=20)
    lines = len(hub.render_prometheus().splitlines())
    return {
        "collectors": n_collectors,
        "metrics_per_collector": n_metrics,
        "render_ms": round(per_render * 1e3, 3),
        "exposition_lines": lines,
    }


# --------------------------------------------------------------------------
# thresholds for --check (generous: catch regressions, not machine noise)
# --------------------------------------------------------------------------

CHECKS = (
    ("stream_xor", "speedup_vs_reference", 3.0),
    # 1.0 rather than 1.2: single-vCPU CI hosts jitter the short AEAD batch
    # by tens of percent; at parity-with-reference the subkey cache is gone
    ("aead_record", "speedup_vs_reference", 1.0),
    ("interference", "speedup_vs_reference", 0.8),
    # batched paths must stay at least on par with their scalar equivalents
    # (generous floors: single-vCPU CI hosts jitter by tens of percent)
    ("interference_batch", "speedup_vs_scalar", 0.8),
    ("aead_batch", "speedup_vs_sequential", 0.9),
)


# span layer must stay under 5 % of traced-run wall clock (the budget
# documented in docs/observability.md); generous for single-vCPU jitter
OBS_OVERHEAD_CEILING_PCT = 5.0


def run_checks(micro: dict) -> list:
    failures = []
    for bench, key, floor in CHECKS:
        value = micro.get(bench, {}).get(key)
        if value is None or value < floor:
            failures.append(f"{bench}.{key} = {value} below floor {floor}")
    return failures


def run_obs_checks(obs: dict) -> list:
    failures = []
    value = obs.get("span_overhead", {}).get("overhead_pct")
    if value is None or value >= OBS_OVERHEAD_CEILING_PCT:
        failures.append(
            f"span_overhead.overhead_pct = {value} at or above ceiling "
            f"{OBS_OVERHEAD_CEILING_PCT}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None,
                        help="result file (default BENCH_PR2.json, or "
                             "BENCH_PR8.json with --obs)")
    parser.add_argument("--record", choices=("baseline", "current"),
                        default="current",
                        help="key to write the measurements under")
    parser.add_argument("--check", action="store_true",
                        help="fail on crypto/medium throughput regressions")
    parser.add_argument("--obs", action="store_true",
                        help="run the observability-plane benches (span "
                             "overhead, histogram, Prometheus render) instead "
                             "of the comms hot paths")
    parser.add_argument("--skip-macro", action="store_true",
                        help="skip the fig1 worksite wall-clock bench")
    parser.add_argument("--macro-horizon", type=float, default=300.0,
                        help="simulated seconds for the macro bench")
    parser.add_argument("--macro-repeats", type=int, default=3,
                        help="macro bench repetitions (best-of)")
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = "BENCH_PR8.json" if args.obs else "BENCH_PR2.json"

    if args.obs:
        print("benchmarking observability plane ...", flush=True)
        obs = {
            "span_overhead": bench_span_overhead(
                args.macro_horizon if args.macro_horizon != 300.0 else 120.0,
                # best-of-5 floor: the delta is a few ms, so jitter on
                # shared CI hosts needs more samples than the macro bench
                repeats=max(args.macro_repeats, 5),
            ),
            "histogram": bench_histogram_observe(),
            "prometheus_render": bench_prometheus_render(),
        }
        for name, result in obs.items():
            print(f"  {name}: {json.dumps(result)}")
        out = Path(args.out)
        payload = json.loads(out.read_text()) if out.exists() else {}
        payload[args.record] = {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "obs": obs,
        }
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.record!r} record to {out}")
        if args.check:
            failures = run_obs_checks(obs)
            if failures:
                for failure in failures:
                    print(f"REGRESSION: {failure}", file=sys.stderr)
                return 1
            print("span overhead within budget")
        return 0

    print("benchmarking micro hot paths ...", flush=True)
    micro = {
        "stream_xor": bench_stream_xor(),
        "aead_record": bench_aead_record(),
        "aead_batch": bench_aead_batch(),
        "interference": bench_interference(),
        "interference_batch": bench_interference_batch(),
        "canopy": bench_canopy(),
    }
    for name, result in micro.items():
        print(f"  {name}: {json.dumps(result)}")

    macro = {}
    if not args.skip_macro:
        print("benchmarking fig1 worksite macro ...", flush=True)
        macro["fig1_worksite"] = bench_fig1_worksite(
            args.macro_horizon, repeats=args.macro_repeats
        )
        print(f"  fig1_worksite: {json.dumps(macro['fig1_worksite'])}")

    out = Path(args.out)
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload[args.record] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "micro": micro,
        "macro": macro,
    }
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.record!r} record to {out}")

    if args.check:
        failures = run_checks(micro)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("all throughput floors met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
