#!/usr/bin/env python3
"""Splice measured benchmark tables into EXPERIMENTS.md.

Reads ``bench_output.txt`` (the ``pytest benchmarks/ --benchmark-only -s``
capture), groups every printed table and note under its experiment id
(the ``E-XX`` prefix of each table title), and replaces the
``{{TABLE:E-XX}}`` / ``{{NOTE:E-XX}}`` markers in EXPERIMENTS.md with the
verbatim output inside fenced code blocks.

Usage::

    python tools/splice_experiments.py [bench_output.txt] [EXPERIMENTS.md]
"""

from __future__ import annotations

import re
import sys
from collections import defaultdict
from pathlib import Path

TITLE = re.compile(r"^(E-[A-Z0-9]+)\s{2}")
NOISE = re.compile(
    r"^(\.$|=+ |benchmark: |-+$|Name \(time|Legend:|  Outliers:|  OPS:|"
    r"platform |rootdir|plugins|collected|\d+ passed|test_)"
)


def collect(bench_path: Path) -> dict:
    sections = defaultdict(list)
    current = None
    for line in bench_path.read_text().splitlines():
        match = TITLE.match(line)
        if match:
            current = match.group(1)
            sections[current].append(line)
            continue
        if current is None:
            continue
        if line.strip() == ".":
            current = None
            continue
        if NOISE.match(line):
            current = None
            continue
        sections[current].append(line)
    # trim trailing blank lines per section
    for key, lines in sections.items():
        while lines and not lines[-1].strip():
            lines.pop()
    return dict(sections)


def splice(experiments_path: Path, sections: dict) -> int:
    text = experiments_path.read_text()
    replaced = 0

    def table_repl(match: re.Match) -> str:
        nonlocal replaced
        key = match.group(1)
        lines = sections.get(key)
        if not lines:
            return match.group(0)
        replaced += 1
        return "```\n" + "\n".join(lines) + "\n```"

    def note_repl(match: re.Match) -> str:
        nonlocal replaced
        key = match.group(1)
        lines = [
            l for l in sections.get(key, [])
            if l.startswith("combined assessment:")
        ]
        if not lines:
            return match.group(0)
        replaced += 1
        return "> " + lines[0]

    text = re.sub(r"\{\{NOTE:(E-[A-Z0-9]+)\}\}", note_repl, text)
    text = re.sub(r"\{\{TABLE:(E-[A-Z0-9]+)\}\}", table_repl, text)
    experiments_path.write_text(text)
    return replaced


def main() -> int:
    bench = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("bench_output.txt")
    experiments = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("EXPERIMENTS.md")
    sections = collect(bench)
    n = splice(experiments, sections)
    leftover = re.findall(r"\{\{[A-Z]+:[^}]+\}\}", experiments.read_text())
    print(f"sections found: {sorted(sections)}")
    print(f"markers replaced: {n}; leftover markers: {leftover}")
    return 0 if not leftover else 1


if __name__ == "__main__":
    raise SystemExit(main())
