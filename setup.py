"""Setup shim for environments without the ``wheel`` package.

The canonical metadata lives in pyproject.toml; this file only enables the
legacy editable install path (``pip install -e . --no-use-pep517``) in
offline environments that cannot build wheels.
"""

from setuptools import setup

setup()
